//! Quickstart: build a small cluster, store data, live-migrate a tablet.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The sixty-second tour of the reproduction: three simulated RAMCloud
//! servers, a YCSB client, one Rocksteady migration of half the key
//! space, and verification that every record survived the move.

use rocksteady_cluster::{
    summarize, ClusterBuilder, ClusterConfig, ControlCmd, FlightRecorderConfig,
};
use rocksteady_common::time::fmt_nanos;
use rocksteady_common::{HashRange, MigrationId, ServerId, TableId, MILLISECOND, SECOND};
use rocksteady_workload::core::primary_key;
use rocksteady_workload::YcsbConfig;

fn main() {
    // Fault-injection demo (used by CI): stall a migration on purpose
    // and show the flight recorder export exactly one incident bundle.
    if std::env::var("ROCKSTEADY_QUICKSTART_FAULT").is_ok() {
        fault_demo();
        return;
    }

    let table = TableId(1);
    let keys: u64 = 10_000;
    let mid = u64::MAX / 2 + 1;
    let upper = HashRange {
        start: mid,
        end: u64::MAX,
    };

    // 1. Declare the cluster: 3 servers, 4 worker cores each, 2 backups
    //    per master, plus one YCSB-B client offering 100k ops/s — hot
    //    enough that reads race the migration's ownership flip. Tracing
    //    is on: every RPC and migration phase lands in a deterministic
    //    chrome://tracing timeline.
    let mut builder = ClusterBuilder::new(ClusterConfig {
        servers: 3,
        workers: 4,
        replicas: 2,
        sample_interval: 10 * MILLISECOND,
        series_interval: 100 * MILLISECOND,
        tracing: true,
        metrics: true,
        profiling: true,
        audit: true,
        sla: Some(300_000), // p99.9 reads under 300 us
        // Always-on flight recorder: watchdog detectors every sampling
        // interval, incident bundles on trigger. The default config
        // keeps the trace/audit buffers unbounded, so every other
        // export stays byte-identical to a recorder-less run.
        flight_recorder: Some(FlightRecorderConfig::default()),
        ..ClusterConfig::default()
    });
    let dir = builder.directory();
    builder.add_ycsb(YcsbConfig::ycsb_b(dir, table, keys, 100_000.0));

    // 2. Script a Rocksteady migration: at t = 50 ms, move the upper half
    //    of the table from server 0 to server 1 (§3 of the paper —
    //    ownership transfers the moment it starts).
    builder.at(
        50 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table,
            range: upper,
            source: ServerId(0),
            target: ServerId(1),
        },
    );

    // 3. Build, preload, and pre-split.
    let mut cluster = builder.build();
    cluster.create_table(table, &[(HashRange::full(), ServerId(0))]);
    cluster.load_table(table, keys, 30, 100);
    cluster.seed_backups();
    cluster.split_tablet(table, mid);
    println!("loaded {keys} records onto {}", ServerId(0));

    // 4. Run. The harness steps virtual time; everything (clients,
    //    pulls, priority pulls, replay) happens inside the simulation.
    let finished = cluster
        .run_until_migrated(ServerId(1), MigrationId(1), 10 * SECOND)
        .expect("migration completed");
    cluster.run_until(finished + 100 * MILLISECOND);

    // 5. Inspect what happened.
    let started = cluster.server_stats[&ServerId(1)]
        .migration_started_at
        .get()
        .unwrap();
    let tgt = cluster.server_stats[&ServerId(1)].view();
    println!(
        "migration took {} and moved {:.1} MB ({} records replayed)",
        fmt_nanos(finished - started),
        tgt.bytes_migrated_in as f64 / 1e6,
        tgt.records_replayed,
    );
    println!(
        "rate: {:.0} MB/s",
        rocksteady_common::time::mb_per_sec(tgt.bytes_migrated_in, finished - started)
    );

    // 6. Verify: every record readable through its current owner.
    let mut moved = 0;
    for rank in 0..keys {
        let key = primary_key(rank, 30);
        assert!(
            cluster.read_direct(table, &key).is_some(),
            "record {rank} lost in migration!"
        );
        if upper.contains(rocksteady_common::key_hash(&key)) {
            moved += 1;
        }
    }
    println!(
        "verified all {keys} records; {moved} now live on {}",
        ServerId(1)
    );

    {
        let stats = cluster.client_stats[0].borrow();
        let reads = stats.read_latency.merged();
        println!(
            "client saw {} reads: median {} / 99.9th {}",
            reads.count(),
            fmt_nanos(reads.percentile(0.5)),
            fmt_nanos(reads.percentile(0.999)),
        );
    }

    // 7. Export the trace. Load it at chrome://tracing (or Perfetto) to
    //    see per-RPC latency segments and migration phase spans; the
    //    same seed always produces a byte-identical file.
    let summary = cluster.trace.validate().expect("trace invariants violated");
    let json = cluster.export_trace_json();
    let path = "target/quickstart-trace.json";
    std::fs::write(path, &json).expect("write trace");
    let pulls = cluster.trace.span_histogram("mig:pull");
    println!(
        "trace: {} events ({} spans) -> {path}; {} bulk pulls, median {}",
        summary.events,
        summary.spans,
        pulls.count(),
        fmt_nanos(pulls.percentile(0.5)),
    );

    // 8. Export the unified metrics registry: every server counter,
    //    client histogram, and SLO gauge, as deterministic JSON and
    //    Prometheus text. Same seed, byte-identical files.
    let metrics = cluster
        .metrics
        .validate()
        .expect("metrics invariants violated");
    let json_path = "target/quickstart-metrics.json";
    let prom_path = "target/quickstart-metrics.prom";
    std::fs::write(json_path, cluster.export_metrics_json()).expect("write metrics json");
    std::fs::write(prom_path, cluster.export_metrics_prometheus()).expect("write metrics prom");
    let slo = cluster.slo_report();
    println!(
        "metrics: {} instruments -> {json_path} + {prom_path}; {} snapshots captured",
        metrics.instruments,
        cluster.snapshots.borrow().len(),
    );
    println!(
        "SLO: window p50 {} / p99.9 {} vs SLA {}; {} breach interval(s)",
        fmt_nanos(slo.p50),
        fmt_nanos(slo.p999),
        fmt_nanos(slo.sla.unwrap_or(0)),
        slo.breach_intervals,
    );

    // 9. Profile. The exact per-core activity ledger: every dispatch
    //    and worker core's virtual time, attributed to what it was
    //    doing (service, pull gather, replay, hold, idle, ...), with
    //    busy + idle summing exactly to wall-clock per core. Exported
    //    as folded stacks — feed the file to flamegraph.pl.
    cluster.finalize_profile();
    let profile = cluster
        .profiler
        .validate()
        .expect("ledger conservation violated");
    let folded_path = "target/quickstart-profile.folded";
    std::fs::write(folded_path, cluster.export_folded()).expect("write profile");
    println!(
        "profile: {} cores over {} -> {folded_path}; {:.1}% busy, {} overcommitted",
        profile.cores,
        fmt_nanos(profile.wall_ns),
        100.0 * profile.busy_ns as f64 / (profile.busy_ns + profile.idle_ns).max(1) as f64,
        fmt_nanos(profile.overcommit_ns),
    );

    // 10. What bounded the migration? The critical-path walker tiles
    //     the migration interval into the component blocking completion
    //     at each instant and ranks them.
    let cp = cluster
        .critical_path_report()
        .expect("traced migration present");
    let cp_path = "target/quickstart-critical-path.json";
    std::fs::write(cp_path, cp.to_json()).expect("write critical path");
    let top = &cp.components[0];
    println!(
        "critical path: {} attributed over {} components -> {cp_path}; \
         dominant: {} ({} = {}%)",
        fmt_nanos(cp.attributed_ns),
        cp.components.len(),
        top.name,
        fmt_nanos(top.ns),
        top.permille / 10,
    );

    // 11. And why were the slow reads slow? Blame histogram over every
    //     request that exceeded the SLA.
    let blame = cluster.tail_blame_report().expect("sla configured");
    println!(
        "tail blame: {}/{} RPCs over the {} SLA; dominant segment: {}",
        blame.slow_rpcs,
        blame.total_rpcs,
        fmt_nanos(blame.sla),
        blame.dominant().unwrap_or("none"),
    );

    // 12. Journeys: causal request tracing. Every client operation's
    //     cross-node story — each attempt it took, the per-server
    //     net/queue/service/hold decomposition each attempt caused, and
    //     any PriorityPull a waiting read spawned — reconstructed from
    //     the trace under one trace id, telescoping in integer
    //     nanoseconds to the client-measured latency.
    let journeys = cluster.journeys();
    let telescoped = journeys.iter().filter(|j| j.telescoped).count();
    let crossed = journeys.iter().filter(|j| j.crossed_migration()).count();
    let journeys_path = "target/quickstart-journeys.json";
    std::fs::write(journeys_path, cluster.export_journeys_json()).expect("write journeys");
    println!(
        "journeys: {} reconstructed ({telescoped} telescope exactly, \
         {crossed} crossed the migration) -> {journeys_path}",
        journeys.len(),
    );
    if let Some(chains) = cluster.tail_blame_chains(1) {
        if let Some(worst) = chains.first() {
            println!("slowest journey: {worst}");
        }
    }

    // 13. Audit. The protocol auditor watched every ownership edit,
    //     lineage add/drop, version-floor raise, pull, and replay, and
    //     checked the Rocksteady invariants online: single authoritative
    //     owner (modulo the dual-serving window), monotone version
    //     floors, record conservation per migration, lineage lifecycle,
    //     and read-your-writes spot checks from the client.
    let audit = cluster.audit_report();
    assert_eq!(audit.violations, 0, "protocol invariants violated!");
    assert_eq!(audit.migrations_verified, 1, "migration not verified");
    let audit_path = "target/quickstart-audit.json";
    std::fs::write(audit_path, cluster.export_audit_json()).expect("write audit json");
    let dot_path = "target/quickstart-audit.dot";
    std::fs::write(dot_path, cluster.export_audit_dot()).expect("write audit dot");
    println!(
        "audit: {} events, {} invariant checks, 0 violations; migration \
         conservation-verified -> {audit_path} + {dot_path}",
        audit.events,
        audit
            .per_invariant
            .iter()
            .map(|(_, checked, _)| checked)
            .sum::<u64>(),
    );
    let story = cluster
        .explain_migration(MigrationId(1))
        .expect("audited migration");
    println!("explain: {story}");

    // 14. Why did the SLO burn? When the monitor counted breach
    //     intervals, ask the auditor to rank the causes active during
    //     the run — the top suspect is (of course) the migration.
    if slo.breach_intervals > 0 {
        if let Some(breach) = cluster.explain_slo_breach(0, cluster.now()) {
            println!("slo breach suspect: {}", top_cause(&breach));
        }
    }

    // 15. The flight recorder. Its watchdog evaluated five anomaly
    //     detectors (migration stall, replay backlog, SLO burn,
    //     dispatch overcommit, lineage age) on every sampling interval
    //     of this run — a healthy migration trips none of them. Run
    //     with ROCKSTEADY_QUICKSTART_FAULT=1 to watch a deliberately
    //     stalled migration produce an incident bundle.
    let final_slo = cluster.slo_report();
    println!(
        "flight recorder: {} incidents (burn fast {}‰ / slow {}‰)",
        cluster.incident_count(),
        final_slo.burn_fast_permille,
        final_slo.burn_slow_permille,
    );
}

/// The top-ranked cause of an `explain_slo_breach` report, without its
/// causal chain (which quickly dwarfs a terminal line).
fn top_cause(breach: &str) -> &str {
    let start = breach.find("\"causes\":[").map(|i| i + 10).unwrap_or(0);
    let end = breach[start..]
        .find(",\"chain\"")
        .map(|i| start + i)
        .unwrap_or(breach.len());
    &breach[start..end]
}

/// Deliberately stall a migration (the source swallows every bulk Pull)
/// and let the flight recorder catch it: exactly one incident bundle,
/// triggered by the migration-stall detector, lands in
/// `target/quickstart-incident.json`.
fn fault_demo() {
    let table = TableId(1);
    let keys: u64 = 5_000;
    let mid = u64::MAX / 2 + 1;
    let upper = HashRange {
        start: mid,
        end: u64::MAX,
    };

    // Bounded rings: the recorder works from fixed memory, and the
    // bundle's drop counters show the compaction at work.
    let fr = FlightRecorderConfig {
        trace_capacity: Some(4096),
        audit_capacity: Some(1024),
        ..FlightRecorderConfig::default()
    };
    let mut cfg = ClusterConfig {
        servers: 3,
        workers: 4,
        replicas: 2,
        sample_interval: 10 * MILLISECOND,
        series_interval: 100 * MILLISECOND,
        audit: true,
        sla: Some(300_000),
        flight_recorder: Some(fr),
        ..ClusterConfig::default()
    };
    // The fault: the source drops every bulk Pull on the floor, so
    // gather never advances and the migration hangs forever.
    cfg.migration.test_drop_pulls = true;

    let mut builder = ClusterBuilder::new(cfg);
    let dir = builder.directory();
    builder.add_ycsb(YcsbConfig::ycsb_b(dir, table, keys, 20_000.0));
    builder.at(
        50 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table,
            range: upper,
            source: ServerId(0),
            target: ServerId(1),
        },
    );

    let mut cluster = builder.build();
    cluster.create_table(table, &[(HashRange::full(), ServerId(0))]);
    cluster.load_table(table, keys, 30, 100);
    cluster.seed_backups();
    cluster.split_tablet(table, mid);

    // 20 stalled sampling intervals trip the detector; run well past it.
    cluster.run_until(2 * SECOND);

    let incidents = cluster.incident_log();
    assert_eq!(incidents.len(), 1, "expected exactly one incident");
    assert_eq!(incidents[0].trigger, "migration-stall");
    let path = "target/quickstart-incident.json";
    std::fs::write(path, &incidents[0].bundle).expect("write incident bundle");
    println!("{}", summarize(&incidents[0]));
    println!(
        "bundle: {} bytes -> {path} (trace dropped {}, audit dropped {})",
        incidents[0].bundle.len(),
        cluster.trace.dropped(),
        cluster.audit.dropped(),
    );
}
