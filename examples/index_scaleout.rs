//! Index scale-out: the Figure 2 / Figure 4 narrative.
//!
//! ```text
//! cargo run --release --example index_scaleout
//! ```
//!
//! RAMCloud's secondary indexes hold primary-key *hashes* and are range
//! partitioned into indexlets, independently of the hash-partitioned
//! table (Figure 2). A scan is two phases: fetch hashes from one
//! indexlet, then multi-get the records from the backing tablets. This
//! example runs the same scan workload against one indexlet and against
//! a split pair, showing the split raising sustainable throughput.

use rocksteady_cluster::{ClusterBuilder, ClusterConfig};
use rocksteady_common::ids::IndexId;
use rocksteady_common::time::fmt_nanos;
use rocksteady_common::zipf::KeyDist;
use rocksteady_common::{HashRange, ServerId, TableId, MILLISECOND, SECOND};
use rocksteady_master::Indexlet;
use rocksteady_workload::scan::secondary_key;
use rocksteady_workload::ScanConfig;

const KEYS: u64 = 50_000;

/// Runs `scans_per_sec` against one or two indexlets; returns
/// (achieved scans/s, median, p999).
fn run(indexlets: usize, scans_per_sec: f64) -> (f64, u64, u64) {
    let table = TableId(1);
    let index = IndexId(0);
    let split = secondary_key(KEYS / 2, 30);

    // Index lookups dominate: a SLIK-style B-tree descent costs several
    // microseconds, which is what makes the indexlet the bottleneck and
    // splitting it worthwhile (Figure 4).
    let cost = rocksteady_common::CostModel {
        index_lookup_ns: 4_000,
        ..Default::default()
    };
    let mut builder = ClusterBuilder::new(ClusterConfig {
        servers: 3,
        workers: 4,
        replicas: 0,
        cost,
        sample_interval: 50 * MILLISECOND,
        series_interval: 100 * MILLISECOND,
        ..ClusterConfig::default()
    });
    let dir = builder.directory();
    let ranges = if indexlets == 1 {
        vec![(Vec::new(), None, ServerId(1))]
    } else {
        vec![
            (Vec::new(), Some(split.clone()), ServerId(1)),
            (split.clone(), None, ServerId(2)),
        ]
    };
    builder.add_scan(ScanConfig {
        dir,
        table,
        index,
        sec_key_len: 30,
        num_keys: KEYS,
        indexlets: ranges,
        scan_len: 4,
        dist: KeyDist::Zipfian { theta: 0.5 },
        scans_per_sec,
        max_outstanding: 128,
        seed: 7,
    });

    let mut cluster = builder.build();
    cluster.create_table(table, &[(HashRange::full(), ServerId(0))]);
    cluster.load_table(table, KEYS, 30, 100);

    // Build the indexlet(s) exactly as the ranges above describe.
    let mut lower = Indexlet::new(table, index, Vec::new(), None);
    for rank in 0..KEYS {
        lower.insert(
            &secondary_key(rank, 30),
            rocksteady_workload::core::primary_hash(rank, 30),
        );
    }
    if indexlets == 1 {
        cluster.node(ServerId(1)).master.add_indexlet(lower);
    } else {
        let upper = lower.split_at(&split);
        cluster.node(ServerId(1)).master.add_indexlet(lower);
        cluster.node(ServerId(2)).master.add_indexlet(upper);
    }

    cluster.run_until(SECOND);
    let stats = cluster.client_stats[0].borrow();
    let mut hist = rocksteady_common::Histogram::new();
    let mut count = 0u64;
    // Skip the first 200 ms of warm-up.
    for (at, slot) in stats.read_latency.iter() {
        if at >= 200 * MILLISECOND {
            hist.merge(slot);
            count += slot.count();
        }
    }
    let secs = 0.8;
    (
        count as f64 / secs,
        hist.percentile(0.5),
        hist.percentile(0.999),
    )
}

fn main() {
    println!("index scans (4 records, Zipfian theta=0.5 start keys) — Figure 2/4 narrative\n");
    println!(
        "{:<12} {:>14} {:>14} {:>10} {:>10}",
        "indexlets", "offered/s", "achieved/s", "median", "99.9th"
    );
    for &indexlets in &[1usize, 2] {
        for &rate in &[200_000.0f64, 500_000.0, 800_000.0] {
            let (achieved, p50, p999) = run(indexlets, rate);
            println!(
                "{:<12} {:>14.0} {:>14.0} {:>10} {:>10}",
                indexlets,
                rate,
                achieved,
                fmt_nanos(p50),
                fmt_nanos(p999)
            );
        }
    }
    println!("\nsplitting the index raises sustainable scan throughput (Figure 4's point).");
}
