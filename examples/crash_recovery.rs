//! Lineage-based fault tolerance, live (§3.4).
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```
//!
//! Rocksteady never re-replicates migrated data on the fast path;
//! instead the source takes a dependency on the target's recovery-log
//! tail. This example kills the migration target mid-flight — while
//! clients are writing through it — and shows the coordinator reverting
//! ownership to the source, merging the target's replicated log tail,
//! and (the point of the whole design) losing none of the acknowledged
//! writes.

use rocksteady_cluster::{ClusterBuilder, ClusterConfig, ControlCmd};
use rocksteady_common::time::fmt_nanos;
use rocksteady_common::{HashRange, MigrationId, ServerId, TableId, MILLISECOND, SECOND};
use rocksteady_workload::core::primary_key;
use rocksteady_workload::YcsbConfig;

fn main() {
    let table = TableId(1);
    let keys: u64 = 20_000;
    let mid = u64::MAX / 2 + 1;
    let upper = HashRange {
        start: mid,
        end: u64::MAX,
    };

    let mut builder = ClusterBuilder::new(ClusterConfig {
        servers: 3,
        workers: 4,
        replicas: 2,
        sample_interval: 10 * MILLISECOND,
        series_interval: 100 * MILLISECOND,
        ..ClusterConfig::default()
    });
    let dir = builder.directory();
    let mut ycsb = YcsbConfig::ycsb_b(dir, table, keys, 60_000.0);
    ycsb.read_fraction = 0.5; // heavy writes: the dangerous case
    builder.add_ycsb(ycsb);
    builder
        .at(
            10 * MILLISECOND,
            ControlCmd::Migrate {
                id: MigrationId(1),
                table,
                range: upper,
                source: ServerId(0),
                target: ServerId(1),
            },
        )
        // Kill the target 1.5 ms into the migration, with pulls,
        // priority pulls, and client writes all in flight.
        .at(
            11_500_000,
            ControlCmd::Kill {
                server: ServerId(1),
                detect_after: MILLISECOND,
            },
        );

    let mut cluster = builder.build();
    cluster.create_table(table, &[(HashRange::full(), ServerId(0))]);
    cluster.load_table(table, keys, 30, 100);
    cluster.seed_backups();
    cluster.split_tablet(table, mid);

    println!(
        "migrating upper half to {}; killing it mid-migration...",
        ServerId(1)
    );
    cluster.run_until(2 * SECOND);

    let owner = cluster
        .coord
        .borrow()
        .tablet_for(table, u64::MAX)
        .unwrap()
        .owner;
    println!(
        "after the crash: upper half owned by {owner} (reverted to the source), \
         lineage deps: {}",
        cluster.coord.borrow().lineage_deps().len()
    );
    let replayed = cluster.server_stats[&ServerId(0)].recovery_replayed.get();
    println!("lineage merge replayed {replayed} records from the dead target's log tail");
    let (hints, failovers, gaps) =
        cluster
            .server_stats
            .values()
            .fold((0u64, 0u64, 0u64), |(h, f, g), s| {
                (
                    h + s.retry_hints_sent.get(),
                    f + s.recovery_fetch_failovers.get(),
                    g + s.recovery_fetch_gaps.get(),
                )
            });
    println!(
        "servers issued {hints} retry hints; segment fetches failed over {failovers} \
         times ({gaps} irrecoverable gaps)"
    );

    // The contract: every record present, every acknowledged write
    // durable.
    for rank in 0..keys {
        let key = primary_key(rank, 30);
        assert!(
            cluster.read_direct(table, &key).is_some(),
            "record {rank} lost in the crash!"
        );
    }
    let confirmed = cluster.client_stats[0].borrow().confirmed_writes.clone();
    let mut checked = 0;
    for (rank, version) in &confirmed {
        let key = primary_key(*rank, 30);
        let (_, current) = cluster.read_direct(table, &key).expect("acked write lost");
        assert!(current >= *version, "acked write regressed");
        checked += 1;
    }
    println!("verified {keys} records and all {checked} acknowledged writes survived");

    let stats = cluster.client_stats[0].borrow();
    let reads = stats.read_latency.merged();
    println!(
        "client view across the crash: {} reads, median {}, {} timeouts, {} retries",
        reads.count(),
        fmt_nanos(reads.percentile(0.5)),
        stats.timeouts.get(),
        stats.retries.get(),
    );
}
