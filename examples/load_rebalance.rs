//! Load rebalancing: the paper's motivating scenario (§1, §2.1).
//!
//! ```text
//! cargo run --release --example load_rebalance
//! ```
//!
//! One server holds a hot, skewed table while another sits idle. We
//! migrate the hot half with Rocksteady and compare the client's
//! throughput and tail latency before and after: exploiting the second
//! server's capacity should raise throughput and flatten the tail, and
//! PriorityPulls should keep the table continuously available.

use rocksteady_cluster::{ClusterBuilder, ClusterConfig, ControlCmd};
use rocksteady_common::time::fmt_nanos;
use rocksteady_common::{
    HashRange, Histogram, MigrationId, ServerId, TableId, MILLISECOND, SECOND,
};
use rocksteady_workload::YcsbConfig;

fn window(stats: &rocksteady_workload::ClientStats, from: u64, to: u64) -> (f64, Histogram) {
    let mut hist = Histogram::new();
    let mut ops = 0u64;
    for (at, slot) in stats.read_latency.iter() {
        if at >= from && at < to {
            hist.merge(slot);
            ops += slot.count();
        }
    }
    let secs = (to - from) as f64 / SECOND as f64;
    (ops as f64 / secs, hist)
}

fn main() {
    let table = TableId(1);
    let keys: u64 = 100_000;
    let mid = u64::MAX / 2 + 1;

    let mut builder = ClusterBuilder::new(ClusterConfig {
        servers: 3,
        workers: 4,
        replicas: 2,
        sample_interval: 50 * MILLISECOND,
        series_interval: 100 * MILLISECOND,
        ..ClusterConfig::default()
    });
    let dir = builder.directory();
    // A hot, skewed workload aimed at one server: enough load that the
    // single server's dispatch is the bottleneck.
    let mut ycsb = YcsbConfig::ycsb_b(dir, table, keys, 600_000.0);
    ycsb.max_outstanding = 256;
    builder.add_ycsb(ycsb);
    builder.at(
        SECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table,
            range: HashRange {
                start: mid,
                end: u64::MAX,
            },
            source: ServerId(0),
            target: ServerId(1),
        },
    );

    let mut cluster = builder.build();
    cluster.create_table(table, &[(HashRange::full(), ServerId(0))]);
    cluster.load_table(table, keys, 30, 100);
    cluster.seed_backups();
    cluster.split_tablet(table, mid);

    cluster.run_until(3 * SECOND);

    let finished = cluster.server_stats[&ServerId(1)]
        .migration_finished_at
        .get();
    let stats = cluster.client_stats[0].borrow();
    // Before: [0.2s, 1.0s); after: the second after migration completed.
    let (tp_before, lat_before) = window(&stats, 200 * MILLISECOND, SECOND);
    let after_start = finished.unwrap_or(15 * SECOND / 10) + 200 * MILLISECOND;
    let (tp_after, lat_after) = window(&stats, after_start, 3 * SECOND);

    println!("hot-tablet rebalancing: migrate half of a loaded table\n");
    println!(
        "{:<22} {:>14} {:>12} {:>12}",
        "phase", "throughput", "median", "99.9th"
    );
    for (name, tp, lat) in [
        ("before (1 server)", tp_before, &lat_before),
        ("after  (2 servers)", tp_after, &lat_after),
    ] {
        println!(
            "{:<22} {:>10.0} op/s {:>12} {:>12}",
            name,
            tp,
            fmt_nanos(lat.percentile(0.5)),
            fmt_nanos(lat.percentile(0.999)),
        );
    }
    match finished {
        Some(t) => println!(
            "\nmigration completed at t={} ({} retries, {} map refreshes — zero downtime)",
            fmt_nanos(t),
            stats.retries.get(),
            stats.map_refreshes.get()
        ),
        None => println!("\nmigration still running at the end of the window"),
    }
    if tp_after > tp_before {
        println!(
            "throughput improved {:.1}x by spreading the hot tablet",
            tp_after / tp_before
        );
    }
}
