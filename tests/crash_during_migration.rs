//! Lineage-based fault tolerance (§3.4).
//!
//! Rocksteady skips synchronous re-replication during migration; safety
//! comes from the lineage dependency the coordinator records. These tests
//! kill each migration participant mid-flight, with clients writing the
//! whole time, and verify the paper's recovery contract:
//!
//! - **target crashes** → ownership reverts to the source, which merges
//!   the target's replicated log *tail* (every write the target
//!   acknowledged) into its own copy — nothing durably acknowledged is
//!   lost, even though migrated data was never re-replicated;
//! - **source crashes** → the target (already the owner) replays the
//!   source's replicated log to fill in whatever had not been pulled
//!   yet.

mod common;

use common::{builder, standard_setup, test_config, upper, verify_all_readable, TABLE};
use rocksteady_cluster::{ClusterBuilder, ClusterConfig, ControlCmd};
use rocksteady_common::{MigrationId, ServerId, MILLISECOND, SECOND};
use rocksteady_workload::core::primary_key;
use rocksteady_workload::YcsbConfig;

const KEYS: u64 = 20_000;

fn crash_script(victim: ServerId, kill_at: u64) -> Vec<(u64, ControlCmd)> {
    vec![
        (
            10 * MILLISECOND,
            ControlCmd::Migrate {
                id: MigrationId(1),
                table: TABLE,
                range: upper(),
                source: ServerId(0),
                target: ServerId(1),
            },
        ),
        (
            kill_at,
            ControlCmd::Kill {
                server: victim,
                detect_after: MILLISECOND,
            },
        ),
    ]
}

fn run_crash_case(victim: ServerId) -> (u64, ServerId) {
    let mut b = builder();
    let dir = b.directory();
    // Heavy writes so durably-acked updates definitely race the crash.
    let mut ycsb = YcsbConfig::ycsb_b(dir, TABLE, KEYS, 60_000.0);
    ycsb.read_fraction = 0.5;
    b.add_ycsb(ycsb);
    // Kill while pulls are still flowing: the 20k-record migration takes
    // a few ms; 1 ms in is mid-flight.
    for (at, cmd) in crash_script(victim, 11 * MILLISECOND) {
        b.at(at, cmd);
    }
    let mut cluster = b.build();
    standard_setup(&mut cluster, KEYS);

    // Run long enough for detection, recovery, and client retries.
    cluster.run_until(2 * SECOND);

    // The migrating range must have a live owner that is not the victim.
    let owner = cluster
        .coord
        .borrow()
        .tablet_for(TABLE, u64::MAX)
        .expect("tablet still mapped")
        .owner;
    assert_ne!(owner, victim);
    assert!(cluster.coord.borrow().lineage_deps().is_empty());

    // Every record is readable somewhere.
    verify_all_readable(&mut cluster, KEYS);

    // Every durably acknowledged write survived: the lineage guarantee.
    let confirmed = cluster.client_stats[0].borrow().confirmed_writes.clone();
    assert!(!confirmed.is_empty());
    let mut surviving_checked = 0;
    for (rank, version) in &confirmed {
        let key = primary_key(*rank, 30);
        let (_, current) = cluster
            .read_direct(TABLE, &key)
            .unwrap_or_else(|| panic!("acked write to rank {rank} lost in the crash"));
        assert!(
            current >= *version,
            "rank {rank}: version regressed to {current} (acked {version})"
        );
        surviving_checked += 1;
    }
    (surviving_checked, owner)
}

#[test]
fn target_crash_reverts_to_source_with_lineage_merge() {
    let (checked, owner) = run_crash_case(ServerId(1));
    assert!(checked > 50, "only {checked} confirmed writes to check");
    // Ownership reverted to the source (§3.4).
    assert_eq!(owner, ServerId(0));
}

#[test]
fn source_crash_recovers_onto_target() {
    let (checked, owner) = run_crash_case(ServerId(0));
    assert!(checked > 50, "only {checked} confirmed writes to check");
    // The target keeps ownership and fills in from the source's log.
    assert_eq!(owner, ServerId(1));
}

/// Killing the source mid-migration must *cleanly abandon* the run on
/// the target: the abandonment is stamped in stats (so
/// `run_until_migrated` stops immediately instead of spinning to its
/// deadline), the coordinator's recovery supersedes the run, and client
/// reads of the migrating range eventually succeed again.
#[test]
fn source_crash_abandons_migration_cleanly() {
    let cfg = ClusterConfig {
        tracing: true,
        ..test_config()
    };
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    let mut ycsb = YcsbConfig::ycsb_b(dir, TABLE, KEYS, 40_000.0);
    ycsb.read_fraction = 0.9;
    b.add_ycsb(ycsb);
    for (at, cmd) in crash_script(ServerId(0), 11 * MILLISECOND) {
        b.at(at, cmd);
    }
    let mut cluster = b.build();
    standard_setup(&mut cluster, KEYS);

    // The migration must be reported as abandoned, not run to deadline:
    // the driver loop exits within a couple of sample intervals of the
    // crash being detected (~12 ms), far before the 2 s deadline.
    let target = ServerId(1);
    let finished = cluster.run_until_migrated(target, MigrationId(1), 2 * SECOND);
    assert!(
        finished.is_none(),
        "migration finished against a dead source"
    );
    assert!(
        cluster.now() < 100 * MILLISECOND,
        "run_until_migrated spun to {} ns instead of exiting on abandonment",
        cluster.now()
    );
    let abandoned_at = cluster
        .migration_abandoned(target, MigrationId(1))
        .expect("abandonment not stamped");
    {
        let s = cluster.server_stats[&target].view();
        assert_eq!(s.migrations_abandoned, 1);
        assert!(s.migration_started_at.unwrap() < abandoned_at);
    }
    // The abandonment left a trace event behind.
    let abandoned_events = cluster.trace.with_events(|events| {
        events
            .iter()
            .filter(|e| e.name == "mig:abandoned-source-died")
            .count()
    });
    assert!(abandoned_events >= 1, "no abandonment trace event");

    // Let recovery land and clients drain their retries.
    cluster.run_until(2 * SECOND);

    // Coordinator recovery superseded the run: the target owns the
    // range via RecoverTablet, and the lineage dependency is gone.
    let owner = cluster
        .coord
        .borrow()
        .tablet_for(TABLE, u64::MAX)
        .expect("tablet still mapped")
        .owner;
    assert_eq!(owner, target);
    assert!(cluster.coord.borrow().lineage_deps().is_empty());
    verify_all_readable(&mut cluster, KEYS);

    // Client reads kept succeeding after the crash (retries resolved).
    let stats = cluster.client_stats[0].borrow();
    let reads = stats.read_latency.merged();
    assert!(
        reads.count() > 10_000,
        "only {} reads completed across the crash",
        reads.count()
    );
    assert_eq!(stats.not_found.get(), 0);
}
