//! PriorityPull semantics through the full stack (§3.3) and secondary
//! index scans across split indexlets (Figure 2 / Figure 4 setup).

mod common;

use common::{builder, standard_setup, upper, TABLE};
use rocksteady_cluster::{ClusterBuilder, ControlCmd};
use rocksteady_common::ids::IndexId;
use rocksteady_common::zipf::KeyDist;
use rocksteady_common::{HashRange, MigrationId, ServerId, MILLISECOND, SECOND};
use rocksteady_master::Indexlet;
use rocksteady_workload::scan::secondary_key;
use rocksteady_workload::{ScanConfig, YcsbConfig};

#[test]
fn priority_pulls_fire_and_shed_source_load() {
    const KEYS: u64 = 30_000;
    let mut b = builder();
    let dir = b.directory();
    // Hot Zipfian reads: the hot keys should arrive via PriorityPulls.
    let ycsb = YcsbConfig::ycsb_b(dir, TABLE, KEYS, 150_000.0);
    b.add_ycsb(ycsb);
    b.at(
        10 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    standard_setup(&mut cluster, KEYS);
    cluster
        .run_until_migrated(ServerId(1), MigrationId(1), 10 * SECOND)
        .expect("migration completes");

    let src = cluster.server_stats[&ServerId(0)].view();
    assert!(
        src.priority_pulls_served > 0,
        "no PriorityPull ever reached the source"
    );
    // De-dup + batching: far fewer PriorityPull RPCs than retried reads.
    let retries = cluster.client_stats[0].borrow().retries.get();
    assert!(retries > 0);
    assert!(
        src.priority_pulls_served <= retries,
        "PP RPCs ({}) exceeded client retries ({retries}) — batching broken",
        src.priority_pulls_served
    );
}

#[test]
fn no_priority_pull_variant_starves_reads_until_bulk_arrival() {
    const KEYS: u64 = 30_000;
    let mut cfg = common::test_config();
    cfg.migration.priority_pulls = false;
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, KEYS, 150_000.0));
    b.at(
        10 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    standard_setup(&mut cluster, KEYS);
    cluster
        .run_until_migrated(ServerId(1), MigrationId(1), 10 * SECOND)
        .expect("migration completes");
    // The source never serves a PriorityPull...
    assert_eq!(
        cluster.server_stats[&ServerId(0)]
            .priority_pulls_served
            .get(),
        0
    );
    // ...so clients retry until the bulk pulls deliver (§4.2b).
    assert!(cluster.client_stats[0].borrow().retries.get() > 0);
}

#[test]
fn index_scans_span_split_indexlets_and_tablets() {
    const KEYS: u64 = 5_000;
    let index = IndexId(0);
    let mut b = builder();
    let dir = b.directory();
    // Index split at the median secondary key: indexlet 0 on server 1,
    // indexlet 1 on server 2; the table itself lives on server 0.
    let split_key = secondary_key(KEYS / 2, 30);
    b.add_scan(ScanConfig {
        dir,
        table: TABLE,
        index,
        sec_key_len: 30,
        num_keys: KEYS,
        indexlets: vec![
            (Vec::new(), Some(split_key.clone()), ServerId(1)),
            (split_key.clone(), None, ServerId(2)),
        ],
        scan_len: 4,
        dist: KeyDist::Zipfian { theta: 0.5 },
        scans_per_sec: 20_000.0,
        max_outstanding: 32,
        seed: 5,
    });
    let mut cluster = b.build();
    cluster.create_table(TABLE, &[(HashRange::full(), ServerId(0))]);
    cluster.load_table(TABLE, KEYS, 30, 100);
    cluster.seed_backups();

    // Build the two indexlets and fill them with sec-key -> hash entries.
    {
        let mut lower = Indexlet::new(TABLE, index, Vec::new(), Some(split_key.clone()));
        let mut upper_ix = Indexlet::new(TABLE, index, split_key.clone(), None);
        for rank in 0..KEYS {
            let sec = secondary_key(rank, 30);
            let hash = rocksteady_workload::core::primary_hash(rank, 30);
            if lower.covers(&sec) {
                lower.insert(&sec, hash);
            } else {
                upper_ix.insert(&sec, hash);
            }
        }
        assert!(!lower.is_empty() && !upper_ix.is_empty());
        cluster.node(ServerId(1)).master.add_indexlet(lower);
        cluster.node(ServerId(2)).master.add_indexlet(upper_ix);
    }

    cluster.run_until(100 * MILLISECOND);
    let stats = cluster.client_stats[0].borrow();
    let scans = stats.read_latency.merged();
    assert!(
        scans.count() > 500,
        "only {} scans completed",
        scans.count()
    );
    // Each 4-record scan fetches ~4 objects (edge scans may truncate).
    let objects = stats.objects.merged().count();
    assert!(
        objects as f64 > scans.count() as f64 * 3.0,
        "scans returned too few objects: {objects} for {} scans",
        scans.count()
    );
    // Two-phase operation: lookup + fetch across servers stays in the
    // tens-of-microseconds regime.
    let p50 = scans.percentile(0.5);
    assert!((8_000..60_000).contains(&p50), "median scan {p50} ns");
}
