//! The activity ledger, critical-path analyzer, and tail-blame report.
//!
//! Three properties matter and each gets a test: the ledger *conserves*
//! (per core, busy + idle sums exactly to wall-clock — no time invented
//! or lost), the exports are *deterministic* (same seed ⇒ byte-identical
//! folded stacks and critical-path JSON), and arming the profiler does
//! not *perturb* the simulation (identical `events_processed()` with
//! profiling on and off).

mod common;

use common::{standard_setup, upper, TABLE};
use rocksteady_cluster::{Cluster, ControlCmd};
use rocksteady_common::{MigrationId, ServerId, MILLISECOND};
use rocksteady_workload::YcsbConfig;

/// Runs the standard migration-under-load experiment with the given
/// instrumentation switches and returns the finished cluster.
fn run(seed: u64, profiling: bool, sla: Option<u64>) -> Cluster {
    let mut cfg = common::test_config();
    cfg.seed = seed;
    cfg.tracing = true;
    cfg.profiling = profiling;
    cfg.sla = sla;
    let mut b = rocksteady_cluster::ClusterBuilder::new(cfg);
    let dir = b.directory();
    b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, 5_000, 50_000.0));
    b.at(
        5 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    standard_setup(&mut cluster, 5_000);
    cluster.run_until(100 * MILLISECOND);
    cluster
}

#[test]
fn ledger_conserves_time_on_every_core() {
    let cluster = run(7, true, None);
    cluster.finalize_profile();
    let summary = cluster.profiler.validate().expect("conservation holds");
    // 3 servers x (1 dispatch + 4 workers).
    assert_eq!(summary.cores, 15);
    assert_eq!(summary.wall_ns, cluster.now());
    for core in cluster.profiler.cores() {
        let sum: u64 = core.buckets.iter().sum();
        assert_eq!(
            sum, core.wall,
            "server{} core{} buckets do not tile wall-clock",
            core.server, core.core
        );
    }
    // The migration actually charged its signature activities.
    let folded = cluster.export_folded();
    assert!(folded.contains(";replay "), "target replay never charged");
    assert!(
        folded.contains(";pull-gather "),
        "source pull gather never charged"
    );
    assert!(folded.contains(";service "), "client load never charged");
    assert!(folded.contains(";idle "), "idle never filled");
}

#[test]
fn exports_are_byte_identical_across_same_seed_runs() {
    let export = |seed| {
        let c = run(seed, true, Some(300_000));
        c.finalize_profile();
        let cp = c.critical_path_report().expect("migration traced");
        (c.export_folded(), cp.to_json())
    };
    let (folded_a, cp_a) = export(42);
    let (folded_b, cp_b) = export(42);
    assert_eq!(folded_a, folded_b, "folded stacks differ across same seed");
    assert_eq!(cp_a, cp_b, "critical-path JSON differs across same seed");

    let (folded_c, _) = export(43);
    assert_ne!(
        folded_a, folded_c,
        "different seeds produced identical profiles"
    );
}

#[test]
fn arming_the_profiler_does_not_perturb_the_simulation() {
    let on = run(11, true, None);
    let off = run(11, false, None);
    assert_eq!(
        on.sim.events_processed(),
        off.sim.events_processed(),
        "profiling changed the event schedule"
    );
    // And the trace — the other observer — is byte-identical too.
    assert_eq!(on.export_trace_json(), off.export_trace_json());
}

#[test]
fn critical_path_attributes_the_migration() {
    let cluster = run(5, true, None);
    let report = cluster.critical_path_report().expect("migration traced");
    assert!(report.finished > report.started);
    assert_eq!(report.total_ns, report.finished - report.started);
    // Acceptance bar: >= 90% of the migration interval attributed to
    // ranked components. (The sweep tiles the interval, so in practice
    // this is exactly 100%.)
    assert!(
        report.coverage_permille() >= 900,
        "only {}‰ of the migration attributed",
        report.coverage_permille()
    );
    let sum: u64 = report.components.iter().map(|c| c.ns).sum();
    assert_eq!(sum, report.attributed_ns, "components do not sum");
    // Ranked: descending, replay-dominated under this workload.
    for pair in report.components.windows(2) {
        assert!(pair[0].ns >= pair[1].ns, "components not ranked");
    }
    assert!(!report.components.is_empty());
}

#[test]
fn tail_blame_decomposes_slow_requests() {
    // An SLA of 1 ns makes every completed RPC "slow", so the blame
    // histogram must cover all of them.
    let cluster = run(3, true, Some(1));
    let blame = cluster.tail_blame_report().expect("sla configured");
    assert!(blame.total_rpcs > 0, "no RPCs decomposed");
    assert_eq!(
        blame.slow_rpcs, blame.total_rpcs,
        "1 ns SLA must blame every request"
    );
    assert_eq!(blame.blame_counts.iter().sum::<u64>(), blame.slow_rpcs);
    assert!(blame.dominant().is_some());
    assert!(blame.segment_ns.iter().sum::<u64>() > 0);

    // A generous SLA blames (almost) nothing, and never more than all.
    let cluster = run(3, true, Some(u64::MAX / 2));
    let blame = cluster.tail_blame_report().expect("sla configured");
    assert_eq!(blame.slow_rpcs, 0, "nothing exceeds a half-forever SLA");
    assert_eq!(blame.dominant(), None);
}
