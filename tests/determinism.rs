//! Same seed ⇒ bit-identical experiment.
//!
//! The whole reproduction rests on the simulator being deterministic:
//! every figure regenerates exactly, and every bug report replays. This
//! runs a full migration-under-load experiment twice per seed and
//! compares event counts plus latency-distribution digests.

mod common;

use common::{builder, standard_setup, upper, TABLE};
use rocksteady_cluster::ControlCmd;
use rocksteady_common::{MigrationId, ServerId, MILLISECOND};
use rocksteady_simnet::SchedulerKind;
use rocksteady_workload::YcsbConfig;

#[allow(clippy::type_complexity)]
fn digest(seed: u64) -> (u64, u64, u64, u64, u64, String, String, String) {
    let mut cfg = common::test_config();
    cfg.seed = seed;
    cfg.tracing = true;
    cfg.profiling = true;
    cfg.audit = true;
    let mut b = rocksteady_cluster::ClusterBuilder::new(cfg);
    let dir = b.directory();
    b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, 5_000, 50_000.0));
    b.at(
        5 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    standard_setup(&mut cluster, 5_000);
    cluster.run_until(100 * MILLISECOND);

    let reads = cluster.client_stats[0].borrow().read_latency.merged();
    let events = cluster.sim.events_processed();
    let replayed = cluster.server_stats[&ServerId(1)].records_replayed.get();
    cluster.finalize_profile();
    (
        events,
        reads.count(),
        reads.percentile(0.5),
        reads.percentile(0.999),
        replayed,
        cluster.export_folded(),
        cluster.export_audit_json(),
        cluster.export_journeys_json(),
    )
}

#[test]
fn identical_seeds_identical_traces() {
    let _ = builder(); // keep common helpers exercised
    assert_eq!(digest(1234), digest(1234));
}

/// Full-experiment digest under an explicit scheduler: event count plus
/// the byte-exact trace, profiler, and audit exports the swap must
/// preserve.
fn sched_digest(kind: SchedulerKind) -> (u64, String, String, String, String) {
    let mut cfg = common::test_config();
    cfg.seed = 1234;
    cfg.tracing = true;
    cfg.profiling = true;
    cfg.audit = true;
    cfg.scheduler = kind;
    let mut b = rocksteady_cluster::ClusterBuilder::new(cfg);
    let dir = b.directory();
    b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, 5_000, 50_000.0));
    b.at(
        5 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    standard_setup(&mut cluster, 5_000);
    cluster.run_until(100 * MILLISECOND);
    cluster.finalize_profile();
    (
        cluster.sim.events_processed(),
        cluster.export_trace_json(),
        cluster.export_folded(),
        cluster.export_audit_json(),
        cluster.export_journeys_json(),
    )
}

/// The tentpole's non-negotiable: swapping the calendar-queue scheduler
/// for the reference binary heap changes nothing observable. Event
/// count, the full trace export, and the profiler's folded stacks must
/// be byte-identical.
#[test]
fn scheduler_swap_is_byte_identical() {
    let cal = sched_digest(SchedulerKind::Calendar);
    let heap = sched_digest(SchedulerKind::BinaryHeap);
    assert_eq!(cal.0, heap.0, "events_processed diverged across schedulers");
    assert_eq!(cal.1, heap.1, "trace export diverged across schedulers");
    assert_eq!(cal.2, heap.2, "folded profile diverged across schedulers");
    assert_eq!(cal.3, heap.3, "audit export diverged across schedulers");
    assert_eq!(cal.4, heap.4, "journeys export diverged across schedulers");
}

/// Equal-deadline events must be delivered in push (FIFO) order, on both
/// schedulers. A hub actor fans one timer tick out to many peers with
/// identical delays; every delivery is appended to a shared schedule log
/// which must come out in exactly the fan-out order, twice.
mod same_timestamp {
    use std::cell::RefCell;
    use std::rc::Rc;

    use rocksteady_common::wire::{SimMessage, WireSized};
    use rocksteady_common::Nanos;
    use rocksteady_simnet::{Actor, ActorId, Ctx, Event, NicConfig, SchedulerKind, Simulation};

    #[derive(Debug)]
    struct Ping(u32);
    impl WireSized for Ping {
        fn wire_size(&self) -> u64 {
            0 // zero wire bytes: all copies arrive at exactly the same ns
        }
    }
    impl SimMessage for Ping {}

    type Log = Rc<RefCell<Vec<(Nanos, ActorId, u32)>>>;

    struct Hub {
        peers: Vec<ActorId>,
        rounds: u32,
    }
    impl Actor<Ping> for Hub {
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
            ctx.timer(1_000, 0);
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ping>, event: Event<Ping>) {
            if let Event::Timer { .. } = event {
                // Interleave two passes over the peers so the expected
                // FIFO order is not simply "actor id order".
                for pass in 0..2u32 {
                    for (i, &p) in self.peers.iter().enumerate() {
                        ctx.send(p, Ping(pass * self.peers.len() as u32 + i as u32));
                    }
                }
                self.rounds -= 1;
                if self.rounds > 0 {
                    ctx.timer(1_000, 0);
                }
            }
        }
    }

    struct Recorder {
        log: Log,
    }
    impl Actor<Ping> for Recorder {
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ping>, event: Event<Ping>) {
            if let Event::Message { payload, .. } = event {
                self.log
                    .borrow_mut()
                    .push((ctx.now(), ctx.self_id(), payload.0));
            }
        }
    }

    fn schedule(kind: SchedulerKind) -> Vec<(Nanos, ActorId, u32)> {
        let nic = NicConfig {
            bytes_per_ns: 1.0,
            one_way_latency_ns: 500,
        };
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::with_scheduler(nic, 7, kind);
        let peers: Vec<ActorId> = (0..16)
            .map(|_| sim.add_actor(Box::new(Recorder { log: log.clone() })))
            .collect();
        sim.add_actor(Box::new(Hub { peers, rounds: 4 }));
        sim.run_to_idle();
        drop(sim);
        Rc::try_unwrap(log).expect("sim dropped").into_inner()
    }

    #[test]
    fn equal_deadline_events_pop_in_fifo_order() {
        let cal = schedule(SchedulerKind::Calendar);
        assert!(!cal.is_empty());
        // 4 rounds × 2 passes × 16 peers, all at 500 ns after each tick.
        assert_eq!(cal.len(), 4 * 2 * 16);
        for round in 0..4 {
            let tick = &cal[round * 32..(round + 1) * 32];
            let at = tick[0].0;
            for (i, &(t, _, tag)) in tick.iter().enumerate() {
                assert_eq!(t, at, "same-deadline batch split across times");
                assert_eq!(tag as usize, i, "delivery order != push order");
            }
        }
        // And the reference heap produces the identical schedule.
        assert_eq!(cal, schedule(SchedulerKind::BinaryHeap));
    }
}

#[test]
fn different_seeds_different_traces() {
    let a = digest(1);
    let b = digest(2);
    assert_ne!(a.0, b.0, "event counts identical across seeds: {a:?}");
}
