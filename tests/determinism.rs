//! Same seed ⇒ bit-identical experiment.
//!
//! The whole reproduction rests on the simulator being deterministic:
//! every figure regenerates exactly, and every bug report replays. This
//! runs a full migration-under-load experiment twice per seed and
//! compares event counts plus latency-distribution digests.

mod common;

use common::{builder, standard_setup, upper, TABLE};
use rocksteady_cluster::ControlCmd;
use rocksteady_common::{ServerId, MILLISECOND};
use rocksteady_workload::YcsbConfig;

fn digest(seed: u64) -> (u64, u64, u64, u64, u64, String) {
    let mut cfg = common::test_config();
    cfg.seed = seed;
    cfg.tracing = true;
    cfg.profiling = true;
    let mut b = rocksteady_cluster::ClusterBuilder::new(cfg);
    let dir = b.directory();
    b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, 5_000, 50_000.0));
    b.at(
        5 * MILLISECOND,
        ControlCmd::Migrate {
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    standard_setup(&mut cluster, 5_000);
    cluster.run_until(100 * MILLISECOND);

    let reads = cluster.client_stats[0].borrow().read_latency.merged();
    let events = cluster.sim.events_processed();
    let replayed = cluster.server_stats[&ServerId(1)].records_replayed.get();
    cluster.finalize_profile();
    (
        events,
        reads.count(),
        reads.percentile(0.5),
        reads.percentile(0.999),
        replayed,
        cluster.export_folded(),
    )
}

#[test]
fn identical_seeds_identical_traces() {
    let _ = builder(); // keep common helpers exercised
    assert_eq!(digest(1234), digest(1234));
}

#[test]
fn different_seeds_different_traces() {
    let a = digest(1);
    let b = digest(2);
    assert_ne!(a.0, b.0, "event counts identical across seeds: {a:?}");
}
