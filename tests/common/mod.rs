//! Shared setup for the cross-crate integration tests.

use rocksteady_cluster::{Cluster, ClusterBuilder, ClusterConfig};
use rocksteady_common::{HashRange, KeyHash, ServerId, TableId, MILLISECOND};
use rocksteady_workload::core::primary_key;

/// The table every test uses.
pub const TABLE: TableId = TableId(1);
/// Split point: upper half of the hash space migrates.
pub const MID: KeyHash = u64::MAX / 2 + 1;
/// The migrating range.
pub fn upper() -> HashRange {
    HashRange {
        start: MID,
        end: u64::MAX,
    }
}

/// A small 3-server cluster configuration suitable for fast tests.
pub fn test_config() -> ClusterConfig {
    ClusterConfig {
        servers: 3,
        workers: 4,
        replicas: 2,
        sample_interval: MILLISECOND,
        series_interval: 10 * MILLISECOND,
        ..ClusterConfig::default()
    }
}

/// Creates the table on server 0, loads `keys` records, seeds backups,
/// and splits at [`MID`].
#[allow(dead_code)] // not every test binary uses every helper
pub fn standard_setup(cluster: &mut Cluster, keys: u64) {
    cluster.create_table(TABLE, &[(HashRange::full(), ServerId(0))]);
    cluster.load_table(TABLE, keys, 30, 100);
    cluster.seed_backups();
    cluster.split_tablet(TABLE, MID);
}

/// Convenience builder with the standard config.
#[allow(dead_code)] // not every test binary uses every helper
pub fn builder() -> ClusterBuilder {
    ClusterBuilder::new(test_config())
}

/// Verifies that every one of `keys` records is readable through its
/// current owner; returns how many live in the upper (migrated) half.
#[allow(dead_code)] // not every test binary uses every helper
pub fn verify_all_readable(cluster: &mut Cluster, keys: u64) -> u64 {
    let mut upper_count = 0;
    for rank in 0..keys {
        let key = primary_key(rank, 30);
        assert!(
            cluster.read_direct(TABLE, &key).is_some(),
            "rank {rank} is unreadable"
        );
        if upper().contains(rocksteady_common::key_hash(&key)) {
            upper_count += 1;
        }
    }
    upper_count
}
