//! Every migration mechanism must move the same data.
//!
//! Rocksteady and the pre-existing baseline (§2.3) differ in protocol,
//! not in outcome: after either completes, the target owns the range and
//! serves byte-identical records. The Figure 5 lever variants
//! deliberately break parts of the pipeline and must *not* transfer
//! ownership.

mod common;

use common::{builder, standard_setup, upper, verify_all_readable, TABLE};
use rocksteady_cluster::ControlCmd;
use rocksteady_common::{key_hash, MigrationId, ServerId, MILLISECOND, SECOND};
use rocksteady_master::TabletRole;
use rocksteady_proto::msg::BaselineOpts;
use rocksteady_workload::core::primary_key;

const KEYS: u64 = 3_000;

/// Runs a migration mechanism and returns the sorted list of
/// `(rank, version)` for upper-half keys readable at the target.
fn run_and_collect(cmd: ControlCmd, expect_transfer: bool) -> Vec<(u64, u64)> {
    let baseline = matches!(cmd, ControlCmd::MigrateBaseline { .. });
    let mut b = builder();
    b.at(5 * MILLISECOND, cmd);
    let mut cluster = b.build();
    standard_setup(&mut cluster, KEYS);
    if baseline {
        // For baseline runs the receiving master needs the tablet
        // registered before records arrive (RAMCloud pre-creates it);
        // Rocksteady registers its own PullingFrom tablet.
        cluster
            .node(ServerId(1))
            .master
            .add_tablet(TABLE, upper(), TabletRole::Owner);
    }
    cluster.run_until(3 * SECOND);

    let owner = cluster
        .coord
        .borrow()
        .tablet_for(TABLE, u64::MAX)
        .unwrap()
        .owner;
    if expect_transfer {
        assert_eq!(owner, ServerId(1), "ownership did not transfer");
        verify_all_readable(&mut cluster, KEYS);
    } else {
        assert_eq!(owner, ServerId(0), "lever variant must not transfer");
    }

    let mut out = Vec::new();
    for rank in 0..KEYS {
        let key = primary_key(rank, 30);
        let hash = key_hash(&key);
        if !upper().contains(hash) {
            continue;
        }
        let node = cluster.node(ServerId(1));
        let mut work = rocksteady_master::Work::default();
        if let Ok((_, version)) = node.master.read(TABLE, hash, Some(&key), &mut work) {
            out.push((rank, version));
        }
    }
    out.sort_unstable();
    out
}

#[test]
fn rocksteady_and_baseline_converge_to_identical_data() {
    let rocksteady = run_and_collect(
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
        true,
    );
    let baseline = run_and_collect(
        ControlCmd::MigrateBaseline {
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
            opts: BaselineOpts::default(),
        },
        true,
    );
    assert!(!rocksteady.is_empty());
    assert_eq!(
        rocksteady, baseline,
        "the two mechanisms moved different record sets"
    );
}

#[test]
fn skip_copy_lever_identifies_but_moves_nothing() {
    let moved = run_and_collect(
        ControlCmd::MigrateBaseline {
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
            opts: BaselineOpts {
                skip_copy: true,
                ..BaselineOpts::default()
            },
        },
        false,
    );
    assert!(
        moved.is_empty(),
        "skip_copy shipped {} records",
        moved.len()
    );
}

#[test]
fn skip_replay_lever_transmits_but_target_stores_nothing() {
    let moved = run_and_collect(
        ControlCmd::MigrateBaseline {
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
            opts: BaselineOpts {
                skip_replay: true,
                ..BaselineOpts::default()
            },
        },
        false,
    );
    assert!(
        moved.is_empty(),
        "skip_replay stored {} records",
        moved.len()
    );
}
