//! Cross-node journey reconstruction: the causal-tracing tentpole.
//!
//! A journey is everything that happened, on every node, for one client
//! operation — its attempts, the per-server latency decompositions they
//! caused, and the off-path PriorityPull a waiting read spawned. These
//! tests prove the three load-bearing properties end to end:
//!
//! 1. **Exact telescoping** (over several seeds): for every complete
//!    journey the per-hop `net_in + queue + service + hold + net_out`
//!    segments plus client-side gaps sum to the client-measured
//!    first-issue → final-response latency, in integer nanoseconds.
//! 2. **Migration crossing**: a read that races an ownership flip
//!    yields one journey — on one trace id — containing both the
//!    source-side miss hop and the PriorityPull issued on its behalf.
//! 3. **Zero perturbation**: arming journeys changes no event schedule,
//!    and ring-mode eviction yields `truncated` journeys, never panics
//!    or silently wrong sums.

mod common;

use common::{standard_setup, upper, TABLE};
use rocksteady_cluster::{ControlCmd, FlightRecorderConfig, Journey};
use rocksteady_common::{MigrationId, ServerId, MILLISECOND};
use rocksteady_workload::YcsbConfig;

/// Runs the standard one-migration experiment and returns the cluster.
fn run(seed: u64, tracing: bool, trace_capacity: Option<usize>) -> rocksteady_cluster::Cluster {
    let mut cfg = common::test_config();
    cfg.seed = seed;
    cfg.tracing = tracing;
    if let Some(capacity) = trace_capacity {
        cfg.flight_recorder = Some(FlightRecorderConfig {
            trace_capacity: Some(capacity),
            ..FlightRecorderConfig::default()
        });
    }
    let mut b = rocksteady_cluster::ClusterBuilder::new(cfg);
    let dir = b.directory();
    b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, 5_000, 50_000.0));
    b.at(
        5 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    standard_setup(&mut cluster, 5_000);
    cluster.run_until(60 * MILLISECOND);
    cluster
}

/// Recomputes a journey's telescoping sum from its raw hops.
fn on_path_sum(j: &Journey) -> u64 {
    j.hops
        .iter()
        .filter(|h| h.on_path)
        .map(|h| h.net_in + h.queue + h.service + h.hold + h.net_out + h.gap_before)
        .sum()
}

#[test]
fn cross_node_telescoping_is_integer_exact_over_seeds() {
    for seed in [11, 12, 13] {
        let cluster = run(seed, true, None);
        let journeys = cluster.journeys();
        assert!(
            journeys.len() > 500,
            "seed {seed}: only {} journeys",
            journeys.len()
        );
        let mut complete = 0;
        for j in &journeys {
            assert!(
                !j.hops.is_empty(),
                "seed {seed}: hopless journey {}",
                j.trace
            );
            if j.truncated {
                continue;
            }
            complete += 1;
            assert!(
                j.telescoped,
                "seed {seed}: complete journey {} does not telescope: chain {}",
                j.trace,
                j.chain()
            );
            // The exact integer identity, recomputed from raw hops.
            assert_eq!(
                on_path_sum(j),
                j.e2e,
                "seed {seed}: segments do not tile e2e for {}",
                j.trace
            );
            assert_eq!(j.e2e, j.completed - j.issued);
        }
        assert!(
            complete > 500,
            "seed {seed}: only {complete} complete journeys"
        );
        // The full-buffer run must not report phantom truncation for
        // the overwhelming majority of journeys (only operations still
        // in flight at the cutoff may look incomplete).
        assert!(
            complete as f64 > journeys.len() as f64 * 0.9,
            "seed {seed}: {complete}/{} complete",
            journeys.len()
        );
    }
}

#[test]
fn read_crossing_flip_has_miss_and_priority_pull_on_one_trace() {
    let cluster = run(42, true, None);
    let journeys = cluster.journeys();
    // A read that raced the ownership flip: several attempts, work on
    // more than one server, and a PriorityPull issued on its behalf —
    // all under a single trace id.
    let crossing: Vec<&Journey> = journeys
        .iter()
        .filter(|j| {
            j.attempts >= 2
                && j.hops
                    .iter()
                    .any(|h| !h.on_path && h.name == "priority-pull")
                && j.hops.iter().any(|h| h.on_path && h.name == "read")
        })
        .collect();
    assert!(
        !crossing.is_empty(),
        "no journey crossed the migration with an inherited PriorityPull"
    );
    let multi_server = crossing.iter().any(|j| {
        let first = j.hops[0].server;
        j.hops.iter().any(|h| h.server != first)
    });
    assert!(multi_server, "crossing journeys never spanned two servers");
    // At least one such journey is structurally complete and telescopes
    // across the retries, the flip, and the pull.
    let telescoped = crossing
        .iter()
        .find(|j| j.telescoped)
        .unwrap_or_else(|| panic!("none of {} crossing journeys telescoped", crossing.len()));
    assert!(telescoped.crossed_migration());
    assert!(telescoped.hops.len() >= 3, "chain: {}", telescoped.chain());
    assert_eq!(on_path_sum(telescoped), telescoped.e2e);
    // And the harness can fetch exactly this journey by trace id.
    let fetched = cluster
        .request_journey(rocksteady_common::TraceId(telescoped.trace))
        .expect("request_journey missed a known trace id");
    assert_eq!(fetched.chain(), telescoped.chain());
    assert_eq!(fetched.e2e, telescoped.e2e);
}

#[test]
fn arming_journeys_does_not_perturb_and_disarmed_exports_empty() {
    let armed = run(7, true, None);
    let disarmed = run(7, false, None);
    assert_eq!(
        armed.sim.events_processed(),
        disarmed.sim.events_processed(),
        "arming the tracer changed the event schedule"
    );
    assert!(!armed.journeys().is_empty());
    assert!(disarmed.journeys().is_empty());
    assert_eq!(
        disarmed.export_journeys_json(),
        "{\"schema\":\"rocksteady-journeys-v1\",\"dropped\":0,\"journeys\":[]}"
    );
    // Same seed, armed twice: byte-identical journey documents.
    let again = run(7, true, None);
    assert_eq!(armed.export_journeys_json(), again.export_journeys_json());
}

#[test]
fn ring_mode_eviction_truncates_instead_of_lying() {
    // A ring far too small for the run: early hops of old journeys are
    // evicted while their tails survive.
    let cluster = run(5, true, Some(2_048));
    let json = cluster.export_journeys_json();
    assert!(json.starts_with("{\"schema\":\"rocksteady-journeys-v1\""));
    let journeys = cluster.journeys();
    assert!(!journeys.is_empty(), "ring run reconstructed no journeys");
    for j in &journeys {
        if j.telescoped {
            // A telescoping claim is only ever made on complete
            // journeys, and must still be integer-exact.
            assert!(!j.truncated);
            assert_eq!(on_path_sum(j), j.e2e, "ring-surviving journey lies");
        }
        // Surviving hops stay internally consistent even when early
        // ones were evicted.
        for h in &j.hops {
            assert_eq!(
                h.net_in + h.queue + h.service + h.hold,
                h.resp_sent - h.sent_at,
                "hop segments do not tile the server residence time"
            );
        }
    }
}

/// Satellite regression: a read that retries across the ownership flip
/// must land in the client latency histogram exactly once (first issue
/// → final success), with the extra attempts visible only in the
/// `client_read_attempts_total` counter.
#[test]
fn retried_reads_count_once_in_client_histograms() {
    let cluster = run(42, true, None);
    let stats = cluster.client_stats[0].borrow();
    let hist_count = stats.read_latency.merged().count();
    let attempts = stats.read_attempts.get();
    let retries = stats.retries.get();
    drop(stats);
    assert!(retries > 0, "run never exercised the retry path");
    assert!(
        attempts > hist_count,
        "attempts ({attempts}) must exceed completed reads ({hist_count}) when retries occurred"
    );
    let journeys = cluster.journeys();
    // Completed reads (status ok=0 or not-found=3) whose journey is a
    // read journey — each corresponds to exactly one histogram sample.
    let read_journeys: Vec<&Journey> = journeys
        .iter()
        .filter(|j| j.hops.iter().any(|h| h.name == "read"))
        .collect();
    let completed = read_journeys
        .iter()
        .filter(|j| j.final_status == 0 || j.final_status == 3)
        .count() as u64;
    assert_eq!(
        completed, hist_count,
        "histogram samples must equal completed read operations, not attempts"
    );
    // A read that retried at least twice (3+ attempts) across the flip
    // still shows up as ONE completed operation whose e2e covers all
    // its attempts.
    let retried = read_journeys
        .iter()
        .find(|j| j.attempts >= 3 && j.final_status == 0)
        .expect("no read retried twice across the flip");
    assert_eq!(retried.e2e, retried.completed - retried.issued);
    assert!(retried.e2e > 0);
    // And the attempt counter accounts for every recorded attempt.
    let journey_attempts: u64 = read_journeys.iter().map(|j| j.attempts).sum();
    assert!(
        attempts >= journey_attempts,
        "counter {attempts} < recorded attempts {journey_attempts}"
    );
}
