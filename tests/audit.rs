//! The cluster-wide protocol auditor, end to end.
//!
//! Arms `ClusterConfig::audit` on full experiments and pins its three
//! contracts:
//!
//! - **Non-perturbing**: an armed auditor changes nothing observable —
//!   `events_processed()`, the trace export, and the folded profile are
//!   byte-identical to a disarmed run of the same seed.
//! - **Sound on healthy runs**: a clean migration under load checks out
//!   on every invariant (zero violations, the migration verified for
//!   record conservation), and the JSON/DOT exports are deterministic.
//! - **Sensitive to real bugs**: a test-only fault hook that makes the
//!   source skip its ownership flip (so both ends serve the range with
//!   no dual-serving window ever closing) makes the single-owner
//!   invariant fire, with a causal chain that reaches back to the
//!   migration's admission.

mod common;

use common::{standard_setup, test_config, upper, TABLE};
use rocksteady_cluster::{Cluster, ClusterBuilder, ClusterConfig, ControlCmd};
use rocksteady_common::{MigrationId, ServerId, MILLISECOND, SECOND};
use rocksteady_workload::YcsbConfig;

const KEYS: u64 = 5_000;

/// One migration under YCSB-B load, with every observability layer on.
fn audited_cfg(seed: u64) -> ClusterConfig {
    ClusterConfig {
        seed,
        tracing: true,
        profiling: true,
        audit: true,
        ..test_config()
    }
}

fn migration_script(b: &mut ClusterBuilder) {
    b.at(
        5 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
}

fn run_audited(cfg: ClusterConfig) -> Cluster {
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, KEYS, 50_000.0));
    migration_script(&mut b);
    let mut cluster = b.build();
    standard_setup(&mut cluster, KEYS);
    cluster.run_until(100 * MILLISECOND);
    cluster
}

/// Arming the auditor must not move a single event: the schedule, the
/// trace, and the profile of an audited run are byte-identical to the
/// disarmed run — auditing observes the experiment, never participates
/// in it.
#[test]
fn armed_auditor_is_byte_identical_to_disarmed() {
    let digest = |audit: bool| {
        let mut cfg = audited_cfg(77);
        cfg.audit = audit;
        let cluster = run_audited(cfg);
        cluster.finalize_profile();
        (
            cluster.sim.events_processed(),
            cluster.export_trace_json(),
            cluster.export_folded(),
        )
    };
    let off = digest(false);
    let on = digest(true);
    assert_eq!(off.0, on.0, "audit arming changed events_processed");
    assert_eq!(off.1, on.1, "audit arming changed the trace export");
    assert_eq!(off.2, on.2, "audit arming changed the folded profile");
}

/// A healthy migration under load: every invariant checks out, the
/// migration is verified for record conservation, and the counters
/// surface in the shared metrics registry.
#[test]
fn clean_migration_audits_clean_and_verified() {
    let cluster = run_audited(audited_cfg(42));
    assert!(
        cluster
            .migration_finished(ServerId(1), MigrationId(1))
            .is_some(),
        "migration never finished"
    );

    let report = cluster.audit_report();
    assert!(report.events > 1_000, "only {} audit events", report.events);
    assert_eq!(
        report.violations,
        0,
        "clean run violated invariants: {:?}",
        cluster.audit.violations()
    );
    assert_eq!(report.migrations_verified, 1);
    assert_eq!(report.migrations_abandoned, 0);
    // Every invariant class actually ran its checks.
    for (name, checked, violated) in &report.per_invariant {
        assert!(checked > &0, "invariant {name} never checked anything");
        assert_eq!(violated, &0, "invariant {name} fired on a clean run");
    }

    // The satellite counters ride the ordinary metrics exports.
    let prom = cluster.export_metrics_prometheus();
    assert!(prom.contains("audit_events_total"));
    assert!(prom.contains("audit_migrations_verified_total 1"));
    assert!(prom.contains(r#"audit_violations_total{invariant="single-owner"} 0"#));
    let json = cluster.export_metrics_json();
    assert!(json.contains("audit_events_total"));
}

/// The exports are structured and byte-identical across same-seed runs
/// (the auditor sorts or aggregates everywhere it touches a hash map).
#[test]
fn audit_exports_are_deterministic() {
    let a = run_audited(audited_cfg(1234));
    let b = run_audited(audited_cfg(1234));
    let ja = a.export_audit_json();
    assert_eq!(ja, b.export_audit_json(), "audit JSON diverged across runs");
    assert_eq!(
        a.export_audit_dot(),
        b.export_audit_dot(),
        "audit DOT diverged across runs"
    );
    assert!(ja.starts_with("{\"schema\":\"rocksteady-audit-v1\""));
    assert!(ja.contains("\"violations\":[]"));
    assert!(ja.contains("\"timeline\":["));
    let dot = a.export_audit_dot();
    assert!(dot.starts_with("digraph ownership"));
    assert!(
        dot.contains(r#""s0" -> "s1""#),
        "migration edge missing: {dot}"
    );
}

/// The explain engine walks a finished migration's causal chain and
/// ranks breach suspects inside a wall-clock window.
#[test]
fn explain_engine_reconstructs_the_causal_story() {
    let cluster = run_audited(audited_cfg(42));
    let fin = cluster
        .migration_finished(ServerId(1), MigrationId(1))
        .expect("migration never finished");

    let story = cluster
        .explain_migration(MigrationId(1))
        .expect("explain_migration found nothing for a finished run");
    assert!(story.contains("\"outcome\":\"committed\""), "{story}");
    assert!(story.contains("\"origin\":\"scripted\""), "{story}");
    assert!(story.contains("\"verified\":1"), "{story}");
    assert!(story.contains("\"chain\":["), "{story}");

    // A breach window covering the migration names it as the suspect.
    let explain = cluster
        .explain_slo_breach(5 * MILLISECOND, fin + MILLISECOND)
        .expect("no suspects inside the migration window");
    assert!(explain.contains("\"cause\":\"migration\""), "{explain}");
    assert!(explain.contains("\"rank\":1"), "{explain}");

    // A window long after the run has quiesced has no story to tell.
    assert!(cluster
        .explain_slo_breach(10 * SECOND, 11 * SECOND)
        .is_none());
}

/// The injected protocol bug: the source answers `PrepareMigration`
/// with its version ceiling but never flips the tablet out of `Owner`,
/// so both ends serve the range forever. The auditor must catch the
/// dual-serving window that never closed — and explain it causally.
#[test]
fn skipped_source_flip_trips_the_single_owner_invariant() {
    let mut cfg = audited_cfg(42);
    cfg.migration.test_skip_source_flip = true;
    let cluster = run_audited(cfg);
    assert!(
        cluster
            .migration_finished(ServerId(1), MigrationId(1))
            .is_some(),
        "migration should still complete under the skipped flip"
    );

    let violations = cluster.audit.violations();
    let single_owner: Vec<_> = violations
        .iter()
        .filter(|v| v.invariant == "single-owner")
        .collect();
    assert!(
        !single_owner.is_empty(),
        "auditor missed the skipped ownership flip: {violations:?}"
    );
    let v = single_owner[0];
    assert!(
        !v.chain.is_empty(),
        "violation carries no causal chain: {v:?}"
    );
    assert!(
        v.detail.contains("window"),
        "detail unhelpful: {}",
        v.detail
    );
    // The bugged migration must not count as conservation-verified
    // evidence of a healthy run... though its records did all arrive.
    let json = cluster.export_audit_json();
    assert!(json.contains("\"violations\":[{"), "{json}");
}
