//! Acceptance tests for the unified metrics registry: deterministic
//! exports, the no-perturbation contract, the live SLO monitor, and
//! stat-reset semantics across back-to-back migrations.

mod common;

use common::{standard_setup, test_config, upper, verify_all_readable, MID, TABLE};
use rocksteady_cluster::{Cluster, ClusterBuilder, ClusterConfig, ControlCmd};
use rocksteady_common::{HashRange, MigrationId, Nanos, ServerId, MILLISECOND, SECOND};
use rocksteady_metrics::SampleValue;
use rocksteady_workload::YcsbConfig;

/// The non-migrating half of the key space.
fn lower() -> HashRange {
    HashRange {
        start: 0,
        end: MID - 1,
    }
}

fn ycsb_cluster(cfg: ClusterConfig, keys: u64, ops_per_sec: f64) -> Cluster {
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, keys, ops_per_sec));
    let mut cluster = b.build();
    standard_setup(&mut cluster, keys);
    cluster
}

/// Same seed → byte-identical JSON, snapshot-series JSON, and
/// Prometheus text; different seed → different values. The exports are
/// the metrics analogue of the trace layer's chrome JSON contract.
#[test]
fn same_seed_metrics_exports_are_byte_identical() {
    let export = |seed: u64| {
        let mut cfg = test_config();
        cfg.seed = seed;
        cfg.metrics = true;
        cfg.sla = Some(200_000);
        let mut cluster = ycsb_cluster(cfg, 1_000, 30_000.0);
        cluster.run_until(20 * MILLISECOND);
        cluster
            .metrics
            .validate()
            .expect("registry invariants hold");
        (
            cluster.export_metrics_json(),
            cluster.export_metrics_series_json(),
            cluster.export_metrics_prometheus(),
        )
    };
    let a = export(7);
    assert_eq!(a, export(7), "same-seed exports differ");
    assert_ne!(
        a.0,
        export(8).0,
        "different seeds exported identical metrics"
    );

    // The exports carry every layer's families: server counters, client
    // histograms, and the SLO monitor's gauges.
    for family in [
        "node_ops_served",
        "node_dispatch_busy_ns",
        "client_read_latency_ns",
        "slo_read_sla_ns",
        "slo_breach_intervals_total",
    ] {
        assert!(a.0.contains(family), "JSON export lacks {family}");
        assert!(a.2.contains(family), "Prometheus export lacks {family}");
    }
    assert!(a.2.contains("# TYPE node_ops_served counter"));
    assert!(a.2.contains("quantile=\"0.999\""));
    // One snapshot per sampling interval made it into the series.
    let snapshots = a.1.matches("{\"at\":").count();
    assert!(
        (15..=21).contains(&snapshots),
        "expected ~20 snapshots over 20 ms at a 1 ms cadence, got {snapshots}"
    );
}

/// Arming metrics capture and an SLA must not change the event
/// schedule: instruments always record, and the sampler/SLO actors run
/// on fixed cadences either way.
#[test]
fn arming_metrics_and_sla_does_not_perturb_the_simulation() {
    let run = |armed: bool| {
        let mut cfg = test_config();
        if armed {
            cfg.metrics = true;
            cfg.sla = Some(100_000);
        }
        let mut cluster = ycsb_cluster(cfg, 1_000, 30_000.0);
        cluster.run_until(20 * MILLISECOND);
        let snaps = cluster.snapshots.borrow().len();
        (
            cluster.sim.events_processed(),
            snaps,
            cluster.export_metrics_json(),
        )
    };
    let (events_off, snaps_off, json_off) = run(false);
    let (events_on, snaps_on, json_on) = run(true);
    assert_eq!(snaps_off, 0, "disarmed capture buffered snapshots");
    assert!(snaps_on > 0, "armed capture buffered nothing");
    assert_eq!(
        events_off, events_on,
        "arming metrics changed the simulation's event schedule"
    );
    // On-demand export works regardless of capture, and sees the same
    // simulation — only the SLO gauges reflect the configured SLA.
    assert!(json_off.contains("node_ops_served"));
    assert_ne!(json_off, json_on, "the SLA gauge should differ");
}

fn slo_run(migrate: bool, sla: Nanos) -> (rocksteady_cluster::SloReport, u64) {
    let mut cfg = test_config();
    cfg.sla = Some(sla);
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, 3_000, 40_000.0));
    if migrate {
        b.at(
            10 * MILLISECOND,
            ControlCmd::Migrate {
                id: MigrationId(1),
                table: TABLE,
                range: upper(),
                source: ServerId(0),
                target: ServerId(1),
            },
        );
    }
    let mut cluster = b.build();
    standard_setup(&mut cluster, 3_000);
    if migrate {
        cluster
            .run_until_migrated(ServerId(1), MigrationId(1), SECOND)
            .expect("migration never finished");
    }
    cluster.run_until(150 * MILLISECOND);
    let breaches = match cluster
        .metrics
        .snapshot(cluster.now())
        .get("slo_breach_intervals_total", &[])
    {
        Some(SampleValue::Counter(v)) => *v,
        other => panic!("breach counter missing: {other:?}"),
    };
    (cluster.slo_report(), breaches)
}

/// The live monitor sees an unthrottled migration blow through a tight
/// read SLA (breach intervals accumulate), while the same workload and
/// SLA without a migration stays clean with positive headroom.
#[test]
fn slo_monitor_flags_migration_breaches_but_not_idle_load() {
    // Calibration (§2 anchors): idle windowed p999 sits near 7 us at
    // this load; an unthrottled migration spikes it past 50 us. A 20 us
    // SLA is ~3x above idle and ~3x below the migration spike.
    const SLA: Nanos = 20_000;
    let (idle, idle_breaches) = slo_run(false, SLA);
    assert_eq!(idle.sla, Some(SLA));
    assert_eq!(
        idle_breaches, 0,
        "SLA breached without a migration (idle p999 {} ns)",
        idle.p999
    );
    assert_eq!(idle.breach_intervals, 0);
    assert!(idle.window_reads > 0, "no reads in the final idle window");
    assert!(!idle.breached());

    let (mig, mig_breaches) = slo_run(true, SLA);
    assert!(
        mig_breaches > 0,
        "unthrottled migration never breached a {SLA} ns SLA (last window p999 {} ns)",
        mig.p999
    );
    assert_eq!(
        mig.breach_intervals, mig_breaches,
        "report and counter agree"
    );
}

/// Regression test for stale migration stamps: a target that has
/// already completed one migration must not report the old
/// `finished_at` once the next migration begins (previously the
/// baseline path never cleared it, and `run_until_migrated` would
/// return immediately with the first run's stamp).
#[test]
fn back_to_back_migrations_reset_stale_stamps() {
    let mut b = ClusterBuilder::new(test_config());
    b.at(
        5 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    b.at(
        500 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(2),
            table: TABLE,
            range: lower(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    standard_setup(&mut cluster, 3_000);

    let first = cluster
        .run_until_migrated(ServerId(1), MigrationId(1), 400 * MILLISECOND)
        .expect("first migration never finished");
    assert!(first < 400 * MILLISECOND);

    // Once the second command fires, `begin_migration` must clear the
    // first run's stamps: while the second run is in flight the target
    // reports started-but-not-finished. Poll in 10 us steps (the
    // unloaded run takes ~300 us, so the in-flight state is visible at
    // this granularity).
    cluster.run_until(500 * MILLISECOND);
    let mut saw_in_flight = false;
    for step in 1..=2_000u64 {
        cluster.run_until(500 * MILLISECOND + step * 10_000);
        let view = cluster.server_stats[&ServerId(1)].view();
        if view
            .migration_started_at
            .is_some_and(|s| s >= 500 * MILLISECOND)
        {
            assert_eq!(
                view.migration_finished_at, None,
                "first run's finished_at leaked into the second migration"
            );
            saw_in_flight = true;
            break;
        }
    }
    assert!(saw_in_flight, "second migration never began");

    // So waiting on the second migration observes its own completion,
    // not the stale stamp.
    let second = cluster
        .run_until_migrated(ServerId(1), MigrationId(2), 5 * SECOND)
        .expect("second migration never finished");
    assert!(
        second > 500 * MILLISECOND,
        "run_until_migrated returned the first run's stamp ({second})"
    );

    // Both halves moved; every record is readable on the new owner, and
    // the cumulative replay counter covers the whole table.
    verify_all_readable(&mut cluster, 3_000);
    let final_view = cluster.server_stats[&ServerId(1)].view();
    assert!(
        final_view.records_replayed >= 3_000,
        "replayed only {} of 3000 records across both runs",
        final_view.records_replayed
    );

    // The sampler differenced cleanly across both runs: utilization
    // samples stay in range (no underflow blow-ups).
    for points in cluster.util.borrow().by_server.values() {
        for p in points {
            assert!(
                (0.0..=1.0).contains(&p.dispatch),
                "dispatch utilization out of range: {}",
                p.dispatch
            );
        }
    }
}
