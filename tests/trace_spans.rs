//! Acceptance tests for the deterministic trace layer.
//!
//! The tentpole contract: per-RPC span segments must *telescope* — the
//! four server-side segments plus the response's network time account
//! for every nanosecond of the latency the client measured — and two
//! runs with the same seed must export byte-identical traces.

mod common;

use std::collections::HashMap;

use common::{standard_setup, test_config, upper, TABLE};
use rocksteady_cluster::{Cluster, ClusterBuilder, ClusterConfig, ControlCmd};
use rocksteady_common::{MigrationId, ServerId, MILLISECOND, SECOND};
use rocksteady_trace::Phase;
use rocksteady_workload::YcsbConfig;

fn traced_config() -> ClusterConfig {
    ClusterConfig {
        tracing: true,
        ..test_config()
    }
}

fn ycsb_cluster(cfg: ClusterConfig, keys: u64, ops_per_sec: f64) -> Cluster {
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, keys, ops_per_sec));
    let mut cluster = b.build();
    standard_setup(&mut cluster, keys);
    cluster
}

/// Per-RPC server segments + response network time must sum exactly to
/// the client-observed end-to-end latency of that attempt.
#[test]
fn rpc_segments_sum_to_client_latency() {
    let mut cluster = ycsb_cluster(traced_config(), 2_000, 40_000.0);
    cluster.run_until(30 * MILLISECOND);

    // Client attempt instants keyed by (client pid, rpc id).
    let (client_attempts, server_rpcs) = cluster.trace.with_events(|events| {
        let mut attempts: HashMap<(u64, u64), (u64, u64)> = HashMap::new();
        let mut rpcs: HashMap<(u64, u64), (u64, u64)> = HashMap::new();
        for ev in events {
            if ev.ph != Phase::Instant {
                continue;
            }
            if ev.name == "rpc-client" {
                attempts.insert(
                    (ev.pid, ev.arg("rpc").unwrap()),
                    (ev.arg("issued").unwrap(), ev.arg("completed").unwrap()),
                );
            } else if ev.cat == "rpc" {
                let key = (ev.arg("src").unwrap(), ev.arg("rpc").unwrap());
                let segments = ev.arg("net_in").unwrap()
                    + ev.arg("queue").unwrap()
                    + ev.arg("service").unwrap()
                    + ev.arg("hold").unwrap();
                rpcs.insert(key, (ev.arg("sent_at").unwrap(), segments));
            }
        }
        (attempts, rpcs)
    });

    let mut matched = 0u64;
    for ((pid, rpc), (issued, completed)) in &client_attempts {
        let Some((sent_at, server_segments)) = server_rpcs.get(&(*pid, *rpc)) else {
            continue; // e.g. a response that raced the 30 ms cutoff
        };
        // The kernel stamps `sent_at` at the same virtual instant the
        // client issues, so the segments telescope exactly.
        assert_eq!(sent_at, issued, "rpc {rpc}: sent_at != issue time");
        let resp_sent = issued + server_segments;
        assert!(
            resp_sent <= *completed,
            "rpc {rpc}: response sent at {resp_sent} after completion {completed}"
        );
        let e2e = completed - issued;
        let net_out = completed - resp_sent;
        assert_eq!(
            server_segments + net_out,
            e2e,
            "rpc {rpc}: segments do not telescope"
        );
        matched += 1;
    }
    assert!(matched > 100, "only {matched} RPCs matched client↔server");
}

/// Same seed → byte-identical export; different seed → different trace.
#[test]
fn same_seed_traces_are_byte_identical() {
    let export = |seed: u64| {
        let mut cfg = traced_config();
        cfg.seed = seed;
        let mut cluster = ycsb_cluster(cfg, 1_000, 30_000.0);
        cluster.run_until(20 * MILLISECOND);
        cluster.export_trace_json()
    };
    let a = export(7);
    assert_eq!(a, export(7), "same-seed exports differ");
    assert_ne!(a, export(8), "different seeds exported identical traces");
}

/// With tracing disabled nothing is recorded, and arming the tracer
/// must not perturb the simulation itself (no extra events, rng draws,
/// or schedule changes).
#[test]
fn disabled_tracing_records_nothing_and_arming_does_not_perturb() {
    let run = |tracing: bool| {
        let mut cfg = traced_config();
        cfg.tracing = tracing;
        let mut cluster = ycsb_cluster(cfg, 1_000, 30_000.0);
        cluster.run_until(20 * MILLISECOND);
        (cluster.sim.events_processed(), cluster.trace.len())
    };
    let (events_off, recorded_off) = run(false);
    let (events_on, recorded_on) = run(true);
    assert_eq!(recorded_off, 0, "disabled tracer recorded events");
    assert!(recorded_on > 0, "armed tracer recorded nothing");
    assert_eq!(
        events_off, events_on,
        "tracing changed the simulation's event schedule"
    );
}

/// A traced migration validates (completion-ordered, properly nested
/// lanes) and contains every expected phase span.
#[test]
fn migration_trace_validates_with_all_phases() {
    let mut b = ClusterBuilder::new(traced_config());
    let dir = b.directory();
    b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, 5_000, 40_000.0));
    b.at(
        5 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    standard_setup(&mut cluster, 5_000);
    let done = cluster.run_until_migrated(ServerId(1), MigrationId(1), 5 * SECOND);
    assert!(done.is_some(), "migration never finished");
    cluster.run_until(cluster.now() + 10 * MILLISECOND);

    let summary = cluster.trace.validate().expect("trace invariants hold");
    assert!(summary.spans > 100, "suspiciously few spans");

    for phase in [
        "mig:prepare",
        "mig:ownership-flip",
        "mig:run",
        "mig:commit",
        "migration",
        "mig:pull",
        "mig:replay",
    ] {
        assert!(
            cluster.trace.span_histogram(phase).count() > 0,
            "no {phase} span recorded"
        );
    }
    // Bulk pulls move the data; the pull histogram is what the figure
    // pipeline consumes.
    let pulls = cluster.trace.span_histogram("mig:pull");
    assert!(pulls.count() >= 8, "fewer pulls than partitions");

    // The export round-trips through the validator's assumptions.
    let json = cluster.export_trace_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"name\":\"migration\""));
}
