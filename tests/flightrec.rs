//! The always-on flight recorder, end to end.
//!
//! Pins the recorder's four contracts:
//!
//! - **Non-perturbing**: arming the recorder (default config — no ring
//!   capacities) leaves `events_processed()`, the trace export, and the
//!   folded profile byte-identical to a disarmed run of the same seed.
//! - **Quiet when healthy**: clean migrations under load across several
//!   seeds produce zero incidents.
//! - **Sensitive to injected faults**: a stalled migration (source
//!   swallows pulls), a replay backlog (target defers replay), and an
//!   SLO burn each produce *exactly one* incident bundle whose trigger
//!   names the right dominant cause — and the bundle is byte-identical
//!   across same-seed runs.
//! - **Bounded in ring mode**: with ring capacities set, the trace
//!   buffer never exceeds its capacity while the drop counters account
//!   for everything evicted.

mod common;

use common::{standard_setup, test_config, upper, TABLE};
use rocksteady_cluster::{
    Cluster, ClusterBuilder, ClusterConfig, ControlCmd, FlightRecorderConfig, ReplayBacklogConfig,
    SloBurnConfig,
};
use rocksteady_common::{MigrationId, ServerId, MILLISECOND};
use rocksteady_workload::YcsbConfig;

const KEYS: u64 = 5_000;

fn recorded_cfg(seed: u64, fr: Option<FlightRecorderConfig>) -> ClusterConfig {
    ClusterConfig {
        seed,
        tracing: true,
        profiling: true,
        audit: true,
        sla: Some(300_000),
        flight_recorder: fr,
        ..test_config()
    }
}

fn run_recorded(cfg: ClusterConfig) -> Cluster {
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, KEYS, 50_000.0));
    b.at(
        5 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    standard_setup(&mut cluster, KEYS);
    cluster.run_until(100 * MILLISECOND);
    cluster
}

/// Arming the recorder must not move a single event: schedule, trace,
/// and profile are byte-identical to the disarmed run — the watchdog
/// actor ticks on the same cadence either way, and the default config
/// leaves both ring buffers unbounded.
#[test]
fn armed_recorder_is_byte_identical_to_disarmed() {
    let digest = |fr: Option<FlightRecorderConfig>| {
        let cluster = run_recorded(recorded_cfg(77, fr));
        cluster.finalize_profile();
        (
            cluster.sim.events_processed(),
            cluster.export_trace_json(),
            cluster.export_folded(),
        )
    };
    let off = digest(None);
    let on = digest(Some(FlightRecorderConfig::default()));
    assert_eq!(off.0, on.0, "recorder arming changed events_processed");
    assert_eq!(off.1, on.1, "recorder arming changed the trace export");
    assert_eq!(off.2, on.2, "recorder arming changed the folded profile");
}

/// Healthy migrations under load, several seeds: the watchdog evaluates
/// every detector on every interval and none of them fires.
#[test]
fn clean_runs_produce_zero_incidents() {
    for seed in [42, 7, 9] {
        let cluster = run_recorded(recorded_cfg(seed, Some(FlightRecorderConfig::default())));
        assert!(
            cluster
                .migration_finished(ServerId(1), MigrationId(1))
                .is_some(),
            "seed {seed}: migration never finished"
        );
        assert_eq!(
            cluster.incident_count(),
            0,
            "seed {seed}: false positive: {}",
            cluster.export_incidents_json()
        );
        assert_eq!(cluster.export_incidents_json(), "[]");
    }
}

/// The source swallowing every pull stalls gather forever; the
/// migration-stall detector must catch it, exactly once, and the bundle
/// must carry the whole forensic record.
#[test]
fn stalled_migration_fires_exactly_one_incident() {
    let run = || {
        let mut cfg = recorded_cfg(42, Some(FlightRecorderConfig::default()));
        cfg.migration.test_drop_pulls = true;
        run_recorded(cfg)
    };
    let cluster = run();

    let incidents = cluster.incident_log();
    assert_eq!(
        incidents.len(),
        1,
        "expected exactly one incident, got: {}",
        cluster.export_incidents_json()
    );
    let inc = &incidents[0];
    assert_eq!(inc.trigger, "migration-stall");
    assert!(inc
        .bundle
        .starts_with("{\"schema\":\"rocksteady-incident-v1\""));
    assert!(inc.bundle.contains("\"trigger\":\"migration-stall\""));
    // The reading names the stalled migration and its zero progress.
    assert!(inc.bundle.contains("\"subject\":1"));
    assert!(inc.bundle.contains("no gather/replay advance"));
    // The frozen layers all made it in: trace slice, metrics deltas,
    // profiler ledger, audit tail, and the migration's causal explain.
    assert!(inc.bundle.contains("\"trace\":{"));
    assert!(inc.bundle.contains("\"metrics\":["));
    assert!(inc.bundle.contains("\"profiler\":["));
    assert!(inc.bundle.contains("\"audit\":{"));
    assert!(inc
        .bundle
        .contains("\"explain\":{\"kind\":\"migration\",\"id\":1"));
    assert!(inc.bundle.contains("\"outcome\":\"in-flight\""));

    // Byte-determinism: same seed, same bundle.
    let again = run();
    assert_eq!(
        cluster.export_incidents_json(),
        again.export_incidents_json(),
        "incident bundle not byte-identical across same-seed runs"
    );
}

/// The target deferring every replay batch lets gather race ahead of
/// replay; the replay-backlog watermark must catch the divergence,
/// exactly once, before the stall detector's longer fuse.
#[test]
fn replay_backlog_fires_exactly_one_incident() {
    let mut fr = FlightRecorderConfig::default();
    // 5k records total, ~2.5k in the migrating half: a 500-record
    // watermark is deep enough to prove divergence, shallow enough to
    // trip within the run.
    fr.detectors.replay_backlog = Some(ReplayBacklogConfig {
        watermark_records: 500,
        sustain_intervals: 3,
    });
    let mut cfg = recorded_cfg(42, Some(fr));
    cfg.migration.test_defer_replay = true;
    let cluster = run_recorded(cfg);

    let incidents = cluster.incident_log();
    assert_eq!(
        incidents.len(),
        1,
        "expected exactly one incident, got: {}",
        cluster.export_incidents_json()
    );
    let inc = &incidents[0];
    assert_eq!(inc.trigger, "replay-backlog");
    assert!(inc.bundle.contains("\"trigger\":\"replay-backlog\""));
    assert!(inc.bundle.contains("gathered but not"));
    assert!(inc
        .bundle
        .contains("\"explain\":{\"kind\":\"migration\",\"id\":1"));
}

/// A sustained SLO burn (tightened burn thresholds around the
/// migration's replay pressure) fires the multi-window burn detector,
/// exactly once, and the bundle's explain ranks the migration as the
/// dominant cause of the breach window.
#[test]
fn slo_burn_fires_exactly_one_incident_naming_the_migration() {
    let mut fr = FlightRecorderConfig::default();
    // Tight burn policy: a handful of breached intervals inside the
    // windows is enough. The clean-run test above proves the *default*
    // thresholds stay quiet on this exact scenario.
    fr.detectors.slo_burn = Some(SloBurnConfig {
        fast_threshold_permille: 100,
        slow_threshold_permille: 50,
    });
    let cluster = run_recorded(recorded_cfg(42, Some(fr)));

    let incidents = cluster.incident_log();
    assert_eq!(
        incidents.len(),
        1,
        "expected exactly one incident, got: {}",
        cluster.export_incidents_json()
    );
    let inc = &incidents[0];
    assert_eq!(inc.trigger, "slo-burn");
    assert!(inc.bundle.contains("\"trigger\":\"slo-burn\""));
    assert!(inc.bundle.contains("SLO burn rate"));
    // The causal explain ranks the migration as the top suspect for
    // the breach window.
    assert!(
        inc.bundle.contains("\"explain\":{\"kind\":\"slo-breach\""),
        "missing breach explain: {}",
        &inc.bundle[inc.bundle.len().saturating_sub(400)..]
    );
    assert!(inc
        .bundle
        .contains("\"rank\":1,\"cause\":\"migration\",\"id\":1"));
}

/// Ring mode bounds recorder memory: with a trace capacity set, the
/// buffer never exceeds it, events beyond capacity are dropped (and
/// counted), and the trace still validates and exports.
#[test]
fn ring_mode_keeps_trace_memory_bounded() {
    let fr = FlightRecorderConfig {
        trace_capacity: Some(4096),
        audit_capacity: Some(1024),
        ..FlightRecorderConfig::default()
    };
    let cluster = run_recorded(recorded_cfg(42, Some(fr)));

    assert!(cluster.trace.len() <= 4096, "ring exceeded its capacity");
    assert!(
        cluster.trace.dropped() > 0,
        "run too small to exercise compaction"
    );
    cluster
        .trace
        .validate()
        .expect("wrapped ring must validate");
    // Drop accounting surfaces in the registry (satellite: the
    // `trace_events_dropped_total` family).
    let prom = cluster.export_metrics_prometheus();
    assert!(prom.contains("trace_events_dropped_total"));
    // The audit ring kept its checker state: total ingested events
    // exceed what the bounded buffer retains.
    assert!(cluster.audit.dropped() > 0 || cluster.audit.events_len() <= 1024);
    assert_eq!(cluster.audit_report().violations, 0);
}
