//! Allocation-count gate for the migration hot path.
//!
//! The gather (Pull source) and replay (Pull target) paths were made
//! slab/arena-backed: gathered keys and values alias the log's segments
//! as refcounted slices, and replay bump-appends into segments without
//! per-record heap boxes. This gate pins that property with a counting
//! global allocator: if a change reintroduces a per-record allocation on
//! either path, the per-record allocation rate regresses past the floor
//! and this test fails. (`ci.sh` runs it as part of the tier-1 suite.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rocksteady_common::{key_hash, HashRange, ScanCursor, TableId};
use rocksteady_logstore::LogConfig;
use rocksteady_master::{MasterConfig, MasterService, ReplayDest, TabletRole, Work};
use rocksteady_workload::core::primary_key;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const T: TableId = TableId(1);
const RECORDS: u64 = 10_000;

fn loaded_master() -> MasterService {
    let mut m = MasterService::new(MasterConfig {
        log: LogConfig {
            segment_bytes: 1 << 20,
            max_segments: None,
        },
        hash_buckets: (RECORDS as usize / 4).next_power_of_two(),
        hash_stripes: 64,
        ..MasterConfig::default()
    });
    m.add_tablet(T, HashRange::full(), TabletRole::Owner);
    let value = [0xabu8; 100];
    for rank in 0..RECORDS {
        let key = primary_key(rank, 30);
        m.load_object_hashed(T, key_hash(&key), &key, &value);
    }
    m
}

#[test]
fn gather_and_replay_stay_allocation_free_per_record() {
    let source = loaded_master();
    let mut target = MasterService::new(MasterConfig {
        log: LogConfig {
            segment_bytes: 1 << 20,
            max_segments: None,
        },
        hash_buckets: (RECORDS as usize / 4).next_power_of_two(),
        hash_stripes: 64,
        ..MasterConfig::default()
    });
    target.add_tablet(T, HashRange::full(), TabletRole::Owner);
    let mut work = Work::default();

    // Gather the whole table in Pull-sized batches, counting allocations.
    // Everything gathered aliases the log (zero-copy slices); the only
    // allowed allocations are batch-level: the records Vec's growth
    // doublings and one window handle per touched segment.
    let mut batches: Vec<Vec<rocksteady_proto::Record>> = Vec::new();
    let mut cursor = Some(ScanCursor::default());
    let before = allocs();
    while let Some(c) = cursor {
        let (recs, next) = source.gather_range(T, HashRange::full(), c, 64 * 1024, &mut work);
        if !recs.is_empty() {
            batches.push(recs);
        }
        cursor = next;
    }
    let gather_allocs = allocs() - before;
    let gathered: u64 = batches.iter().map(|b| b.len() as u64).sum();
    assert_eq!(gathered, RECORDS, "gather must visit every record");
    // Floor: strictly sub-per-record. Batch Vec growth across ~25
    // doublings per 64 KB batch plus segment windows lands well under
    // 0.05 allocations per record; 0.10 leaves headroom without letting
    // a true per-record allocation (1.0/record) sneak in.
    assert!(
        (gather_allocs as f64) < 0.10 * RECORDS as f64,
        "gather allocation regression: {gather_allocs} allocs for {RECORDS} records"
    );

    // Replay the gathered batches into the target, counting allocations.
    // Appends bump into open segments; allocations are per-segment (new
    // segment buffers) and per-bucket (rare overflow pushes), not
    // per-record.
    let before = allocs();
    let mut applied = 0;
    for batch in &batches {
        applied += target.replay_batch(batch, ReplayDest::MainLog, &mut work);
    }
    let replay_allocs = allocs() - before;
    assert_eq!(applied, RECORDS as usize, "replay must apply every record");
    assert!(
        (replay_allocs as f64) < 0.10 * RECORDS as f64,
        "replay allocation regression: {replay_allocs} allocs for {RECORDS} records"
    );
}
