//! Concurrent migrations: the single-migration assumptions, fixed.
//!
//! Rocksteady's evaluation drives one migration at a time, but nothing
//! in the protocol requires that — and an autonomous rebalancer
//! actively wants several tablets in flight at once. These tests pin
//! the multi-migration contract end to end:
//!
//! - two disjoint migrations run simultaneously and both land, with
//!   per-migration-id stamps proving they overlapped in time;
//! - one node can serve pulls for an outbound migration while
//!   replaying an inbound one, at the same time;
//! - crashing a participant of one migration recovers that migration's
//!   range without disturbing the other (per-dependency lineage
//!   cleanup, not a global reset);
//! - the whole concurrent schedule is deterministic per seed;
//! - the autonomous rebalancer actor moves tablets off a hot server
//!   through the same path, and disarmed it leaves no trace.

mod common;

use common::{verify_all_readable, TABLE};
use rocksteady_cluster::{
    AdmissionCaps, Cluster, ClusterBuilder, ClusterConfig, ControlCmd, GreedyLoadDelta,
    RebalancerConfig,
};
use rocksteady_common::{HashRange, MigrationId, ServerId, MILLISECOND, SECOND};
use rocksteady_workload::{LoadShape, YcsbConfig};

const KEYS: u64 = 20_000;

/// Quarter `i` of the hash space as a tablet range.
fn quarter(i: u32) -> HashRange {
    let width = 1u64 << 62;
    HashRange {
        start: u64::from(i) * width,
        end: if i == 3 {
            u64::MAX
        } else {
            (u64::from(i) + 1) * width - 1
        },
    }
}

fn four_server_config() -> ClusterConfig {
    ClusterConfig {
        servers: 4,
        workers: 4,
        replicas: 2,
        sample_interval: MILLISECOND,
        series_interval: 10 * MILLISECOND,
        ..ClusterConfig::default()
    }
}

/// Table in four quarter tablets: server 0 owns q0+q1, server 1 owns
/// q2+q3.
fn setup_quarters(cluster: &mut Cluster) {
    cluster.create_table(
        TABLE,
        &[
            (quarter(0), ServerId(0)),
            (quarter(1), ServerId(0)),
            (quarter(2), ServerId(1)),
            (quarter(3), ServerId(1)),
        ],
    );
    cluster.load_table(TABLE, KEYS, 30, 100);
    cluster.seed_backups();
}

/// Two disjoint migrations fired at the same instant: q1 from 0 to 2
/// and q3 from 1 to 3 — different sources, different targets.
fn disjoint_pair_script(b: &mut ClusterBuilder) {
    b.at(
        10 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: quarter(1),
            source: ServerId(0),
            target: ServerId(2),
        },
    );
    b.at(
        10 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(2),
            table: TABLE,
            range: quarter(3),
            source: ServerId(1),
            target: ServerId(3),
        },
    );
}

fn run_disjoint_pair(seed: u64) -> Cluster {
    let mut b = ClusterBuilder::new(ClusterConfig {
        seed,
        ..four_server_config()
    });
    let dir = b.directory();
    let mut ycsb = YcsbConfig::ycsb_b(dir, TABLE, KEYS, 40_000.0);
    ycsb.read_fraction = 0.8;
    b.add_ycsb(ycsb);
    disjoint_pair_script(&mut b);
    let mut cluster = b.build();
    setup_quarters(&mut cluster);
    cluster.run_until(SECOND);
    cluster
}

#[test]
fn two_disjoint_migrations_complete_concurrently() {
    let mut cluster = run_disjoint_pair(42);

    let fin1 = cluster
        .migration_finished(ServerId(2), MigrationId(1))
        .expect("migration 1 did not finish");
    let fin2 = cluster
        .migration_finished(ServerId(3), MigrationId(2))
        .expect("migration 2 did not finish");

    // Both started at the same control tick, so if each is stamped
    // individually the windows must overlap — and the harness's
    // sweep-line must see that.
    assert!(
        cluster.peak_concurrent_migrations() >= 2,
        "migrations did not overlap (finished at {fin1} and {fin2})"
    );

    // Ownership moved for both ranges; lineage fully retired.
    let coord = cluster.coord.borrow();
    assert_eq!(
        coord.tablet_for(TABLE, quarter(1).start).unwrap().owner,
        ServerId(2)
    );
    assert_eq!(
        coord.tablet_for(TABLE, quarter(3).end).unwrap().owner,
        ServerId(3)
    );
    assert!(coord.lineage_deps().is_empty());
    drop(coord);

    verify_all_readable(&mut cluster, KEYS);
}

#[test]
fn node_serves_pulls_while_replaying_an_inbound_migration() {
    let mut b = ClusterBuilder::new(four_server_config());
    let dir = b.directory();
    let mut ycsb = YcsbConfig::ycsb_b(dir, TABLE, KEYS, 40_000.0);
    ycsb.read_fraction = 0.8;
    b.add_ycsb(ycsb);
    // Server 1 is simultaneously the source of migration 1 (q2 -> 2)
    // and the target of migration 2 (q1 <- 0).
    b.at(
        10 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: quarter(2),
            source: ServerId(1),
            target: ServerId(2),
        },
    );
    b.at(
        10 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(2),
            table: TABLE,
            range: quarter(1),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    setup_quarters(&mut cluster);
    cluster.run_until(SECOND);

    assert!(
        cluster
            .migration_finished(ServerId(2), MigrationId(1))
            .is_some(),
        "outbound migration from the dual-role node did not finish"
    );
    assert!(
        cluster
            .migration_finished(ServerId(1), MigrationId(2))
            .is_some(),
        "inbound migration into the dual-role node did not finish"
    );
    assert!(cluster.peak_concurrent_migrations() >= 2);

    let coord = cluster.coord.borrow();
    assert_eq!(
        coord.tablet_for(TABLE, quarter(2).start).unwrap().owner,
        ServerId(2)
    );
    assert_eq!(
        coord.tablet_for(TABLE, quarter(1).start).unwrap().owner,
        ServerId(1)
    );
    assert!(coord.lineage_deps().is_empty());
    drop(coord);

    verify_all_readable(&mut cluster, KEYS);
}

#[test]
fn crash_of_one_participant_leaves_the_other_migration_unharmed() {
    let mut b = ClusterBuilder::new(four_server_config());
    let dir = b.directory();
    let mut ycsb = YcsbConfig::ycsb_b(dir, TABLE, KEYS, 40_000.0);
    ycsb.read_fraction = 0.5;
    b.add_ycsb(ycsb);
    disjoint_pair_script(&mut b);
    // Kill migration 2's target while both migrations are mid-flight:
    // 100 us after the starts, with fast detection, so the crash report
    // lands well before either quarter (several ms of pulls) finishes.
    b.at(
        10 * MILLISECOND + 100_000,
        ControlCmd::Kill {
            server: ServerId(3),
            detect_after: 200_000,
        },
    );
    let mut cluster = b.build();
    setup_quarters(&mut cluster);
    cluster.run_until(2 * SECOND);

    // The killed target never finished its run...
    assert!(
        cluster
            .migration_finished(ServerId(3), MigrationId(2))
            .is_none(),
        "crash was meant to interrupt migration 2 mid-flight"
    );
    // ...but migration 1 completed untouched.
    assert!(
        cluster
            .migration_finished(ServerId(2), MigrationId(1))
            .is_some(),
        "unrelated migration was disturbed by the crash"
    );
    let coord = cluster.coord.borrow();
    assert_eq!(
        coord.tablet_for(TABLE, quarter(1).start).unwrap().owner,
        ServerId(2)
    );
    // Migration 2's range reverted to its source when the target died.
    assert_eq!(
        coord.tablet_for(TABLE, quarter(3).end).unwrap().owner,
        ServerId(1)
    );
    // Only migration 2's lineage dep was dropped — and it *was* dropped.
    assert!(coord.lineage_deps().is_empty());
    drop(coord);

    verify_all_readable(&mut cluster, KEYS);
}

/// Source-crash variant, with the protocol auditor armed: kill
/// migration 2's *source* while both migrations are mid-flight. The
/// coordinator must drop every lineage dependency involving the dead
/// server (the auditor's lineage invariant checks exactly that at the
/// crash event), the surviving migration's timeline must stay clean
/// and conservation-verified, and the explain engine must pin a breach
/// window around the crash on the crash, not on migration pressure.
#[test]
fn source_crash_drops_dead_lineage_and_leaves_survivor_verified() {
    let mut cfg = four_server_config();
    cfg.audit = true;
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    let mut ycsb = YcsbConfig::ycsb_b(dir, TABLE, KEYS, 40_000.0);
    ycsb.read_fraction = 0.5;
    b.add_ycsb(ycsb);
    disjoint_pair_script(&mut b);
    // Kill migration 2's *source* (server 1, which owns q2 and q3)
    // 100 us after the starts, while both runs are pulling.
    let crash_at = 10 * MILLISECOND + 100_000;
    b.at(
        crash_at,
        ControlCmd::Kill {
            server: ServerId(1),
            detect_after: 200_000,
        },
    );
    let mut cluster = b.build();
    setup_quarters(&mut cluster);
    cluster.run_until(2 * SECOND);

    // The survivor finished; the orphaned run never did.
    assert!(
        cluster
            .migration_finished(ServerId(2), MigrationId(1))
            .is_some(),
        "surviving migration was disturbed by the source crash"
    );
    assert!(
        cluster
            .migration_finished(ServerId(3), MigrationId(2))
            .is_none(),
        "crash was meant to interrupt migration 2's source"
    );

    // No lineage dependency involving the dead server survived.
    let coord = cluster.coord.borrow();
    assert!(coord
        .lineage_deps()
        .iter()
        .all(|d| d.source != ServerId(1) && d.target != ServerId(1)));
    drop(coord);

    // The auditor watched the whole thing and found nothing wrong:
    // in particular its lineage check (stale deps at crash time) and
    // single-owner check (windows closed by the crash) stayed green,
    // and the survivor's record conservation was verified.
    let report = cluster.audit_report();
    assert_eq!(
        report.violations,
        0,
        "auditor flagged the crash handling: {:?}",
        cluster.audit.violations()
    );
    assert!(report.migrations_verified >= 1, "survivor never verified");
    assert!(report.migrations_abandoned >= 1, "orphan never abandoned");

    // A breach window around the crash blames the crash first.
    let explain = cluster
        .explain_slo_breach(crash_at, crash_at + 10 * MILLISECOND)
        .expect("no explanation for the crash window");
    let crash_pos = explain.find("\"cause\":\"crash\"").expect("crash absent");
    if let Some(mig_pos) = explain.find("\"cause\":\"migration\"") {
        assert!(crash_pos < mig_pos, "crash not ranked first: {explain}");
    }

    verify_all_readable(&mut cluster, KEYS);
}

#[test]
fn concurrent_migration_schedule_is_deterministic() {
    let a = run_disjoint_pair(7);
    let b = run_disjoint_pair(7);
    assert_eq!(
        a.sim.events_processed(),
        b.sim.events_processed(),
        "same seed must replay the same concurrent schedule"
    );
    assert_eq!(a.migration_runs(), b.migration_runs());

    let c = run_disjoint_pair(8);
    assert_ne!(
        a.sim.events_processed(),
        c.sim.events_processed(),
        "different seeds should perturb the schedule"
    );
}

#[test]
fn rebalancer_sheds_tablets_from_a_hot_server() {
    let mut cfg = four_server_config();
    cfg.rebalancer = Some(RebalancerConfig {
        interval: 20 * MILLISECOND,
        caps: AdmissionCaps::default(),
        policy: Box::new(GreedyLoadDelta::new(0.08, 2).with_cooldown(200 * MILLISECOND)),
    });
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    for i in 0..2 {
        let mut y = YcsbConfig::ycsb_b(dir.clone(), TABLE, KEYS, 150_000.0);
        y.seed = 40 + i;
        // All heat on the last quarter (owned by server 1) from t=0.
        y.shape = LoadShape::SkewFlip {
            at: 0,
            buckets: 4,
            hot_weight: 0.8,
        };
        b.add_ycsb(y);
    }
    let mut cluster = b.build();
    setup_quarters(&mut cluster);
    cluster.run_until(SECOND);

    let report = cluster.rebalancer.borrow().clone();
    assert!(report.ticks > 10, "rebalancer never ticked");
    assert!(
        report.completed >= 1,
        "no migration completed (proposed {}, admitted {})",
        report.proposed,
        report.admitted
    );
    // Every issued move pulled off the overloaded server.
    assert!(report
        .moves
        .iter()
        .all(|m| m.proposal.source == ServerId(1)));
    // Ownership genuinely changed: server 1 no longer owns everything
    // it started with.
    let owners: Vec<ServerId> = {
        let coord = cluster.coord.borrow();
        (0..4)
            .map(|q| coord.tablet_for(TABLE, quarter(q).start).unwrap().owner)
            .collect()
    };
    assert!(
        owners.iter().filter(|o| **o == ServerId(1)).count() < 2,
        "hot server still owns {owners:?}"
    );
    verify_all_readable(&mut cluster, KEYS);
}

#[test]
fn disarmed_rebalancer_reports_nothing_and_schedule_matches_default() {
    // `rebalancer: None` is the default; the report handle exists but
    // stays all-zero, and building with an explicit `None` is
    // event-identical to the config default (no hidden actor).
    let run = |explicit_none: bool| {
        let mut cfg = four_server_config();
        if explicit_none {
            cfg.rebalancer = None;
        }
        let mut b = ClusterBuilder::new(cfg);
        let dir = b.directory();
        b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, KEYS, 40_000.0));
        let mut cluster = b.build();
        setup_quarters(&mut cluster);
        cluster.run_until(200 * MILLISECOND);
        cluster
    };
    let a = run(false);
    let b = run(true);
    assert_eq!(a.sim.events_processed(), b.sim.events_processed());
    assert_eq!(a.rebalancer.borrow().ticks, 0);
    assert_eq!(a.rebalancer.borrow().admitted, 0);
    assert!(a.rebalancer.borrow().moves.is_empty());
}
