//! The log cleaner and migration must coexist (§2.3, §3.2).
//!
//! Rocksteady's lazy-partitioning argument depends on the cleaner being
//! free to physically rearrange records at any time — including while a
//! migration's Pulls walk the hash table. An overwrite-heavy workload
//! makes segments sparse, the cleaner relocates live entries mid-run,
//! and the migration must still move exactly the live data.

mod common;

use common::{upper, verify_all_readable, TABLE};
use rocksteady_cluster::{ClusterBuilder, ControlCmd};
use rocksteady_common::zipf::KeyDist;
use rocksteady_common::{MigrationId, ServerId, MILLISECOND, SECOND};
use rocksteady_workload::YcsbConfig;

#[test]
fn migration_survives_concurrent_cleaning() {
    const KEYS: u64 = 5_000;
    let mut cfg = common::test_config();
    cfg.cleaner_interval = Some(2 * MILLISECOND);
    cfg.segment_bytes = 1 << 16; // many small segments: more cleaning
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    // Overwrite-heavy uniform load so old versions pile up in segments.
    let mut ycsb = YcsbConfig::ycsb_b(dir, TABLE, KEYS, 80_000.0);
    ycsb.read_fraction = 0.2;
    ycsb.dist = KeyDist::Uniform;
    b.add_ycsb(ycsb);
    b.at(
        100 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    common::standard_setup(&mut cluster, KEYS);

    let finished = cluster
        .run_until_migrated(ServerId(1), MigrationId(1), 10 * SECOND)
        .expect("migration completes despite cleaning");
    cluster.run_until(finished + 100 * MILLISECOND);

    // The cleaner actually ran on the source.
    let cleaned = cluster.server_stats[&ServerId(0)].segments_cleaned.get();
    assert!(cleaned > 0, "cleaner never reclaimed a segment");

    // No record lost, no acknowledged write regressed.
    verify_all_readable(&mut cluster, KEYS);
    let confirmed = cluster.client_stats[0].borrow().confirmed_writes.clone();
    assert!(!confirmed.is_empty());
    for (rank, version) in &confirmed {
        let key = rocksteady_workload::core::primary_key(*rank, 30);
        let (_, current) = cluster
            .read_direct(TABLE, &key)
            .unwrap_or_else(|| panic!("rank {rank} lost under cleaning"));
        assert!(current >= *version, "rank {rank} regressed");
    }
}
