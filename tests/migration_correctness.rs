//! End-to-end correctness of a Rocksteady migration under live load.
//!
//! The paper's core safety claims (§3): ownership moves at migration
//! start, writes during migration are serviced by the target and always
//! supersede migrated values, the source turns clients away, and at the
//! end every record is present exactly once at the target.

mod common;

use common::{builder, standard_setup, upper, verify_all_readable, TABLE};
use rocksteady_cluster::ControlCmd;
use rocksteady_common::{key_hash, MigrationId, ServerId, MILLISECOND, SECOND};
use rocksteady_master::{OpError, TabletRole, Work};
use rocksteady_workload::core::primary_key;
use rocksteady_workload::YcsbConfig;

const KEYS: u64 = 4_000;

#[test]
fn migration_under_writes_preserves_every_record_and_update() {
    let mut b = builder();
    let dir = b.directory();
    // Aggressive write mix so plenty of writes race the migration.
    let mut ycsb = YcsbConfig::ycsb_b(dir, TABLE, KEYS, 30_000.0);
    ycsb.read_fraction = 0.5;
    b.add_ycsb(ycsb);
    b.at(
        10 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    standard_setup(&mut cluster, KEYS);

    let finished = cluster.run_until_migrated(ServerId(1), MigrationId(1), 10 * SECOND);
    assert!(finished.is_some(), "migration did not complete");
    // Let in-flight client ops drain.
    cluster.run_until(finished.unwrap() + 50 * MILLISECOND);

    // 1. Ownership and lineage.
    assert_eq!(
        cluster
            .coord
            .borrow()
            .tablet_for(TABLE, u64::MAX)
            .unwrap()
            .owner,
        ServerId(1)
    );
    assert!(cluster.coord.borrow().lineage_deps().is_empty());

    // 2. Nothing lost.
    let moved = verify_all_readable(&mut cluster, KEYS);
    assert!(moved > KEYS / 3, "suspiciously small upper half: {moved}");

    // 3. Every durably acknowledged write is visible at (at least) its
    //    acknowledged version — including writes the target accepted
    //    while records were still arriving (§3).
    let confirmed = cluster.client_stats[0].borrow().confirmed_writes.clone();
    assert!(!confirmed.is_empty(), "no writes were confirmed");
    let mut migrating_range_writes = 0;
    for (rank, version) in &confirmed {
        let key = primary_key(*rank, 30);
        let (_, current) = cluster
            .read_direct(TABLE, &key)
            .unwrap_or_else(|| panic!("confirmed write to rank {rank} lost"));
        assert!(
            current >= *version,
            "rank {rank}: stored version {current} < confirmed {version}"
        );
        if upper().contains(key_hash(&key)) {
            migrating_range_writes += 1;
        }
    }
    assert!(
        migrating_range_writes > 0,
        "test never exercised writes to the migrating range"
    );

    // 4. The source refuses keys it migrated away.
    let sample = (0..KEYS)
        .map(|r| primary_key(r, 30))
        .find(|k| upper().contains(key_hash(k)))
        .expect("an upper-half key exists");
    let node = cluster.node(ServerId(0));
    let hash = key_hash(&sample);
    match node
        .master
        .read(TABLE, hash, Some(&sample), &mut Work::default())
    {
        Err(OpError::UnknownTablet) => {}
        other => panic!("source should refuse migrated keys, got {other:?}"),
    }

    // 5. The target is a plain owner afterwards.
    let target = cluster.node(ServerId(1));
    assert_eq!(
        target
            .master
            .tablet_covering(TABLE, u64::MAX)
            .map(|t| t.role),
        Some(TabletRole::Owner)
    );
}

#[test]
fn client_experience_recovers_after_migration() {
    // Clients chasing the tablet across the migration should see retries
    // and map refreshes, but zero lost operations and no NotFound for
    // keys that exist.
    const BIG: u64 = 30_000;
    let mut b = builder();
    let dir = b.directory();
    b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, BIG, 100_000.0));
    b.at(
        10 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    standard_setup(&mut cluster, BIG);
    let finished = cluster
        .run_until_migrated(ServerId(1), MigrationId(1), 10 * SECOND)
        .expect("migration finished");
    cluster.run_until(finished + 100 * MILLISECOND);

    let stats = cluster.client_stats[0].borrow();
    assert_eq!(stats.not_found.get(), 0, "existing keys reported missing");
    assert!(
        stats.map_refreshes.get() > 0,
        "client never chased the tablet"
    );
    assert!(stats.retries.get() > 0, "no read ever raced the migration");
    let reads = stats.read_latency.merged();
    assert!(reads.count() > 1_000);
    // Median stays in the microsecond regime even across migration.
    assert!(
        reads.percentile(0.5) < 50_000,
        "median read {} ns",
        reads.percentile(0.5)
    );
}
