#!/usr/bin/env bash
# Repository CI gate. Run from the repo root:
#   ./ci.sh
#
# Stages:
#   1. cargo fmt --check      — formatting is canonical
#   2. cargo clippy -D warnings (all targets) — lint-clean
#   3. tier-1 verify (ROADMAP.md): release build + test suite
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> full workspace tests"
cargo test -q --workspace

echo "CI OK"
