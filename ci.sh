#!/usr/bin/env bash
# Repository CI gate. Run from the repo root:
#   ./ci.sh
#
# Stages:
#   1. cargo fmt --check      — formatting is canonical
#   2. cargo clippy -D warnings (all targets) — lint-clean
#   3. tier-1 verify (ROADMAP.md): release build + test suite
#   4. examples smoke: quickstart (+ exported trace JSON), crash_recovery
#   5. bench smoke: simkernel throughput JSON + micro industry CSV
#   6. allocation gate: gather/replay migration hot path stays sub-per-record
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> full workspace tests"
cargo test -q --workspace

echo "==> examples: quickstart (exports a trace + metrics + profile)"
rm -f target/quickstart-trace.json target/quickstart-metrics.json target/quickstart-metrics.prom \
    target/quickstart-profile.folded target/quickstart-critical-path.json \
    target/quickstart-audit.json target/quickstart-audit.dot target/quickstart-journeys.json
cargo run --release --example quickstart

echo "==> trace smoke: target/quickstart-trace.json"
test -s target/quickstart-trace.json
grep -q '"traceEvents"' target/quickstart-trace.json
grep -q '"name":"migration"' target/quickstart-trace.json

echo "==> metrics smoke: target/quickstart-metrics.{json,prom}"
test -s target/quickstart-metrics.json
grep -q '"name":"node_ops_served"' target/quickstart-metrics.json
grep -q '"name":"client_read_latency_ns"' target/quickstart-metrics.json
grep -q '"name":"slo_read_sla_ns"' target/quickstart-metrics.json
test -s target/quickstart-metrics.prom
grep -q '# TYPE node_ops_served counter' target/quickstart-metrics.prom
grep -q 'client_read_latency_ns{client="0",quantile="0.999"}' target/quickstart-metrics.prom
grep -q 'slo_breach_intervals_total' target/quickstart-metrics.prom
grep -q 'slo_burn_rate_fast' target/quickstart-metrics.prom
grep -q 'slo_burn_rate_slow' target/quickstart-metrics.prom
grep -q 'trace_events_dropped_total' target/quickstart-metrics.prom

echo "==> journeys smoke: target/quickstart-journeys.json"
test -s target/quickstart-journeys.json
grep -q '"schema":"rocksteady-journeys-v1"' target/quickstart-journeys.json
python3 - <<'EOF'
import json
doc = json.load(open('target/quickstart-journeys.json'))
journeys = doc['journeys']
assert journeys, 'no journeys reconstructed'
assert any(j['hops_n'] >= 3 for j in journeys), \
    'no journey with >= 3 hops (none crossed the migration?)'
assert any(j['telescoped'] for j in journeys), 'no telescoped journey'
for j in journeys:
    if not j['telescoped']:
        continue
    total = sum(h['net_in'] + h['queue'] + h['service'] + h['hold']
                + h['net_out'] + h['gap_before']
                for h in j['hops'] if h['on_path'])
    assert total == j['e2e'], \
        f"journey {j['trace']} does not telescope: {total} != {j['e2e']}"
print(f"journeys gate: {len(journeys)} journeys, telescoping integer-exact")
EOF

echo "==> figure benches export CSV through the shared exporter"
for fig in fig05_bottlenecks fig09_10_11_timelines fig12_skew fig13_14_priority_pulls; do
    grep -q 'export_csv(' "crates/bench/benches/${fig}.rs" \
        || { echo "FAIL: ${fig} does not use bench::export_csv"; exit 1; }
done

echo "==> profiler smoke: target/quickstart-profile.folded + critical path"
test -s target/quickstart-profile.folded
grep -q ';replay ' target/quickstart-profile.folded
grep -q ';idle ' target/quickstart-profile.folded
test -s target/quickstart-critical-path.json
grep -q '"components"' target/quickstart-critical-path.json

echo "==> audit smoke: target/quickstart-audit.{json,dot}"
test -s target/quickstart-audit.json
grep -q '"schema":"rocksteady-audit-v1"' target/quickstart-audit.json
grep -q '"armed":1' target/quickstart-audit.json
grep -q '"violations":\[\]' target/quickstart-audit.json
grep -q '"migrations_verified":1' target/quickstart-audit.json
grep -q '"name":"single-owner"' target/quickstart-audit.json
grep -q '"name":"read-your-writes"' target/quickstart-audit.json
test -s target/quickstart-audit.dot
grep -q '^digraph ownership' target/quickstart-audit.dot
grep -q 'audit_events_total' target/quickstart-metrics.prom
grep -q 'audit_violations_total{invariant="conservation"} 0' target/quickstart-metrics.prom
grep -q 'audit_migrations_verified_total 1' target/quickstart-metrics.prom

echo "==> metrics + profiler + audit + flightrec crates deny missing docs"
grep -q '#!\[deny(missing_docs)\]' crates/metrics/src/lib.rs
grep -q '#!\[deny(missing_docs)\]' crates/profiler/src/lib.rs
grep -q '#!\[deny(missing_docs)\]' crates/audit/src/lib.rs
grep -q '#!\[deny(missing_docs)\]' crates/flightrec/src/lib.rs

echo "==> flight recorder smoke: fault-injected quickstart exports one incident bundle"
rm -f target/quickstart-incident.json
ROCKSTEADY_QUICKSTART_FAULT=1 cargo run --release --example quickstart
test -s target/quickstart-incident.json
grep -q '"schema":"rocksteady-incident-v1"' target/quickstart-incident.json
grep -q '"trigger":"migration-stall"' target/quickstart-incident.json
# The frozen trace ring made it into the bundle, with drop accounting.
grep -q '"trace":{"window_ns":' target/quickstart-incident.json
grep -q '"traceEvents":\[{' target/quickstart-incident.json
grep -q '"dropped":' target/quickstart-incident.json
grep -q '"audit":{"dropped":' target/quickstart-incident.json

echo "==> examples: crash_recovery"
cargo run --release --example crash_recovery

echo "==> bench smoke: simkernel_throughput (shrunk scenarios)"
rm -f target/simkernel-smoke.json
ROCKSTEADY_BENCH_SMOKE=1 cargo bench -p rocksteady-bench --bench simkernel_throughput
test -s target/simkernel-smoke.json
grep -q '"kernel/ping_storm/events"' target/simkernel-smoke.json
grep -q '"paper/8node_10M/records"' target/simkernel-smoke.json

echo "==> bench smoke: micro_datastructures industry CSV"
rm -f target/figures/micro_industry.csv
ROCKSTEADY_BENCH_SMOKE=1 cargo bench -p rocksteady-bench --bench micro_datastructures
test -s target/figures/micro_industry.csv
grep -q 'ours_over_industry' target/figures/micro_industry.csv
grep -q 'SOSP' target/figures/micro_industry.csv

echo "==> bench smoke: day_in_the_life (rebalancer + armed auditor, zero violations)"
rm -f target/figures/day_in_the_life_summary.csv target/figures/day_in_the_life_latency.csv \
    target/figures/day_in_the_life_moves.csv
ROCKSTEADY_BENCH_SMOKE=1 cargo bench -p rocksteady-bench --bench day_in_the_life
test -s target/figures/day_in_the_life_summary.csv
test -s target/figures/day_in_the_life_moves.csv
head -1 target/figures/day_in_the_life_moves.csv \
    | grep -q '^t_ns,migration_id,table,range_start,range_end,source,target$'
head -1 target/figures/day_in_the_life_summary.csv \
    | grep -q '^mode,breach_intervals,breach_minutes,moves_admitted,moves_completed,peak_concurrent$'
# The rebalanced day must have run >= 2 migrations concurrently.
peak=$(awk -F, '$1 == "rebalanced" { print $6 }' target/figures/day_in_the_life_summary.csv)
[ "${peak:-0}" -ge 2 ] || { echo "FAIL: peak concurrent migrations ${peak:-0} < 2"; exit 1; }
test -s target/figures/day_in_the_life_latency.csv
head -1 target/figures/day_in_the_life_latency.csv | grep -q '^mode,t_ns,p50_ns,p999_ns$'

echo "==> bench baseline schema gate: BENCH_*.json"
python3 - <<'EOF'
import json
for path in ('BENCH_micro.json', 'BENCH_simkernel.json'):
    doc = json.load(open(path))
    for key in ('results', 'seed_baseline'):
        val = doc.get(key)
        assert isinstance(val, list) and val, f'{path}: {key} missing or empty'
print('bench baseline schemas OK')
EOF

echo "==> allocation gate: migration gather/replay path"
cargo test -q --test alloc_gate

echo "CI OK"
