#!/usr/bin/env bash
# Repository CI gate. Run from the repo root:
#   ./ci.sh
#
# Stages:
#   1. cargo fmt --check      — formatting is canonical
#   2. cargo clippy -D warnings (all targets) — lint-clean
#   3. tier-1 verify (ROADMAP.md): release build + test suite
#   4. examples smoke: quickstart (+ exported trace JSON), crash_recovery
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> full workspace tests"
cargo test -q --workspace

echo "==> examples: quickstart (exports a trace)"
rm -f target/quickstart-trace.json
cargo run --release --example quickstart

echo "==> trace smoke: target/quickstart-trace.json"
test -s target/quickstart-trace.json
grep -q '"traceEvents"' target/quickstart-trace.json
grep -q '"name":"migration"' target/quickstart-trace.json

echo "==> examples: crash_recovery"
cargo run --release --example crash_recovery

echo "CI OK"
