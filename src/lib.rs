//! Rocksteady reproduction suite — facade crate.
//!
//! Re-exports the whole workspace so examples and downstream users can
//! depend on one crate. See the README for a tour and DESIGN.md for the
//! system inventory; the interesting entry points are:
//!
//! - [`migration`] (the `rocksteady` crate): the migration protocol
//!   itself — manager, priority pulls, baselines.
//! - [`cluster`]: build and run a simulated RAMCloud cluster.
//! - [`logstore`] / [`hashtable`] / [`master`]: the storage substrate
//!   (real, thread-safe data structures).
//! - [`workload`]: YCSB / multiget-spread / index-scan clients.

pub use rocksteady as migration;
pub use rocksteady_backup as backup;
pub use rocksteady_cluster as cluster;
pub use rocksteady_common as common;
pub use rocksteady_coordinator as coordinator;
pub use rocksteady_hashtable as hashtable;
pub use rocksteady_logstore as logstore;
pub use rocksteady_master as master;
pub use rocksteady_proto as proto;
pub use rocksteady_server as server;
pub use rocksteady_simnet as simnet;
pub use rocksteady_workload as workload;
