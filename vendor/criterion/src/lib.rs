//! A minimal, offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use — groups,
//! throughput annotation, `iter`/`iter_batched`, the `criterion_group!` /
//! `criterion_main!` macros — with straightforward wall-clock sampling:
//! each benchmark warms up, then takes `sample_size` timed samples and
//! reports the median ns/iteration plus derived throughput. Results are
//! also retrievable programmatically ([`take_results`]) so bench mains
//! can persist machine-readable output (e.g. `BENCH_micro.json`).

use std::cell::RefCell;
use std::hint;
use std::time::{Duration, Instant};

pub use hint::black_box;

/// Throughput annotation for a benchmark group: how much work one
/// iteration represents.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup; the stand-in times each routine
/// call individually, so the variants behave identically.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` identifier.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Work per iteration, if the group declared throughput.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Iterations per second implied by the median sample.
    pub fn iters_per_sec(&self) -> f64 {
        1e9 / self.ns_per_iter
    }

    /// Bytes per second, when the group declared byte throughput.
    pub fn bytes_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Bytes(b)) => Some(b as f64 * self.iters_per_sec()),
            _ => None,
        }
    }
}

thread_local! {
    static RESULTS: RefCell<Vec<Measurement>> = const { RefCell::new(Vec::new()) };
}

/// Drains the measurements recorded so far on this thread (bench mains
/// run single-threaded through `criterion_main!`).
pub fn take_results() -> Vec<Measurement> {
    RESULTS.with(|r| r.borrow_mut().drain(..).collect())
}

fn record(m: Measurement) {
    RESULTS.with(|r| r.borrow_mut().push(m));
}

/// Benchmark driver configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// No-op for CLI compatibility with real criterion.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let cfg = BenchConfig {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        run_bench(name.to_string(), None, cfg, f);
        self
    }
}

struct BenchConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work one iteration of subsequent benchmarks performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group (accepted for API
    /// compatibility; applies to the whole run).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let cfg = BenchConfig {
            sample_size: self.criterion.sample_size,
            measurement_time: self.criterion.measurement_time,
            warm_up_time: self.criterion.warm_up_time,
        };
        run_bench(format!("{}/{name}", self.name), self.throughput, cfg, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench(
    id: String,
    throughput: Option<Throughput>,
    cfg: BenchConfig,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up pass: run the body repeatedly until the budget elapses.
    let warm_deadline = Instant::now() + cfg.warm_up_time;
    let mut b = Bencher {
        mode: Mode::Run,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    while Instant::now() < warm_deadline {
        f(&mut b);
        if b.iters == 0 {
            break; // body never iterated; nothing to warm
        }
    }

    // Timed samples.
    let mut samples: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    let per_sample = cfg.measurement_time / cfg.sample_size as u32;
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            mode: Mode::Run,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        let deadline = Instant::now() + per_sample;
        loop {
            f(&mut b);
            if b.iters == 0 || Instant::now() >= deadline {
                break;
            }
        }
        if b.iters > 0 {
            samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let ns = if samples.is_empty() {
        f64::NAN
    } else {
        samples[samples.len() / 2]
    };
    let m = Measurement {
        id,
        ns_per_iter: ns,
        throughput,
    };
    match m.bytes_per_sec() {
        Some(bps) => println!(
            "{:<44} {:>12.1} ns/iter {:>10.1} MB/s",
            m.id,
            m.ns_per_iter,
            bps / 1e6
        ),
        None => println!("{:<44} {:>12.1} ns/iter", m.id, m.ns_per_iter),
    }
    record(m);
}

enum Mode {
    Run,
}

/// Passed to benchmark closures; times the measured routine.
pub struct Bencher {
    #[allow(dead_code)]
    mode: Mode,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Amortize clock reads over a small batch.
        const BATCH: u64 = 16;
        let start = Instant::now();
        for _ in 0..BATCH {
            hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement, and — as in real criterion — so is
    /// dropping the routine's output (returning a heavy structure is how
    /// a bench keeps teardown off the clock).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        let output = hint::black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(output);
    }
}

/// Declares a benchmark group entry point, mirroring real criterion's two
/// accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1000));
        g.bench_function("spin", |b| {
            b.iter(|| {
                let mut x = 0u64;
                for i in 0..100 {
                    x = x.wrapping_add(black_box(i));
                }
                x
            })
        });
        g.finish();
        let results = take_results();
        assert_eq!(results.len(), 1);
        assert!(results[0].ns_per_iter > 0.0);
        assert!(results[0].bytes_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(2));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        let results = take_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, "batched");
    }
}
