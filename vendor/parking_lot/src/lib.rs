//! A minimal, offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s API surface: locks
//! do not return `Result` and are poison-free (a panic while holding a
//! lock does not wedge later acquisitions — the lock is recovered, as
//! `parking_lot` behaves).

use std::fmt;
use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot` semantics (no poisoning).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the value without locking (exclusive access is
    /// guaranteed by the `&mut` receiver).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot` semantics (no poisoning).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn locks_recover_from_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
