//! A minimal, offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the real crate's `Bytes` API this workspace
//! uses, with identical semantics: a `Bytes` is a cheaply cloneable,
//! sliceable view into ref-counted immutable memory. Cloning and slicing
//! never copy payload bytes — they bump a reference count and adjust an
//! `(offset, len)` window.
//!
//! The one deliberate extension beyond parity is that [`Bytes::from_owner`]
//! (stabilized in real `bytes` 1.9) is the *primary* constructor here:
//! Rocksteady's zero-copy pull path wraps whole log segments as owners and
//! hands out `Bytes` windows into them, so a pull response aliases the
//! source log until the RPC is serialized.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
pub struct Bytes {
    data: Data,
    offset: usize,
    len: usize,
}

#[derive(Clone)]
enum Data {
    /// Borrowed from static storage; no refcount needed.
    Static(&'static [u8]),
    /// Shared ownership of an arbitrary byte container. The owner's
    /// `as_ref()` must be stable: same base address and at least the same
    /// length for the lifetime of the `Arc` (true for `Vec<u8>` and for
    /// append-only log segments whose committed prefix only grows).
    Owned(Arc<dyn AsRef<[u8]> + Send + Sync>),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes {
            data: Data::Static(&[]),
            offset: 0,
            len: 0,
        }
    }

    /// Creates a `Bytes` borrowing a static slice (no allocation).
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Data::Static(bytes),
            offset: 0,
            len: bytes.len(),
        }
    }

    /// Copies `data` into a fresh ref-counted allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Wraps an existing byte container without copying it. The returned
    /// `Bytes` (and everything sliced from it) keeps `owner` alive.
    ///
    /// This is the zero-copy entry point: wrapping an `Arc<Segment>`-like
    /// owner lets callers hand out windows into memory they do not copy.
    pub fn from_owner<O>(owner: O) -> Self
    where
        O: AsRef<[u8]> + Send + Sync + 'static,
    {
        let len = owner.as_ref().len();
        Bytes {
            data: Data::Owned(Arc::new(owner)),
            offset: 0,
            len,
        }
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a new `Bytes` windowing `range` of this one. No bytes are
    /// copied; the result shares the same owner.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice range {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Bytes {
            data: self.data.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// The bytes of this view as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        let backing: &[u8] = match &self.data {
            Data::Static(s) => s,
            Data::Owned(o) => (**o).as_ref(),
        };
        &backing[self.offset..self.offset + self.len]
    }

    /// Copies this view into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Clone for Bytes {
    fn clone(&self) -> Self {
        Bytes {
            data: self.data.clone(),
            offset: self.offset,
            len: self.len,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Data::Owned(Arc::new(v)),
            offset: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::copy_from_slice(b"hello");
        let c = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a, b"hello");
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn slicing_is_windowed_not_copied() {
        let base = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let mid = base.slice(8..24);
        assert_eq!(mid.len(), 16);
        assert_eq!(mid[0], 8);
        let inner = mid.slice(4..8);
        assert_eq!(&inner[..], &[12, 13, 14, 15]);
        // Full-range and open-ended forms.
        assert_eq!(base.slice(..), base);
        assert_eq!(base.slice(30..).len(), 2);
        assert_eq!(base.slice(..=1).len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from_static(b"abc").slice(1..5);
    }

    #[test]
    fn from_owner_keeps_owner_alive() {
        struct Tracked {
            data: Vec<u8>,
            dropped: Arc<AtomicBool>,
        }
        impl AsRef<[u8]> for Tracked {
            fn as_ref(&self) -> &[u8] {
                &self.data
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.dropped.store(true, Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(AtomicBool::new(false));
        let b = Bytes::from_owner(Tracked {
            data: vec![1, 2, 3, 4],
            dropped: Arc::clone(&dropped),
        });
        let s = b.slice(1..3);
        drop(b);
        // The slice still holds the owner.
        assert!(!dropped.load(Ordering::SeqCst));
        assert_eq!(&s[..], &[2, 3]);
        drop(s);
        assert!(dropped.load(Ordering::SeqCst));
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::copy_from_slice(b"shared");
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn hash_and_ord_follow_slice_semantics() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Bytes::from_static(b"k"));
        assert!(set.contains(&Bytes::copy_from_slice(b"k")));
        assert!(Bytes::from_static(b"a") < Bytes::from_static(b"b"));
    }
}
