//! The one shared per-interval percentile/throughput path.
//!
//! Every timeline figure (9, 10, 13) plots the same three derived
//! series: per-interval completed operations, medians, and 99.9th
//! percentiles. `ClientStats` and each fig bench used to re-derive
//! these independently; this module is now the single implementation,
//! and the SLO monitor windows latencies through the same
//! [`delta_histogram`] arithmetic.

use rocksteady_common::{Histogram, Nanos, TimeSeries, SECOND};

/// One interval of a latency timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Interval start (virtual time).
    pub at: Nanos,
    /// Observations completing in the interval.
    pub count: u64,
    /// Median over the interval.
    pub p50: u64,
    /// 99.9th percentile over the interval.
    pub p999: u64,
}

/// Per-interval `(median, p999)` rows of one series within `[from, to)`.
/// Empty intervals are skipped, matching how the paper's timelines only
/// plot intervals that completed operations.
pub fn latency_timeline(series: &TimeSeries, from: Nanos, to: Nanos) -> Vec<TimelinePoint> {
    merged_latency_timeline(std::iter::once(series), from, to)
}

/// Like [`latency_timeline`], but merging the same interval across many
/// series (e.g. all clients) before taking percentiles — the exact
/// merge+percentile the timeline figures plot.
pub fn merged_latency_timeline<'a>(
    series: impl IntoIterator<Item = &'a TimeSeries>,
    from: Nanos,
    to: Nanos,
) -> Vec<TimelinePoint> {
    let mut per_bucket: std::collections::BTreeMap<Nanos, Histogram> = Default::default();
    for ts in series {
        for (at, h) in ts.iter() {
            if at >= from && at < to && h.count() > 0 {
                per_bucket.entry(at).or_default().merge(h);
            }
        }
    }
    per_bucket
        .into_iter()
        .map(|(at, h)| TimelinePoint {
            at,
            count: h.count(),
            p50: h.percentile(0.5),
            p999: h.percentile(0.999),
        })
        .collect()
}

/// Per-interval completed-operations/s rows of one series in
/// `[from, to)` (includes empty intervals, as throughput plots do).
pub fn throughput_timeline(series: &TimeSeries, from: Nanos, to: Nanos) -> Vec<(Nanos, f64)> {
    let per_sec = SECOND as f64 / series.interval() as f64;
    series
        .iter()
        .filter(|(at, _)| *at >= from && *at < to)
        .map(|(at, h)| (at, h.count() as f64 * per_sec))
        .collect()
}

/// Total completed-operations/s per interval summed across many series
/// (all series must share one interval width).
pub fn merged_throughput_timeline<'a>(
    series: impl IntoIterator<Item = &'a TimeSeries>,
    from: Nanos,
    to: Nanos,
) -> Vec<(Nanos, f64)> {
    let mut acc: std::collections::BTreeMap<Nanos, f64> = Default::default();
    for ts in series {
        for (at, v) in throughput_timeline(ts, from, to) {
            *acc.entry(at).or_default() += v;
        }
    }
    acc.into_iter().collect()
}

/// The observations recorded into `cur` since `prev` was cloned from
/// the same histogram — windowed percentiles from cumulative
/// histograms, tolerant of a reset (if `cur` has fewer observations
/// than `prev`, the delta is `cur` itself).
pub fn delta_histogram(cur: &Histogram, prev: &Histogram) -> Histogram {
    if cur.count() < prev.count() {
        return cur.clone();
    }
    cur.delta_since(prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocksteady_common::MILLISECOND;

    #[test]
    fn latency_timeline_skips_empty_intervals() {
        let mut ts = TimeSeries::new(MILLISECOND);
        ts.record(0, 10);
        ts.record(100, 30);
        ts.record(2 * MILLISECOND, 50);
        let points = latency_timeline(&ts, 0, 10 * MILLISECOND);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].count, 2);
        assert_eq!(points[1].at, 2 * MILLISECOND);
    }

    #[test]
    fn merged_latency_merges_per_bucket() {
        let mut a = TimeSeries::new(MILLISECOND);
        let mut b = TimeSeries::new(MILLISECOND);
        a.record(0, 10);
        b.record(0, 1_000_000);
        let points = merged_latency_timeline([&a, &b], 0, MILLISECOND);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].count, 2);
        assert!(points[0].p999 >= 990_000, "p999 sees both clients");
    }

    #[test]
    fn throughput_counts_per_second() {
        let mut ts = TimeSeries::new(MILLISECOND);
        for i in 0..10 {
            ts.record(i, 1);
        }
        let rows = throughput_timeline(&ts, 0, MILLISECOND);
        assert_eq!(rows.len(), 1);
        assert!((rows[0].1 - 10_000.0).abs() < 1e-9);
        let merged = merged_throughput_timeline([&ts, &ts], 0, MILLISECOND);
        assert!((merged[0].1 - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn delta_histogram_windows_and_survives_reset() {
        let mut h = Histogram::new();
        h.record(100);
        let prev = h.clone();
        h.record(200);
        h.record(300);
        let d = delta_histogram(&h, &prev);
        assert_eq!(d.count(), 2);
        assert!(d.percentile(0.5) >= 190);
        // "Reset": current histogram smaller than the baseline.
        let fresh = {
            let mut f = Histogram::new();
            f.record(7);
            f
        };
        let d2 = delta_histogram(&fresh, &h);
        assert_eq!(d2.count(), 1);
    }
}
