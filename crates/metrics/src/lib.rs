//! Typed, label-aware metrics registry for the Rocksteady reproduction.
//!
//! Rocksteady's whole argument is quantitative: migration is "fast" only
//! relative to a 99.9th-percentile latency SLA, and every evaluation
//! figure is a counter or percentile sampled over the run (§§3.3, 5).
//! Before this crate those numbers came from three disjoint ad-hoc
//! mechanisms (hand-differenced `NodeStats` fields, `ClientStats`
//! counters, per-bench printouts). The [`Registry`] unifies them:
//!
//! - **Instruments** are cheap shared handles: a [`Counter`] is one
//!   `Rc<Cell<u64>>` bump, a [`Gauge`] one `Cell<i64>` store, a
//!   [`Stamp`] an optional virtual-time mark, and a [`Histo`] records
//!   into the HDR-style `rocksteady_common::Histogram`. Recording never
//!   allocates and never touches the registry lock-free shared state
//!   beyond the instrument's own cell, so arming metrics cannot perturb
//!   the simulation schedule.
//! - **Labels** distinguish instances of one family (`server="0"`,
//!   `client="2"`). Registration deduplicates on `(name, labels)` and
//!   returns a handle to the existing cell, so two components naming
//!   the same instrument share it.
//! - **Snapshots** are taken under the virtual clock and expose every
//!   instrument in one deterministically ordered view, exportable as
//!   integer-only JSON ([`Snapshot::to_json`]) or Prometheus text
//!   ([`Snapshot::to_prometheus`]). Same seed ⇒ byte-identical exports.
//! - **Windowed scraping**: [`DeltaScraper`] differences counters per
//!   interval, tolerating resets without underflow — the generic
//!   mechanism behind the harness's utilization and rate time series.
//! - **Self-check**: [`Registry::validate`] verifies the exposition
//!   invariants (name/label charset, one kind per family, no duplicate
//!   series) the exporters rely on.
//!
//! The [`timeline`] module holds the one shared per-interval percentile
//! path used by client stats, the SLO monitor, and every figure bench.

#![deny(missing_docs)]

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use rocksteady_common::{Histogram, Nanos};

pub mod timeline;

// ------------------------------------------------------------ instruments --

/// A monotonically increasing counter.
///
/// # Examples
///
/// ```
/// use rocksteady_metrics::Registry;
/// let reg = Registry::new();
/// let ops = reg.counter("ops_served", "operations served", &[]);
/// ops.inc();
/// ops.add(4);
/// assert_eq!(ops.get(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Creates a detached counter not registered anywhere (recorded
    /// values are never exported). Useful for unit tests and for
    /// components constructed without a registry.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one; returns the new total (handy for trace counters).
    #[inline]
    pub fn inc(&self) -> u64 {
        self.add(1)
    }

    /// Adds `n`; returns the new total.
    #[inline]
    pub fn add(&self, n: u64) -> u64 {
        let v = self.0.get().wrapping_add(n);
        self.0.set(v);
        v
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Resets to zero. Counters are monotonic within one component
    /// lifetime; a reset models a component restart. Consumers
    /// differencing counters must tolerate this (see [`DeltaScraper`]).
    pub fn reset(&self) {
        self.0.set(0);
    }
}

/// An instantaneous signed value (e.g. SLO headroom, which goes
/// negative during a breach).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<i64>>);

impl Gauge {
    /// Creates a detached gauge (see [`Counter::detached`]).
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.set(v);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.set(self.0.get() + d);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.get()
    }
}

/// An optional virtual-time mark (e.g. "when the current migration
/// started"). Exported as a gauge whose value is the time in
/// nanoseconds, or `-1` while unset.
#[derive(Debug, Clone, Default)]
pub struct Stamp(Rc<Cell<Option<Nanos>>>);

impl Stamp {
    /// Creates a detached stamp (see [`Counter::detached`]).
    pub fn detached() -> Self {
        Stamp::default()
    }

    /// Marks the stamp at time `t`.
    #[inline]
    pub fn set(&self, t: Nanos) {
        self.0.set(Some(t));
    }

    /// Clears the stamp.
    #[inline]
    pub fn clear(&self) {
        self.0.set(None);
    }

    /// The mark, if set.
    #[inline]
    pub fn get(&self) -> Option<Nanos> {
        self.0.get()
    }

    /// Exposition value: the mark, or `-1` while unset.
    fn as_gauge(&self) -> i64 {
        match self.0.get() {
            Some(t) => t as i64,
            None => -1,
        }
    }
}

/// A shared HDR histogram instrument (log-bucketed, ≤1.6% relative
/// error — see `rocksteady_common::Histogram`).
#[derive(Debug, Clone)]
pub struct Histo(Rc<RefCell<Histogram>>);

impl Default for Histo {
    fn default() -> Self {
        Histo(Rc::new(RefCell::new(Histogram::new())))
    }
}

impl Histo {
    /// Creates a detached histogram (see [`Counter::detached`]).
    pub fn detached() -> Self {
        Histo::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().record(v);
    }

    /// Runs `f` with a borrow of the underlying histogram.
    pub fn with<R>(&self, f: impl FnOnce(&Histogram) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Clones the current contents (for windowed differencing).
    pub fn snapshot(&self) -> Histogram {
        self.0.borrow().clone()
    }

    /// The percentile summary every figure reports.
    pub fn summary(&self) -> HistoSummary {
        HistoSummary::of(&self.0.borrow())
    }
}

/// Integer percentile summary of a histogram, as exported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (saturating at `u64::MAX`).
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile — the paper's SLA statistic.
    pub p999: u64,
}

impl HistoSummary {
    /// Summarizes `h`.
    pub fn of(h: &Histogram) -> Self {
        HistoSummary {
            count: h.count(),
            sum: h.sum_saturating(),
            min: h.min(),
            max: h.max(),
            p50: h.percentile(0.50),
            p99: h.percentile(0.99),
            p999: h.percentile(0.999),
        }
    }
}

// --------------------------------------------------------------- registry --

/// One `key="value"` pair. Keys are static (they come from call sites);
/// values are formatted instance ids.
pub type Label = (&'static str, String);

#[derive(Debug, Clone)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Stamp(Stamp),
    Histo(Histo),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) | Slot::Stamp(_) => "gauge",
            Slot::Histo(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Instrument {
    name: &'static str,
    help: &'static str,
    labels: Vec<Label>,
    slot: Slot,
}

#[derive(Debug, Default)]
struct Inner {
    instruments: Vec<Instrument>,
    /// `(name, rendered labels)` → index into `instruments`.
    index: HashMap<(&'static str, String), usize>,
}

/// What a well-formed registry contained (see [`Registry::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistrySummary {
    /// Distinct metric families (names).
    pub families: usize,
    /// Registered instruments (series) across all families.
    pub instruments: usize,
}

/// The shared instrument registry. Clonable; clones share state.
///
/// Registration is idempotent on `(name, labels)`: registering the same
/// series twice returns a handle to the same cell. Registering one name
/// with two different instrument kinds panics — that is a programming
/// error the exposition formats cannot represent.
#[derive(Debug, Clone, Default)]
pub struct Registry(Rc<RefCell<Inner>>);

fn render_labels(labels: &[Label]) -> String {
    let mut sorted: Vec<&Label> = labels.iter().collect();
    sorted.sort();
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[Label],
        slot: Slot,
    ) -> Slot {
        let mut inner = self.0.borrow_mut();
        let key = (name, render_labels(labels));
        if let Some(&i) = inner.index.get(&key) {
            let existing = &inner.instruments[i].slot;
            assert_eq!(
                existing.kind(),
                slot.kind(),
                "metric family {name} registered as both {} and {}",
                existing.kind(),
                slot.kind()
            );
            return existing.clone();
        }
        let mut labels = labels.to_vec();
        labels.sort();
        let idx = inner.instruments.len();
        inner.instruments.push(Instrument {
            name,
            help,
            labels,
            slot: slot.clone(),
        });
        inner.index.insert(key, idx);
        slot
    }

    /// Registers (or finds) a counter series.
    pub fn counter(&self, name: &'static str, help: &'static str, labels: &[Label]) -> Counter {
        match self.register(name, help, labels, Slot::Counter(Counter::default())) {
            Slot::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Registers (or finds) a gauge series.
    pub fn gauge(&self, name: &'static str, help: &'static str, labels: &[Label]) -> Gauge {
        match self.register(name, help, labels, Slot::Gauge(Gauge::default())) {
            Slot::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Registers (or finds) a virtual-time stamp series.
    pub fn stamp(&self, name: &'static str, help: &'static str, labels: &[Label]) -> Stamp {
        match self.register(name, help, labels, Slot::Stamp(Stamp::default())) {
            Slot::Stamp(s) => s,
            _ => unreachable!(),
        }
    }

    /// Registers (or finds) a histogram series.
    pub fn histogram(&self, name: &'static str, help: &'static str, labels: &[Label]) -> Histo {
        match self.register(name, help, labels, Slot::Histo(Histo::default())) {
            Slot::Histo(h) => h,
            _ => unreachable!(),
        }
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.0.borrow().instruments.len()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finds the histogram series `(name, labels)` if registered.
    pub fn find_histogram(&self, name: &str, labels: &[Label]) -> Option<Histo> {
        let inner = self.0.borrow();
        let rendered = render_labels(labels);
        inner
            .index
            .get(&(leak_lookup(name, &inner), rendered))
            .and_then(|&i| match &inner.instruments[i].slot {
                Slot::Histo(h) => Some(h.clone()),
                _ => None,
            })
    }

    /// All histogram handles of family `name`, with their labels, in
    /// deterministic (label-sorted) order.
    pub fn histograms_of(&self, name: &str) -> Vec<(Vec<Label>, Histo)> {
        let inner = self.0.borrow();
        let mut out: Vec<(Vec<Label>, Histo)> = inner
            .instruments
            .iter()
            .filter(|ins| ins.name == name)
            .filter_map(|ins| match &ins.slot {
                Slot::Histo(h) => Some((ins.labels.clone(), h.clone())),
                _ => None,
            })
            .collect();
        out.sort_by_key(|(labels, _)| render_labels(labels));
        out
    }

    /// Takes a deterministic snapshot of every instrument at virtual
    /// time `at`. Rows are ordered by `(name, labels)`.
    pub fn snapshot(&self, at: Nanos) -> Snapshot {
        let inner = self.0.borrow();
        let mut rows: Vec<SampleRow> = inner
            .instruments
            .iter()
            .map(|ins| SampleRow {
                name: ins.name,
                help: ins.help,
                labels: ins.labels.clone(),
                value: match &ins.slot {
                    Slot::Counter(c) => SampleValue::Counter(c.get()),
                    Slot::Gauge(g) => SampleValue::Gauge(g.get()),
                    Slot::Stamp(s) => SampleValue::Gauge(s.as_gauge()),
                    Slot::Histo(h) => SampleValue::Histogram(h.summary()),
                },
            })
            .collect();
        rows.sort_by(|a, b| {
            (a.name, render_labels(&a.labels)).cmp(&(b.name, render_labels(&b.labels)))
        });
        Snapshot { at, rows }
    }

    /// Self-check of the exposition invariants: every family name and
    /// label key is a valid identifier (`[a-z_][a-z0-9_]*`), no family
    /// is registered under two instrument kinds, label keys within a
    /// series are unique, and no two series collide on
    /// `(name, labels)`.
    pub fn validate(&self) -> Result<RegistrySummary, String> {
        let inner = self.0.borrow();
        let mut kinds: HashMap<&'static str, &'static str> = HashMap::new();
        let mut seen: HashMap<(&'static str, String), usize> = HashMap::new();
        for (i, ins) in inner.instruments.iter().enumerate() {
            if !valid_ident(ins.name) {
                return Err(format!("invalid metric name {:?}", ins.name));
            }
            for (k, v) in &ins.labels {
                if !valid_ident(k) {
                    return Err(format!("invalid label key {k:?} on {}", ins.name));
                }
                if v.contains('"') || v.contains('\\') || v.contains('\n') {
                    return Err(format!("unescapable label value {v:?} on {}", ins.name));
                }
            }
            let mut keys: Vec<_> = ins.labels.iter().map(|(k, _)| *k).collect();
            keys.sort_unstable();
            keys.dedup();
            if keys.len() != ins.labels.len() {
                return Err(format!("duplicate label key on {}", ins.name));
            }
            match kinds.entry(ins.name) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != ins.slot.kind() {
                        return Err(format!(
                            "family {} registered as both {} and {}",
                            ins.name,
                            e.get(),
                            ins.slot.kind()
                        ));
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(ins.slot.kind());
                }
            }
            if let Some(prev) = seen.insert((ins.name, render_labels(&ins.labels)), i) {
                return Err(format!(
                    "series {}{{{}}} registered twice (slots {prev} and {i})",
                    ins.name,
                    render_labels(&ins.labels)
                ));
            }
        }
        Ok(RegistrySummary {
            families: kinds.len(),
            instruments: inner.instruments.len(),
        })
    }
}

/// `index` keys by `&'static str`; lookups with a runtime `&str` go
/// through the instrument list instead. Returns the interned name if
/// any instrument carries it, else a name that cannot match.
fn leak_lookup(name: &str, inner: &Inner) -> &'static str {
    inner
        .instruments
        .iter()
        .find(|ins| ins.name == name)
        .map(|ins| ins.name)
        .unwrap_or("\u{0}")
}

fn valid_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

// -------------------------------------------------------------- snapshots --

/// A sampled instrument value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value (stamps export as gauges, `-1` when unset).
    Gauge(i64),
    /// Histogram percentile summary.
    Histogram(HistoSummary),
}

/// One instrument's row in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct SampleRow {
    /// Family name.
    pub name: &'static str,
    /// Family help text.
    pub help: &'static str,
    /// Sorted labels.
    pub labels: Vec<Label>,
    /// Sampled value.
    pub value: SampleValue,
}

/// A deterministic point-in-time view of every registered instrument.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Virtual time the snapshot was taken.
    pub at: Nanos,
    /// Rows ordered by `(name, labels)`.
    pub rows: Vec<SampleRow>,
}

impl Snapshot {
    /// Looks up a row by family name and rendered labels.
    pub fn get(&self, name: &str, labels: &[Label]) -> Option<&SampleValue> {
        let rendered = render_labels(labels);
        self.rows
            .iter()
            .find(|r| r.name == name && render_labels(&r.labels) == rendered)
            .map(|r| &r.value)
    }

    /// Exports as integer-only JSON. Values are integers and ordering is
    /// fixed, so same-seed runs export byte-identical strings (the same
    /// contract as the trace layer's chrome JSON).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.rows.len() * 96);
        out.push_str("{\"at\":");
        out.push_str(&self.at.to_string());
        out.push_str(",\"metrics\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(row.name);
            out.push('"');
            if !row.labels.is_empty() {
                out.push_str(",\"labels\":{");
                for (j, (k, v)) in row.labels.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(k);
                    out.push_str("\":\"");
                    out.push_str(v);
                    out.push('"');
                }
                out.push('}');
            }
            match &row.value {
                SampleValue::Counter(v) => {
                    out.push_str(",\"type\":\"counter\",\"value\":");
                    out.push_str(&v.to_string());
                }
                SampleValue::Gauge(v) => {
                    out.push_str(",\"type\":\"gauge\",\"value\":");
                    out.push_str(&v.to_string());
                }
                SampleValue::Histogram(s) => {
                    out.push_str(",\"type\":\"histogram\"");
                    for (k, v) in [
                        ("count", s.count),
                        ("sum", s.sum),
                        ("min", s.min),
                        ("max", s.max),
                        ("p50", s.p50),
                        ("p99", s.p99),
                        ("p999", s.p999),
                    ] {
                        out.push_str(",\"");
                        out.push_str(k);
                        out.push_str("\":");
                        out.push_str(&v.to_string());
                    }
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Exports in the Prometheus text exposition format. Histograms
    /// export as summaries (`{quantile="..."}` plus `_sum`/`_count`),
    /// matching how the paper reads its SLA ("99.9% of requests finished
    /// within X").
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(64 + self.rows.len() * 128);
        let mut last_family: Option<&'static str> = None;
        for row in &self.rows {
            if last_family != Some(row.name) {
                out.push_str("# HELP ");
                out.push_str(row.name);
                out.push(' ');
                out.push_str(row.help);
                out.push('\n');
                out.push_str("# TYPE ");
                out.push_str(row.name);
                out.push(' ');
                out.push_str(match row.value {
                    SampleValue::Counter(_) => "counter",
                    SampleValue::Gauge(_) => "gauge",
                    SampleValue::Histogram(_) => "summary",
                });
                out.push('\n');
                last_family = Some(row.name);
            }
            let labels = render_labels(&row.labels);
            match &row.value {
                SampleValue::Counter(v) => {
                    push_series(&mut out, row.name, &labels, None, &v.to_string());
                }
                SampleValue::Gauge(v) => {
                    push_series(&mut out, row.name, &labels, None, &v.to_string());
                }
                SampleValue::Histogram(s) => {
                    for (q, v) in [("0.5", s.p50), ("0.99", s.p99), ("0.999", s.p999)] {
                        let q = format!("quantile=\"{q}\"");
                        push_series(&mut out, row.name, &labels, Some(&q), &v.to_string());
                    }
                    push_series(
                        &mut out,
                        &format!("{}_sum", row.name),
                        &labels,
                        None,
                        &s.sum.to_string(),
                    );
                    push_series(
                        &mut out,
                        &format!("{}_count", row.name),
                        &labels,
                        None,
                        &s.count.to_string(),
                    );
                }
            }
        }
        out
    }
}

fn push_series(out: &mut String, name: &str, labels: &str, extra: Option<&str>, value: &str) {
    out.push_str(name);
    let has_labels = !labels.is_empty() || extra.is_some();
    if has_labels {
        out.push('{');
        out.push_str(labels);
        if let Some(extra) = extra {
            if !labels.is_empty() {
                out.push(',');
            }
            out.push_str(extra);
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

// ---------------------------------------------------------- delta scraper --

/// One counter's per-interval reading from a [`DeltaScraper`] pass.
#[derive(Debug, Clone)]
pub struct CounterDelta {
    /// Family name.
    pub name: &'static str,
    /// Sorted labels.
    pub labels: Vec<Label>,
    /// Cumulative total at scrape time.
    pub total: u64,
    /// Increase since the previous scrape. If the counter was reset
    /// (total went backwards — a component restart), the delta is the
    /// new total rather than an underflowed difference.
    pub delta: u64,
}

impl CounterDelta {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Windows counters into per-interval deltas — the generic scraping
/// mechanism behind the harness sampler. Instruments registered after
/// scraping began (a server joining mid-run) are picked up on their
/// first scrape with their full total as the first delta.
///
/// Registration is append-only, so the scraper caches its schema (the
/// sorted series order, rendered label keys, and cloned counter
/// handles) and rebuilds it only when the registry has grown. The
/// steady-state scrape is then a plain walk over cached cells with no
/// allocation, rendering, or sorting — it runs on every sampler tick.
#[derive(Debug, Default)]
pub struct DeltaScraper {
    /// Cached counter series in deterministic `(name, labels)` order.
    entries: Vec<ScrapeEntry>,
    /// Registry instrument count covered by `entries`; a mismatch
    /// triggers a schema rebuild (instruments are never removed).
    seen: usize,
}

#[derive(Debug)]
struct ScrapeEntry {
    name: &'static str,
    labels: Vec<Label>,
    rendered: String,
    cell: Counter,
    last: u64,
}

impl DeltaScraper {
    /// Creates a scraper with no history (first scrape deltas from 0).
    pub fn new() -> Self {
        DeltaScraper::default()
    }

    fn rebuild(&mut self, reg: &Registry) {
        let inner = reg.0.borrow();
        let mut carried: HashMap<(&'static str, String), u64> = self
            .entries
            .drain(..)
            .map(|e| ((e.name, e.rendered), e.last))
            .collect();
        self.entries = inner
            .instruments
            .iter()
            .filter_map(|ins| match &ins.slot {
                Slot::Counter(c) => {
                    let rendered = render_labels(&ins.labels);
                    let last = carried.remove(&(ins.name, rendered.clone())).unwrap_or(0);
                    Some(ScrapeEntry {
                        name: ins.name,
                        labels: ins.labels.clone(),
                        rendered,
                        cell: c.clone(),
                        last,
                    })
                }
                _ => None,
            })
            .collect();
        self.entries
            .sort_by(|a, b| (a.name, &a.rendered).cmp(&(b.name, &b.rendered)));
        self.seen = inner.instruments.len();
    }

    /// Visits every counter in `reg` in deterministic `(name, labels)`
    /// order, passing `(name, labels, total, delta)` — the allocation-
    /// free form of [`scrape`](DeltaScraper::scrape).
    pub fn scrape_with(
        &mut self,
        reg: &Registry,
        mut f: impl FnMut(&'static str, &[Label], u64, u64),
    ) {
        if reg.0.borrow().instruments.len() != self.seen {
            self.rebuild(reg);
        }
        for e in &mut self.entries {
            let total = e.cell.get();
            // Reset tolerance: a total below the previous reading
            // means the counter restarted; count from zero.
            let delta = if total >= e.last {
                total - e.last
            } else {
                total
            };
            e.last = total;
            f(e.name, &e.labels, total, delta);
        }
    }

    /// Reads every counter in `reg`, returning deltas since the last
    /// call in deterministic `(name, labels)` order.
    pub fn scrape(&mut self, reg: &Registry) -> Vec<CounterDelta> {
        let mut out = Vec::new();
        self.scrape_with(reg, |name, labels, total, delta| {
            out.push(CounterDelta {
                name,
                labels: labels.to_vec(),
                total,
                delta,
            })
        });
        out
    }
}

/// Renders a scrape pass as a deterministic JSON array — the metrics
/// slice embedded in flight-recorder incident bundles. Entries keep the
/// scraper's `(name, labels)` order; integers only, so same-seed runs
/// produce byte-identical output.
pub fn deltas_to_json(deltas: &[CounterDelta]) -> String {
    let mut out = String::with_capacity(32 + deltas.len() * 64);
    out.push('[');
    for (i, d) in deltas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        out.push_str(d.name);
        out.push('"');
        if !d.labels.is_empty() {
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in d.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(k);
                out.push_str("\":\"");
                out.push_str(v);
                out.push('"');
            }
            out.push('}');
        }
        out.push_str(",\"total\":");
        out.push_str(&d.total.to_string());
        out.push_str(",\"delta\":");
        out.push_str(&d.delta.to_string());
        out.push('}');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_render_as_deterministic_json() {
        let reg = Registry::new();
        let c = reg.counter("requests_total", "requests", &[("server", "3".into())]);
        let plain = reg.counter("ticks_total", "ticks", &[]);
        c.add(7);
        plain.add(2);
        let mut s = DeltaScraper::new();
        let json = deltas_to_json(&s.scrape(&reg));
        assert_eq!(
            json,
            "[{\"name\":\"requests_total\",\"labels\":{\"server\":\"3\"},\
             \"total\":7,\"delta\":7},\
             {\"name\":\"ticks_total\",\"total\":2,\"delta\":2}]"
        );
        c.add(3);
        let json2 = deltas_to_json(&s.scrape(&reg));
        assert!(json2.contains("\"total\":10,\"delta\":3"), "{json2}");
    }

    #[test]
    fn counter_gauge_stamp_histo_basics() {
        let reg = Registry::new();
        let c = reg.counter("ops", "ops", &[]);
        assert_eq!(c.inc(), 1);
        assert_eq!(c.add(4), 5);
        let g = reg.gauge("headroom", "h", &[]);
        g.set(-3);
        g.add(1);
        assert_eq!(g.get(), -2);
        let s = reg.stamp("started_at", "s", &[]);
        assert_eq!(s.get(), None);
        s.set(42);
        assert_eq!(s.get(), Some(42));
        s.clear();
        assert_eq!(s.as_gauge(), -1);
        let h = reg.histogram("lat", "l", &[]);
        h.record(100);
        h.record(200);
        assert_eq!(h.summary().count, 2);
        assert_eq!(reg.len(), 4);
    }

    #[test]
    fn registration_dedupes_on_name_and_labels() {
        let reg = Registry::new();
        let a = reg.counter("ops", "ops", &[("server", "0".into())]);
        let b = reg.counter("ops", "ops", &[("server", "0".into())]);
        let c = reg.counter("ops", "ops", &[("server", "1".into())]);
        a.inc();
        assert_eq!(b.get(), 1, "same series shares the cell");
        assert_eq!(c.get(), 0, "different labels are a different series");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "registered as both")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        reg.counter("x", "x", &[]);
        reg.gauge("x", "x", &[]);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let build = || {
            let reg = Registry::new();
            reg.counter("z_ops", "z", &[("server", "1".into())]).add(7);
            reg.counter("z_ops", "z", &[("server", "0".into())]).add(3);
            reg.gauge("a_gauge", "a", &[]).set(-5);
            let h = reg.histogram("lat_ns", "l", &[("client", "0".into())]);
            for v in [10, 20, 30] {
                h.record(v);
            }
            reg.stamp("mark", "m", &[]);
            reg.snapshot(1_000).to_json()
        };
        let a = build();
        assert_eq!(a, build());
        // Sorted: a_gauge, lat_ns, mark, z_ops{0}, z_ops{1}.
        let ia = a.find("a_gauge").unwrap();
        let il = a.find("lat_ns").unwrap();
        let iz0 = a
            .find("{\"name\":\"z_ops\",\"labels\":{\"server\":\"0\"}")
            .unwrap();
        let iz1 = a
            .find("{\"name\":\"z_ops\",\"labels\":{\"server\":\"1\"}")
            .unwrap();
        assert!(ia < il && il < iz0 && iz0 < iz1, "{a}");
        assert!(a.contains("\"at\":1000"));
        assert!(a.contains("\"type\":\"gauge\",\"value\":-5"));
        assert!(a.contains("\"p50\":"));
        // Unset stamp exports as -1.
        assert!(a.contains("{\"name\":\"mark\",\"type\":\"gauge\",\"value\":-1}"));
    }

    #[test]
    fn prometheus_text_shape() {
        let reg = Registry::new();
        reg.counter("ops_total", "operations", &[("server", "0".into())])
            .add(12);
        let h = reg.histogram("read_ns", "read latency", &[]);
        h.record(500);
        let text = reg.snapshot(0).to_prometheus();
        assert!(text.contains("# TYPE ops_total counter\n"));
        assert!(text.contains("ops_total{server=\"0\"} 12\n"));
        assert!(text.contains("# TYPE read_ns summary\n"));
        assert!(text.contains("read_ns{quantile=\"0.999\"}"));
        assert!(text.contains("read_ns_count 1\n"));
        assert!(text.contains("read_ns_sum 500\n"));
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad_names() {
        let reg = Registry::new();
        reg.counter("good_name_1", "g", &[("server", "0".into())]);
        let s = reg.validate().expect("valid registry");
        assert_eq!(s.families, 1);
        assert_eq!(s.instruments, 1);
        let bad = Registry::new();
        bad.counter("BadName", "b", &[]);
        assert!(bad.validate().is_err());
        let bad_label = Registry::new();
        bad_label.counter("ok", "o", &[("Server", "0".into())]);
        assert!(bad_label.validate().is_err());
    }

    #[test]
    fn delta_scraper_windows_and_tolerates_resets() {
        let reg = Registry::new();
        let c = reg.counter("busy_ns", "b", &[("server", "0".into())]);
        let mut scraper = DeltaScraper::new();
        c.add(100);
        let d1 = scraper.scrape(&reg);
        assert_eq!(d1[0].delta, 100);
        c.add(50);
        let d2 = scraper.scrape(&reg);
        assert_eq!(d2[0].delta, 50);
        assert_eq!(d2[0].total, 150);
        // Reset: total goes backwards; delta restarts from zero.
        c.reset();
        c.add(30);
        let d3 = scraper.scrape(&reg);
        assert_eq!(d3[0].delta, 30, "reset must not underflow");
        // Empty interval: zero delta.
        let d4 = scraper.scrape(&reg);
        assert_eq!(d4[0].delta, 0);
    }

    #[test]
    fn late_registered_instruments_are_picked_up() {
        let reg = Registry::new();
        let mut scraper = DeltaScraper::new();
        assert!(scraper.scrape(&reg).is_empty());
        let c = reg.counter("late", "l", &[("server", "9".into())]);
        c.add(5);
        let d = scraper.scrape(&reg);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].delta, 5);
        assert_eq!(d[0].label("server"), Some("9"));
    }

    #[test]
    fn find_and_enumerate_histograms() {
        let reg = Registry::new();
        let h0 = reg.histogram("lat", "l", &[("client", "0".into())]);
        let _h1 = reg.histogram("lat", "l", &[("client", "1".into())]);
        h0.record(9);
        let found = reg
            .find_histogram("lat", &[("client", "0".into())])
            .expect("registered");
        assert_eq!(found.summary().count, 1);
        assert!(reg.find_histogram("nope", &[]).is_none());
        let all = reg.histograms_of("lat");
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0[0].1, "0");
    }
}
