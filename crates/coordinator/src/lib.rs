//! The cluster coordinator: membership, the tablet map, lineage, and
//! crash handling.
//!
//! RAMCloud's coordinator owns the table-partition-to-master mapping and
//! cluster membership (§2, Figure 1). Rocksteady adds two
//! responsibilities (§3.4):
//!
//! - **Lineage dependencies**: when a migration starts, the coordinator
//!   records that the *source* depends on the tail of the *target's*
//!   recovery log (two integers: whose log, and from which segment). The
//!   dependency is dropped once the target commits its side logs and
//!   finishes lazy re-replication.
//! - **Migration-aware crash handling**: if either participant of an
//!   in-flight migration dies, ownership reverts to the source and the
//!   coordinator induces a recovery that replays the target's log tail
//!   along with the source's own data — twice the replay work of a
//!   normal recovery, in exchange for keeping the fast path
//!   replication-free.
//!
//! This type is pure state; the cluster harness wraps it in a simulation
//! actor that speaks the coordinator RPCs of [`rocksteady_proto`].

use rocksteady_common::{HashRange, KeyHash, MigrationId, ServerId, TableId};
use rocksteady_proto::{TabletDescriptor, TabletState};

/// A recorded lineage dependency (§3.4): `source`'s correct recovery
/// requires replaying `target`'s log from `from_segment` onward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineageDep {
    /// The migration this dependency belongs to. Several migrations may
    /// be in flight at once (different ranges, possibly sharing servers);
    /// the id keeps their bookkeeping separable.
    pub id: MigrationId,
    /// The migration source (the dependent).
    pub source: ServerId,
    /// The migration target (whose log tail is depended upon).
    pub target: ServerId,
    /// Table under migration.
    pub table: TableId,
    /// Range under migration.
    pub range: HashRange,
    /// First segment id of the target's log tail covered by the
    /// dependency.
    pub from_segment: u64,
}

/// One recovery task the coordinator hands to a surviving master.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryAssignment {
    /// Table to recover.
    pub table: TableId,
    /// Hash range to recover.
    pub range: HashRange,
    /// The master whose data must be reconstructed (the crashed server,
    /// or the lineage target whose tail must be merged).
    pub crashed: ServerId,
    /// The surviving master that will replay and take ownership.
    pub recovery_master: ServerId,
    /// Skip log segments below this id (lineage tail, §3.4).
    pub from_segment: u64,
    /// Whether the recovery master should keep serving its existing copy
    /// of the range (lineage merge onto the still-alive source) rather
    /// than starting from nothing.
    pub merge: bool,
}

/// The coordinator's authoritative cluster state.
#[derive(Debug, Default)]
pub struct Coordinator {
    servers: Vec<(ServerId, bool)>,
    tablets: Vec<TabletDescriptor>,
    lineage: Vec<LineageDep>,
}

impl Coordinator {
    /// Creates an empty coordinator.
    pub fn new() -> Self {
        Coordinator::default()
    }

    // ------------------------------------------------------- membership --

    /// Registers a server as alive.
    pub fn register_server(&mut self, id: ServerId) {
        if !self.servers.iter().any(|(s, _)| *s == id) {
            self.servers.push((id, true));
        }
    }

    /// Alive servers.
    pub fn alive_servers(&self) -> Vec<ServerId> {
        self.servers
            .iter()
            .filter(|(_, alive)| *alive)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Whether `id` is known and alive.
    pub fn is_alive(&self, id: ServerId) -> bool {
        self.servers.iter().any(|(s, alive)| *s == id && *alive)
    }

    // -------------------------------------------------------- tablet map --

    /// Installs a tablet (harness setup or post-recovery).
    pub fn create_tablet(&mut self, table: TableId, range: HashRange, owner: ServerId) {
        self.tablets.push(TabletDescriptor {
            table,
            range,
            owner,
            state: TabletState::Normal,
        });
    }

    /// The full map, as served to clients.
    pub fn tablet_map(&self) -> Vec<TabletDescriptor> {
        self.tablets.clone()
    }

    /// The descriptor covering `(table, hash)`.
    pub fn tablet_for(&self, table: TableId, hash: KeyHash) -> Option<&TabletDescriptor> {
        self.tablets.iter().find(|t| t.covers(table, hash))
    }

    fn tablet_mut(&mut self, table: TableId, range: HashRange) -> Option<&mut TabletDescriptor> {
        self.tablets
            .iter_mut()
            .find(|t| t.table == table && t.range == range)
    }

    /// Splits the descriptor containing `at` into `[start, at)` and
    /// `[at, end]` (both keeping the same owner). Migration begins with a
    /// split (§3); it is metadata-only here and on the master.
    ///
    /// Rejected while the covering tablet is under an in-flight migration
    /// or a lineage dependency covers the range: splitting such a tablet
    /// would silently invalidate the recorded `LineageDep` range and the
    /// migration's ownership bookkeeping.
    pub fn split_tablet(&mut self, table: TableId, at: KeyHash) -> bool {
        let migrating = self
            .lineage
            .iter()
            .any(|d| d.table == table && d.range.contains(at));
        let Some(t) = self
            .tablets
            .iter_mut()
            .find(|t| t.covers(table, at) && t.range.start < at)
        else {
            return false;
        };
        if migrating || t.state != TabletState::Normal {
            return false;
        }
        let upper = TabletDescriptor {
            table,
            range: HashRange {
                start: at,
                end: t.range.end,
            },
            owner: t.owner,
            state: t.state,
        };
        t.range.end = at - 1;
        self.tablets.push(upper);
        true
    }

    // --------------------------------------------------------- migration --

    /// A Rocksteady migration is starting: ownership moves to `target`
    /// immediately and the lineage dependency is recorded (§3, §3.4).
    ///
    /// Returns false if the named tablet doesn't exist, isn't owned by
    /// `source`, isn't in the `Normal` state, or if any recorded lineage
    /// dependency overlaps the range (two concurrent migrations over
    /// overlapping ranges would corrupt each other's bookkeeping).
    pub fn migration_starting(
        &mut self,
        id: MigrationId,
        table: TableId,
        range: HashRange,
        source: ServerId,
        target: ServerId,
        from_segment: u64,
    ) -> bool {
        if self
            .lineage
            .iter()
            .any(|d| d.id == id || (d.table == table && d.range.overlaps(&range)))
        {
            return false;
        }
        let Some(t) = self.tablet_mut(table, range) else {
            return false;
        };
        if t.owner != source || t.state != TabletState::Normal {
            return false;
        }
        t.owner = target;
        t.state = TabletState::Migrating { source };
        self.lineage.push(LineageDep {
            id,
            source,
            target,
            table,
            range,
            from_segment,
        });
        true
    }

    /// A Rocksteady migration committed: drop the dependency (§3.4).
    pub fn migration_complete(
        &mut self,
        id: MigrationId,
        table: TableId,
        range: HashRange,
        source: ServerId,
        target: ServerId,
    ) -> bool {
        // The id is authoritative: with several migrations in flight the
        // (table, range) pair alone could be ambiguous after splits.
        if !self
            .lineage
            .iter()
            .any(|d| d.id == id && d.source == source && d.target == target)
        {
            return false;
        }
        let Some(t) = self.tablet_mut(table, range) else {
            return false;
        };
        if t.owner != target {
            return false;
        }
        t.state = TabletState::Normal;
        self.lineage.retain(|d| d.id != id);
        true
    }

    /// A baseline migration is starting: ownership stays at the source
    /// (§2.3); the map just notes the destination.
    pub fn baseline_starting(
        &mut self,
        table: TableId,
        range: HashRange,
        source: ServerId,
        target: ServerId,
    ) -> bool {
        match self.tablet_mut(table, range) {
            Some(t) if t.owner == source => {
                t.state = TabletState::MigratingToTarget { target };
                true
            }
            _ => false,
        }
    }

    /// A baseline migration finished: ownership transfers now (§2.3).
    pub fn baseline_complete(
        &mut self,
        table: TableId,
        range: HashRange,
        source: ServerId,
        target: ServerId,
    ) -> bool {
        match self.tablet_mut(table, range) {
            Some(t) if t.owner == source => {
                t.owner = target;
                t.state = TabletState::Normal;
                true
            }
            _ => false,
        }
    }

    /// Current lineage dependencies (inspection/testing).
    pub fn lineage_deps(&self) -> &[LineageDep] {
        &self.lineage
    }

    // ------------------------------------------------------------ crash --

    /// Handles a crash report: marks the server dead, reverts in-flight
    /// migrations involving it (§3.4), and plans recoveries for every
    /// tablet that needs one.
    ///
    /// The returned assignments tell surviving masters what to replay;
    /// the cluster harness delivers them as `RecoverTablet` RPCs. Tablet
    /// ownership in the map is updated immediately (clients will find the
    /// recovery master and be told to retry until replay completes).
    pub fn handle_crash(&mut self, dead: ServerId) -> Vec<RecoveryAssignment> {
        for (s, alive) in &mut self.servers {
            if *s == dead {
                *alive = false;
            }
        }
        let alive = self.alive_servers();
        let mut assignments = Vec::new();
        let mut rr = 0usize;
        let lineage = self.lineage.clone();

        for t in &mut self.tablets {
            match t.state {
                // Target of an in-flight Rocksteady migration died:
                // ownership reverts to the source, which must merge the
                // target's replicated log tail (the writes the target
                // accepted) into its own copy (§3.4).
                TabletState::Migrating { source } if t.owner == dead => {
                    let dep = lineage
                        .iter()
                        .find(|d| d.table == t.table && d.range == t.range && d.target == dead);
                    t.owner = source;
                    t.state = TabletState::Normal;
                    assignments.push(RecoveryAssignment {
                        table: t.table,
                        range: t.range,
                        crashed: dead,
                        recovery_master: source,
                        from_segment: dep.map_or(0, |d| d.from_segment),
                        merge: true,
                    });
                }
                // Source of an in-flight Rocksteady migration died: the
                // target already owns the tablet and holds whatever it
                // pulled; it must replay the source's replicated log to
                // fill in what never arrived.
                TabletState::Migrating { source } if source == dead => {
                    let target = t.owner;
                    t.state = TabletState::Normal;
                    assignments.push(RecoveryAssignment {
                        table: t.table,
                        range: t.range,
                        crashed: dead,
                        recovery_master: target,
                        from_segment: 0,
                        merge: true,
                    });
                }
                // A normal tablet owned by the dead server: spray it to a
                // surviving master (§2's fast distributed recovery,
                // round-robin here).
                _ if t.owner == dead => {
                    if alive.is_empty() {
                        continue;
                    }
                    let master = alive[rr % alive.len()];
                    rr += 1;
                    t.owner = master;
                    t.state = TabletState::Normal;
                    assignments.push(RecoveryAssignment {
                        table: t.table,
                        range: t.range,
                        crashed: dead,
                        recovery_master: master,
                        from_segment: 0,
                        merge: false,
                    });
                }
                _ => {}
            }
        }
        // All lineage deps involving the dead server — whether it was the
        // source of one migration, the target of another, or both at once
        // — are now resolved by the recoveries planned above. Deps between
        // two still-alive servers stay.
        self.lineage
            .retain(|d| d.source != dead && d.target != dead);
        assignments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(1);
    const M1: MigrationId = MigrationId(1);
    const M2: MigrationId = MigrationId(2);
    const S1: ServerId = ServerId(1);
    const S2: ServerId = ServerId(2);
    const S3: ServerId = ServerId(3);

    fn coord() -> Coordinator {
        let mut c = Coordinator::new();
        for s in [S1, S2, S3] {
            c.register_server(s);
        }
        c.create_tablet(T, HashRange::full(), S1);
        c
    }

    #[test]
    fn map_and_lookup() {
        let c = coord();
        let t = c.tablet_for(T, 42).unwrap();
        assert_eq!(t.owner, S1);
        assert_eq!(c.tablet_map().len(), 1);
        assert!(c.tablet_for(TableId(9), 42).is_none());
    }

    #[test]
    fn split_then_migrate_transfers_ownership_immediately() {
        let mut c = coord();
        let mid = u64::MAX / 2 + 1;
        assert!(c.split_tablet(T, mid));
        assert_eq!(c.tablet_map().len(), 2);
        let upper = HashRange {
            start: mid,
            end: u64::MAX,
        };
        assert!(c.migration_starting(M1, T, upper, S1, S2, 17));
        let t = c.tablet_for(T, u64::MAX).unwrap();
        assert_eq!(t.owner, S2, "ownership moves at start (§3)");
        assert_eq!(t.state, TabletState::Migrating { source: S1 });
        assert_eq!(
            c.lineage_deps(),
            &[LineageDep {
                id: M1,
                source: S1,
                target: S2,
                table: T,
                range: upper,
                from_segment: 17,
            }]
        );
        // Lower half untouched.
        assert_eq!(c.tablet_for(T, 0).unwrap().owner, S1);

        assert!(c.migration_complete(M1, T, upper, S1, S2));
        assert!(c.lineage_deps().is_empty());
        assert_eq!(
            c.tablet_for(T, u64::MAX).unwrap().state,
            TabletState::Normal
        );
    }

    #[test]
    fn migration_requires_correct_source() {
        let mut c = coord();
        assert!(!c.migration_starting(M1, T, HashRange::full(), S2, S3, 0));
        assert!(c.lineage_deps().is_empty());
    }

    #[test]
    fn baseline_keeps_ownership_until_complete() {
        let mut c = coord();
        assert!(c.baseline_starting(T, HashRange::full(), S1, S2));
        assert_eq!(c.tablet_for(T, 5).unwrap().owner, S1);
        assert!(c.baseline_complete(T, HashRange::full(), S1, S2));
        assert_eq!(c.tablet_for(T, 5).unwrap().owner, S2);
    }

    #[test]
    fn crash_of_migration_target_reverts_to_source_with_lineage_tail() {
        let mut c = coord();
        assert!(c.migration_starting(M1, T, HashRange::full(), S1, S2, 23));
        let plan = c.handle_crash(S2);
        assert_eq!(plan.len(), 1);
        let a = &plan[0];
        assert_eq!(a.recovery_master, S1, "ownership reverts to source");
        assert_eq!(a.crashed, S2);
        assert_eq!(a.from_segment, 23, "only the target's log tail replays");
        assert!(a.merge);
        assert_eq!(c.tablet_for(T, 5).unwrap().owner, S1);
        assert!(c.lineage_deps().is_empty());
        assert!(!c.is_alive(S2));
    }

    #[test]
    fn crash_of_migration_source_recovers_onto_target() {
        let mut c = coord();
        assert!(c.migration_starting(M1, T, HashRange::full(), S1, S2, 23));
        let plan = c.handle_crash(S1);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].recovery_master, S2);
        assert_eq!(plan[0].crashed, S1);
        assert!(plan[0].merge, "target keeps what it already pulled");
        assert_eq!(c.tablet_for(T, 5).unwrap().owner, S2);
    }

    #[test]
    fn split_rejected_while_range_is_migrating() {
        let mut c = coord();
        let mid = u64::MAX / 2 + 1;
        assert!(c.split_tablet(T, mid));
        let upper = HashRange {
            start: mid,
            end: u64::MAX,
        };
        assert!(c.migration_starting(M1, T, upper, S1, S2, 17));
        // Splitting inside the migrating range would invalidate the
        // recorded lineage dep; it must be rejected.
        assert!(!c.split_tablet(T, mid + (u64::MAX - mid) / 2));
        assert_eq!(c.tablet_map().len(), 2, "no new tablet appeared");
        assert_eq!(c.lineage_deps().len(), 1, "dep survives intact");
        assert_eq!(c.lineage_deps()[0].range, upper);
        // The untouched lower half still splits fine.
        assert!(c.split_tablet(T, mid / 2));
        // And once the migration commits, the upper half splits again.
        assert!(c.migration_complete(M1, T, upper, S1, S2));
        assert!(c.split_tablet(T, mid + (u64::MAX - mid) / 2));
    }

    #[test]
    fn overlapping_migration_rejected_while_dep_covers_range() {
        let mut c = coord();
        let mid = u64::MAX / 2 + 1;
        assert!(c.split_tablet(T, mid));
        let upper = HashRange {
            start: mid,
            end: u64::MAX,
        };
        let lower = HashRange {
            start: 0,
            end: mid - 1,
        };
        assert!(c.migration_starting(M1, T, upper, S1, S2, 3));
        // Same range again (even to a different target, different id).
        assert!(!c.migration_starting(M2, T, upper, S1, S3, 4));
        // Reusing an id is also rejected.
        assert!(!c.migration_starting(M1, T, lower, S1, S3, 4));
        // A disjoint range with a fresh id is fine: concurrency is the
        // point, only overlap is illegal.
        assert!(c.migration_starting(M2, T, lower, S1, S3, 4));
        assert_eq!(c.lineage_deps().len(), 2);
    }

    #[test]
    fn crash_drops_every_dep_involving_dead_server() {
        // S2 is the target of M1 (from S1) and the source of M2 (to S3):
        // one crash must resolve both migrations and drop both deps,
        // while a third dep between live servers survives.
        let mut c = Coordinator::new();
        let s4 = ServerId(4);
        let s5 = ServerId(5);
        for s in [S1, S2, S3, s4, s5] {
            c.register_server(s);
        }
        let parts = HashRange::full().split(3);
        c.create_tablet(TableId(1), parts[0], S1);
        c.create_tablet(TableId(2), parts[1], S2);
        c.create_tablet(TableId(3), parts[2], s4);
        assert!(c.migration_starting(M1, TableId(1), parts[0], S1, S2, 11));
        assert!(c.migration_starting(M2, TableId(2), parts[1], S2, S3, 22));
        assert!(c.migration_starting(MigrationId(3), TableId(3), parts[2], s4, s5, 33));
        assert_eq!(c.lineage_deps().len(), 3);

        let plan = c.handle_crash(S2);
        assert_eq!(plan.len(), 2, "{plan:?}");
        // M1: target died → revert to source S1, replay S2's tail from 11.
        let a = plan
            .iter()
            .find(|a| a.table == TableId(1))
            .expect("plan for the migration S2 was target of");
        assert_eq!(a.recovery_master, S1);
        assert_eq!(a.crashed, S2);
        assert_eq!(a.from_segment, 11);
        assert!(a.merge);
        assert_eq!(c.tablet_for(TableId(1), parts[0].start).unwrap().owner, S1);
        // M2: source died → target S3 keeps ownership, merges S2's log.
        let b = plan
            .iter()
            .find(|a| a.table == TableId(2))
            .expect("plan for the migration S2 was source of");
        assert_eq!(b.recovery_master, S3);
        assert_eq!(b.crashed, S2);
        assert_eq!(b.from_segment, 0);
        assert!(b.merge);
        assert_eq!(c.tablet_for(TableId(2), parts[1].start).unwrap().owner, S3);
        // Both deps involving S2 are gone; the unrelated s4→s5 dep stays.
        assert_eq!(c.lineage_deps().len(), 1);
        assert_eq!(c.lineage_deps()[0].id, MigrationId(3));
    }

    #[test]
    fn crash_sprays_normal_tablets_across_survivors() {
        let mut c = Coordinator::new();
        for s in [S1, S2, S3] {
            c.register_server(s);
        }
        for (i, r) in HashRange::full().split(4).into_iter().enumerate() {
            c.create_tablet(TableId(i as u64), r, S1);
        }
        let plan = c.handle_crash(S1);
        assert_eq!(plan.len(), 4);
        let masters: Vec<ServerId> = plan.iter().map(|a| a.recovery_master).collect();
        assert!(
            masters.contains(&S2) && masters.contains(&S3),
            "{masters:?}"
        );
        for a in &plan {
            assert!(!a.merge);
            assert_eq!(a.from_segment, 0);
        }
    }
}
