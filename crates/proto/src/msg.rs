//! Request/response messages and their scheduling priorities.
//!
//! The priority ordering encodes §3.1/§4.1 of the paper exactly:
//! PriorityPulls outrank client traffic (they *are* client traffic the
//! target already promised to serve), client operations outrank replay,
//! and bulk background Pulls come last so migration never steals worker
//! time from foreground requests on the source.

use bytes::Bytes;
use rocksteady_common::ids::IndexId;
use rocksteady_common::{
    CausalCtx, HashRange, KeyHash, MigrationId, Nanos, RpcId, ScanCursor, ServerId, TableId,
};

use crate::record::{batch_wire_size, Record};
use crate::tablet::TabletDescriptor;

/// Fixed wire overhead per message (transport + RPC headers).
pub const MSG_HEADER_BYTES: u64 = 64;

/// Non-preemptive scheduling priority classes (§3.1), highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// PriorityPull service on the source: "they represent the target
    /// servicing a client request of its own" (§3.1.1).
    Urgent = 0,
    /// Normal client reads/writes/scans and the write-path replication
    /// they depend on.
    Foreground = 1,
    /// Replay of pulled records on the target: yields to client requests
    /// (§3.1.2).
    Replay = 2,
    /// Bulk Pull processing on the source and other background transfers:
    /// lowest priority in the system (§4.1).
    Background = 3,
}

/// Number of distinct priority classes.
pub const PRIORITY_LEVELS: usize = 4;

/// Error statuses returned in place of a normal response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The receiving server does not own the tablet (the client's map is
    /// stale; refetch from the coordinator). Also what a migration source
    /// answers once ownership has moved (§3).
    UnknownTablet,
    /// No object with that key.
    NotFound,
    /// The record is owned here but hasn't arrived yet; retry after the
    /// given virtual-time delay (§3: "tells the client to retry the
    /// operation after randomly waiting a few tens of microseconds").
    Retry {
        /// Suggested client back-off before retrying.
        after: Nanos,
    },
    /// The request cannot be served because a migration of this range is
    /// already in progress.
    MigrationInProgress,
}

/// Phase levers for the baseline (pre-Rocksteady) migration, used by the
/// Figure 5 bottleneck breakdown (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BaselineOpts {
    /// Target skips re-replicating received data ("Skip Re-replication").
    pub skip_rereplication: bool,
    /// Target skips replaying into its log/hash table ("Skip Replay on
    /// Target"); implies no re-replication.
    pub skip_replay: bool,
    /// Source does all processing but never transmits ("Skip Tx to
    /// Target").
    pub skip_tx: bool,
    /// Source only identifies migrating objects, skipping the staging
    /// copy and everything after ("Skip Copy for Tx").
    pub skip_copy: bool,
}

/// A raw replicated-segment image returned by a backup during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentImage {
    /// Segment id in the crashed master's log.
    pub id: u64,
    /// Serialized entry bytes (a prefix of the original segment).
    pub data: Bytes,
}

/// All RPC requests in the system.
#[derive(Debug, Clone)]
pub enum Request {
    // ------------------------------------------------- client data path --
    /// Read one object by key.
    Read {
        /// Target table.
        table: TableId,
        /// Primary key.
        key: Bytes,
        /// Client-computed key hash (used for routing and lookup).
        key_hash: KeyHash,
    },
    /// Write (insert or overwrite) one object.
    Write {
        /// Target table.
        table: TableId,
        /// Primary key.
        key: Bytes,
        /// Client-computed key hash.
        key_hash: KeyHash,
        /// New value.
        value: Bytes,
    },
    /// Delete one object.
    Delete {
        /// Target table.
        table: TableId,
        /// Primary key.
        key: Bytes,
        /// Client-computed key hash.
        key_hash: KeyHash,
    },
    /// Read several keys living on one server with a single RPC (§2.1).
    MultiRead {
        /// Target table.
        table: TableId,
        /// Keys and their hashes.
        keys: Vec<(Bytes, KeyHash)>,
    },
    /// Read several objects by key hash (the second half of an index
    /// scan, Figure 2).
    MultiReadHash {
        /// Target table.
        table: TableId,
        /// Primary-key hashes to fetch.
        hashes: Vec<KeyHash>,
    },
    /// Range scan over a secondary index; returns primary-key hashes.
    IndexScan {
        /// Indexed table.
        table: TableId,
        /// Which secondary index.
        index: IndexId,
        /// Inclusive lower bound on the secondary key.
        begin: Bytes,
        /// Inclusive upper bound on the secondary key.
        end: Bytes,
        /// Maximum number of hashes to return.
        limit: u32,
    },
    /// Insert a secondary-index entry (sent by the tablet's master to the
    /// indexlet's owner on write).
    IndexInsert {
        /// Indexed table.
        table: TableId,
        /// Which secondary index.
        index: IndexId,
        /// Secondary key.
        sec_key: Bytes,
        /// Primary-key hash the entry points at.
        primary_hash: KeyHash,
    },

    // ---------------------------------------------- Rocksteady migration --
    /// Client → target: start a Rocksteady migration of `range` from
    /// `source` to the receiving server (§3).
    MigrateTablet {
        /// Unique id for this migration run.
        id: MigrationId,
        /// Table being migrated.
        table: TableId,
        /// Tablet hash range.
        range: HashRange,
        /// Server currently holding the records.
        source: ServerId,
    },
    /// Target → source: mark the tablet migrating (immutable at the
    /// source, clients turned away) and return the version ceiling the
    /// target must start its own writes above.
    PrepareMigration {
        /// Table being migrated.
        table: TableId,
        /// Tablet hash range.
        range: HashRange,
        /// The new owner.
        target: ServerId,
    },
    /// Target → source: bulk pull of the next batch from one hash-space
    /// partition (§3.1.1). Returns up to ~`budget_bytes` of records.
    Pull {
        /// Table being migrated.
        table: TableId,
        /// This pull's partition of the source hash space.
        range: HashRange,
        /// Resume point within the partition.
        cursor: ScanCursor,
        /// Response size budget (the paper uses 20 KB).
        budget_bytes: u32,
    },
    /// Target → source: on-demand fetch of specific keys that clients are
    /// waiting for (§3.3). Batched and de-duplicated by the target.
    PriorityPull {
        /// Table being migrated.
        table: TableId,
        /// Key hashes to fetch.
        hashes: Vec<KeyHash>,
    },

    // ------------------------------------------------ baseline migration --
    /// Control → source: run RAMCloud's pre-existing source-driven
    /// migration (§2.3), with optional phase levers for Figure 5.
    MigrateTabletBaseline {
        /// Table being migrated.
        table: TableId,
        /// Tablet hash range.
        range: HashRange,
        /// Server to copy the records to.
        target: ServerId,
        /// Phase levers.
        opts: BaselineOpts,
    },
    /// Source → target: one batch of the baseline migration's log-scan
    /// output.
    PushRecords {
        /// Table being migrated.
        table: TableId,
        /// Records in this batch.
        records: Vec<Record>,
        /// Whether the target should replay into its log/hash table.
        replay: bool,
        /// Whether the target should synchronously re-replicate.
        rereplicate: bool,
    },

    // ------------------------------------------------------- replication --
    /// Master → backup: replicate an append to an open segment (the
    /// write path's synchronous durability, §2).
    ReplicateAppend {
        /// Master whose log this is.
        owner: ServerId,
        /// Segment id in the owner's log.
        segment: u64,
        /// Byte offset of this chunk within the segment.
        offset: u32,
        /// The appended bytes (serialized log entries).
        data: Bytes,
    },
    /// Master → backup: the segment is complete/closed.
    ReplicateClose {
        /// Master whose log this is.
        owner: ServerId,
        /// Segment id.
        segment: u64,
    },
    /// Recovery master → backup: fetch replicated segment images of
    /// `owner`'s log with id ≥ `min_segment`.
    FetchSegments {
        /// The (crashed or lineage-target) master whose log is wanted.
        owner: ServerId,
        /// Skip segments below this id (lineage tail optimization, §3.4).
        min_segment: u64,
    },

    // ------------------------------------------------------- coordinator --
    /// Any → coordinator: fetch the tablet map.
    GetTabletMap,
    /// Target → coordinator: a Rocksteady migration is starting; transfer
    /// ownership to `target` NOW and record the lineage dependency of
    /// `source` on `target`'s log from `lineage_from_segment` (§3.4).
    MigrationStarting {
        /// Unique id for this migration run.
        id: MigrationId,
        /// Table being migrated.
        table: TableId,
        /// Tablet hash range.
        range: HashRange,
        /// Old owner.
        source: ServerId,
        /// New owner (the caller).
        target: ServerId,
        /// First segment id of the target's log tail the source depends
        /// on.
        lineage_from_segment: u64,
    },
    /// Target → coordinator: side logs are committed and lazily
    /// re-replicated; drop the lineage dependency (§3.4).
    MigrationComplete {
        /// Unique id for this migration run.
        id: MigrationId,
        /// Table that finished migrating.
        table: TableId,
        /// Tablet hash range.
        range: HashRange,
        /// Old owner.
        source: ServerId,
        /// New owner.
        target: ServerId,
    },
    /// Source → coordinator (baseline only): transfer ownership at the
    /// *end* of a baseline migration (§2.3).
    BaselineOwnershipTransfer {
        /// Table that finished migrating.
        table: TableId,
        /// Tablet hash range.
        range: HashRange,
        /// Old owner (the caller).
        source: ServerId,
        /// New owner.
        target: ServerId,
    },
    /// Any → coordinator: report a crashed server.
    ReportCrash {
        /// The server that died.
        server: ServerId,
    },
    /// Coordinator → every server: membership update — `server` is dead.
    /// Receivers abandon or fail over anything outstanding to it
    /// (replication waits, pulls, sync PriorityPulls).
    NotifyServerDown {
        /// The dead server.
        server: ServerId,
    },

    // ----------------------------------------------------------- recovery --
    /// Coordinator → recovery master: reconstruct `range` of `table`
    /// (previously owned by `crashed`) from backup segment images, then
    /// take ownership. With `merge = true` the recovery master already
    /// holds a copy of the range and merges the fetched log in by
    /// version (the lineage cases of §3.4); `from_segment` restricts the
    /// fetch to the depended-upon log tail.
    RecoverTablet {
        /// Table to recover.
        table: TableId,
        /// Hash range to recover.
        range: HashRange,
        /// The master whose replicated log must be replayed.
        crashed: ServerId,
        /// Backups holding that log's segments.
        backups: Vec<ServerId>,
        /// Skip segments below this id (lineage tail, §3.4).
        from_segment: u64,
        /// Whether the recovery master keeps and merges into its
        /// existing copy of the range.
        merge: bool,
    },
}

/// All RPC responses.
#[derive(Debug, Clone)]
pub enum Response {
    /// Generic success acknowledgment.
    Ok,
    /// The request failed with a status.
    Err(Status),
    /// Successful read.
    ReadOk {
        /// The value.
        value: Bytes,
        /// Its version.
        version: u64,
    },
    /// Successful write.
    WriteOk {
        /// Version assigned to the new value.
        version: u64,
    },
    /// Successful delete.
    DeleteOk {
        /// Whether the key existed.
        existed: bool,
    },
    /// Per-key results of a `MultiRead` (None = not found).
    MultiReadOk {
        /// Values in request order.
        values: Vec<Option<Bytes>>,
    },
    /// Per-hash results of a `MultiReadHash` (None = not found).
    MultiReadHashOk {
        /// Values in request order.
        values: Vec<Option<Bytes>>,
    },
    /// Primary-key hashes matching an index scan.
    IndexScanOk {
        /// Matching hashes in secondary-key order.
        hashes: Vec<KeyHash>,
        /// True if `limit` cut the scan short.
        truncated: bool,
    },
    /// Migration accepted and started by the target.
    MigrateTabletOk,
    /// Source is prepared: tablet marked migrating.
    PrepareMigrationOk {
        /// Versions the target must allocate above (so writes during
        /// migration always supersede migrated values).
        version_ceiling: u64,
    },
    /// A batch of pulled records plus the partition resume cursor
    /// (`None` = partition exhausted).
    PullOk {
        /// The records.
        records: Vec<Record>,
        /// Resume point, if more remain.
        next: Option<ScanCursor>,
    },
    /// Records fetched on demand. Hashes with no live object are simply
    /// absent (deleted keys).
    PriorityPullOk {
        /// The records.
        records: Vec<Record>,
    },
    /// Baseline batch accepted.
    PushRecordsOk,
    /// Replication accepted.
    ReplicateOk,
    /// Segment images for recovery.
    SegmentsOk {
        /// Replicated segment images.
        segments: Vec<SegmentImage>,
    },
    /// The tablet map.
    TabletMapOk {
        /// All tablet descriptors.
        tablets: Vec<TabletDescriptor>,
    },
    /// Recovery finished; the recovery master now owns the range.
    RecoverTabletOk {
        /// Entries replayed during recovery.
        replayed: u64,
    },
}

impl Request {
    /// Scheduling priority class for this request (§3.1, §4.1).
    ///
    /// Replication traffic is urgent because it sits on the critical
    /// path of *another server's* foreground write — and because
    /// replication service must never be starved by local client load
    /// (all worker cores blocked on their own replication acks would
    /// deadlock the ring otherwise).
    pub fn priority(&self) -> Priority {
        match self {
            Request::PriorityPull { .. }
            | Request::ReplicateAppend { .. }
            | Request::ReplicateClose { .. } => Priority::Urgent,
            Request::Pull { .. } | Request::PushRecords { .. } => Priority::Background,
            _ => Priority::Foreground,
        }
    }

    /// Short static name, used as the trace-span label for this request.
    pub fn name(&self) -> &'static str {
        match self {
            Request::Read { .. } => "read",
            Request::Write { .. } => "write",
            Request::Delete { .. } => "delete",
            Request::MultiRead { .. } => "multiread",
            Request::MultiReadHash { .. } => "multiread-hash",
            Request::IndexScan { .. } => "index-scan",
            Request::IndexInsert { .. } => "index-insert",
            Request::MigrateTablet { .. } => "migrate-tablet",
            Request::PrepareMigration { .. } => "prepare-migration",
            Request::Pull { .. } => "pull",
            Request::PriorityPull { .. } => "priority-pull",
            Request::MigrateTabletBaseline { .. } => "migrate-baseline",
            Request::PushRecords { .. } => "push-records",
            Request::ReplicateAppend { .. } => "replicate-append",
            Request::ReplicateClose { .. } => "replicate-close",
            Request::FetchSegments { .. } => "fetch-segments",
            Request::GetTabletMap => "get-tablet-map",
            Request::MigrationStarting { .. } => "migration-starting",
            Request::MigrationComplete { .. } => "migration-complete",
            Request::BaselineOwnershipTransfer { .. } => "baseline-transfer",
            Request::ReportCrash { .. } => "report-crash",
            Request::NotifyServerDown { .. } => "notify-server-down",
            Request::RecoverTablet { .. } => "recover-tablet",
        }
    }

    /// Payload bytes this request adds on top of the message header.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            Request::Read { key, .. } | Request::Delete { key, .. } => key.len() as u64 + 16,
            Request::Write { key, value, .. } => key.len() as u64 + value.len() as u64 + 16,
            Request::MultiRead { keys, .. } => keys.iter().map(|(k, _)| k.len() as u64 + 12).sum(),
            Request::MultiReadHash { hashes, .. } => 8 * hashes.len() as u64,
            Request::IndexScan { begin, end, .. } => begin.len() as u64 + end.len() as u64 + 16,
            Request::IndexInsert { sec_key, .. } => sec_key.len() as u64 + 16,
            Request::PriorityPull { hashes, .. } => 8 * hashes.len() as u64,
            Request::PushRecords { records, .. } => batch_wire_size(records),
            Request::ReplicateAppend { data, .. } => data.len() as u64 + 16,
            Request::RecoverTablet { backups, .. } => 40 + 4 * backups.len() as u64,
            // Fixed-size control messages.
            _ => 32,
        }
    }

    /// Total bytes on the wire.
    pub fn wire_size(&self) -> u64 {
        MSG_HEADER_BYTES + self.payload_bytes()
    }
}

impl Response {
    /// Payload bytes this response adds on top of the message header.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            Response::ReadOk { value, .. } => value.len() as u64 + 8,
            Response::MultiReadOk { values } | Response::MultiReadHashOk { values } => values
                .iter()
                .map(|v| v.as_ref().map_or(1, |b| b.len() as u64 + 9))
                .sum(),
            Response::IndexScanOk { hashes, .. } => 8 * hashes.len() as u64 + 1,
            Response::PullOk { records, .. } => batch_wire_size(records) + 16,
            Response::PriorityPullOk { records } => batch_wire_size(records),
            Response::SegmentsOk { segments } => {
                segments.iter().map(|s| s.data.len() as u64 + 12).sum()
            }
            Response::TabletMapOk { tablets } => 40 * tablets.len() as u64,
            _ => 16,
        }
    }

    /// Total bytes on the wire.
    pub fn wire_size(&self) -> u64 {
        MSG_HEADER_BYTES + self.payload_bytes()
    }
}

/// Either half of an RPC exchange.
#[derive(Debug, Clone)]
pub enum Body {
    /// A request.
    Req(Request),
    /// A response.
    Resp(Response),
}

/// One message on the wire: an RPC id plus request or response.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Correlates the response with its request. Unique per sender.
    pub rpc: RpcId,
    /// The message body.
    pub body: Body,
    /// Virtual time the sender's NIC accepted this message; stamped by
    /// the simulation kernel (0 until sent). Receivers subtract it from
    /// the arrival time to measure the network segment of an RPC.
    pub sent_at: Nanos,
    /// Virtual time the message finished serializing onto the wire
    /// (stamped by the kernel; 0 until sent). `departed_at - sent_at`
    /// is the NIC serialization + queueing delay, which the profiler's
    /// critical-path analysis separates from propagation.
    pub departed_at: Nanos,
    /// Dapper-style causal context: the journey this message belongs to.
    /// Rides every envelope unconditionally (requests carry the issuing
    /// operation's context, responses echo their request's) but models
    /// header slack — it contributes zero wire bytes, so carrying it can
    /// never change the event schedule. [`CausalCtx::NONE`] for
    /// control-plane and infrastructure traffic.
    pub ctx: CausalCtx,
}

impl Envelope {
    /// Wraps a request.
    pub fn req(rpc: RpcId, request: Request) -> Self {
        Envelope {
            rpc,
            body: Body::Req(request),
            sent_at: 0,
            departed_at: 0,
            ctx: CausalCtx::NONE,
        }
    }

    /// Wraps a response.
    pub fn resp(rpc: RpcId, response: Response) -> Self {
        Envelope {
            rpc,
            body: Body::Resp(response),
            sent_at: 0,
            departed_at: 0,
            ctx: CausalCtx::NONE,
        }
    }

    /// Attaches a causal context (builder-style, for the data-path call
    /// sites that have one; everything else defaults to
    /// [`CausalCtx::NONE`]).
    #[must_use]
    pub fn with_ctx(mut self, ctx: CausalCtx) -> Self {
        self.ctx = ctx;
        self
    }

    /// Total bytes on the wire.
    pub fn wire_size(&self) -> u64 {
        match &self.body {
            Body::Req(r) => r.wire_size(),
            Body::Resp(r) => r.wire_size(),
        }
    }
}

impl rocksteady_common::WireSized for Envelope {
    fn wire_size(&self) -> u64 {
        Envelope::wire_size(self)
    }
}

impl rocksteady_common::SimMessage for Envelope {
    fn stamp_sent(&mut self, now: Nanos) {
        self.sent_at = now;
    }

    fn stamp_departed(&mut self, at: Nanos) {
        self.departed_at = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_match_paper_ordering() {
        let pp = Request::PriorityPull {
            table: TableId(1),
            hashes: vec![1],
        };
        let read = Request::Read {
            table: TableId(1),
            key: Bytes::from_static(b"k"),
            key_hash: 1,
        };
        let pull = Request::Pull {
            table: TableId(1),
            range: HashRange::full(),
            cursor: ScanCursor::default(),
            budget_bytes: 20_000,
        };
        assert!(pp.priority() < read.priority());
        assert!(read.priority() < pull.priority());
        assert_eq!(pp.priority(), Priority::Urgent);
        assert_eq!(pull.priority(), Priority::Background);
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = Request::Write {
            table: TableId(1),
            key: Bytes::from_static(b"k"),
            key_hash: 1,
            value: Bytes::from(vec![0u8; 10]),
        };
        let big = Request::Write {
            table: TableId(1),
            key: Bytes::from_static(b"k"),
            key_hash: 1,
            value: Bytes::from(vec![0u8; 10_000]),
        };
        assert_eq!(big.wire_size() - small.wire_size(), 9_990);
        assert!(small.wire_size() > MSG_HEADER_BYTES);
    }

    #[test]
    fn pull_response_counts_records() {
        let rec = Record {
            table: TableId(1),
            key_hash: 5,
            version: 1,
            key: Bytes::from_static(b"0123456789"),
            value: Bytes::from(vec![0u8; 90]),
            tombstone: false,
        };
        let resp = Response::PullOk {
            records: vec![rec.clone(); 10],
            next: None,
        };
        assert_eq!(
            resp.wire_size(),
            MSG_HEADER_BYTES + 10 * rec.wire_size() + 16
        );
    }

    #[test]
    fn envelope_wraps_and_sizes() {
        let env = Envelope::req(RpcId(9), Request::GetTabletMap);
        assert_eq!(env.rpc, RpcId(9));
        assert_eq!(env.wire_size(), MSG_HEADER_BYTES + 32);
        let env = Envelope::resp(RpcId(9), Response::Ok);
        assert_eq!(env.wire_size(), MSG_HEADER_BYTES + 16);
    }

    #[test]
    fn causal_ctx_rides_free_of_wire_bytes() {
        use rocksteady_common::TraceId;
        let bare = Envelope::req(RpcId(1), Request::GetTabletMap);
        let ctxed = Envelope::req(RpcId(1), Request::GetTabletMap).with_ctx(CausalCtx {
            trace_id: TraceId::mint(3, 42),
            parent_span: 0,
            hop: 1,
        });
        assert_eq!(bare.wire_size(), ctxed.wire_size());
        assert_eq!(bare.ctx, CausalCtx::NONE);
        assert!(ctxed.ctx.trace_id.is_some());
    }
}
