//! Tablet descriptors: the unit of ownership and migration.
//!
//! A table's key-hash space is divided into tablets, each owned by one
//! master (§2, Figure 2). The coordinator holds the authoritative map;
//! clients cache it and refresh after a `Status::UnknownTablet` response
//! (§3). During a Rocksteady migration the *target* owns the tablet from
//! the very first moment (§3), while the source only remembers "this
//! range is migrating away" so it can turn clients away.

use rocksteady_common::{HashRange, ServerId, TableId};

/// Ownership state of a tablet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TabletState {
    /// Normal service by `owner`.
    Normal,
    /// Rocksteady migration in flight: `owner` is already the target
    /// (ownership transfers at migration start, §3); records still
    /// physically live (partly) on `source`.
    Migrating {
        /// Server the data is being pulled from.
        source: ServerId,
    },
    /// Baseline (pre-Rocksteady) migration in flight: `owner` is still
    /// the source and the named target only takes over at the end (§2.3).
    MigratingToTarget {
        /// Server the data is being copied to.
        target: ServerId,
    },
}

/// One entry in the coordinator's tablet map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TabletDescriptor {
    /// Table this tablet belongs to.
    pub table: TableId,
    /// Key-hash range the tablet covers (inclusive).
    pub range: HashRange,
    /// Current owner — the server clients should send requests to.
    pub owner: ServerId,
    /// Ownership state.
    pub state: TabletState,
}

impl TabletDescriptor {
    /// Whether this tablet serves the given key hash of the given table.
    pub fn covers(&self, table: TableId, hash: u64) -> bool {
        self.table == table && self.range.contains(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_checks_table_and_range() {
        let d = TabletDescriptor {
            table: TableId(3),
            range: HashRange {
                start: 100,
                end: 200,
            },
            owner: ServerId(1),
            state: TabletState::Normal,
        };
        assert!(d.covers(TableId(3), 100));
        assert!(d.covers(TableId(3), 200));
        assert!(!d.covers(TableId(3), 99));
        assert!(!d.covers(TableId(3), 201));
        assert!(!d.covers(TableId(4), 150));
    }
}
