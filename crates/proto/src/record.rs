//! The wire representation of one object crossing the network.
//!
//! Pull and PriorityPull responses, replication payloads, and recovery
//! transfers all move records in this form. It mirrors the log-entry
//! format ([`rocksteady_logstore::entry`]) but is independent of it: the
//! wire format carries the key hash and version so the receiver can
//! replay without rehashing, exactly as RAMCloud's migration does.

use bytes::Bytes;
use rocksteady_common::{KeyHash, TableId};

/// One object (or deletion marker) in flight between servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owning table.
    pub table: TableId,
    /// Primary-key hash (carried, not recomputed).
    pub key_hash: KeyHash,
    /// Object version at the source.
    pub version: u64,
    /// Primary key bytes.
    pub key: Bytes,
    /// Value bytes (empty for tombstones).
    pub value: Bytes,
    /// True when this record marks a deletion.
    pub tombstone: bool,
}

/// Fixed wire overhead per record beyond key and value bytes
/// (table id, hash, version, lengths, flags).
pub const RECORD_HEADER_BYTES: u64 = 29;

impl Record {
    /// Bytes this record occupies on the wire.
    pub fn wire_size(&self) -> u64 {
        RECORD_HEADER_BYTES + self.key.len() as u64 + self.value.len() as u64
    }
}

/// Total wire size of a batch of records.
pub fn batch_wire_size(records: &[Record]) -> u64 {
    records.iter().map(Record::wire_size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(key: &[u8], value: &[u8]) -> Record {
        Record {
            table: TableId(1),
            key_hash: 42,
            version: 7,
            key: Bytes::copy_from_slice(key),
            value: Bytes::copy_from_slice(value),
            tombstone: false,
        }
    }

    #[test]
    fn wire_size_counts_payload() {
        let r = sample(b"0123456789", b"x".repeat(90).as_slice());
        assert_eq!(r.wire_size(), RECORD_HEADER_BYTES + 100);
    }

    #[test]
    fn batch_size_sums() {
        let batch = vec![sample(b"a", b"bb"), sample(b"ccc", b"")];
        assert_eq!(batch_wire_size(&batch), 2 * RECORD_HEADER_BYTES + 3 + 3);
        assert_eq!(batch_wire_size(&[]), 0);
    }
}
