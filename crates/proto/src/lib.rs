//! RPC message definitions for the simulated RAMCloud cluster.
//!
//! Everything that crosses the (simulated) network is defined here: the
//! client data path (reads, writes, multi-ops, index scans — §2), the
//! migration path (`MigrateTablet`, `PrepareMigration`, `Pull`,
//! `PriorityPull` — §3), segment replication to backups (§2, §3.4), and
//! the coordinator control plane (tablet map, lineage dependencies, crash
//! reports — §3.4).
//!
//! Messages carry real payload bytes ([`bytes::Bytes`] buffers — pull
//! responses really contain the records being migrated) and know their
//! own [`wire size`](Envelope::wire_size) so the simulator's NIC model
//! can charge transmission time.

pub mod msg;
pub mod record;
pub mod tablet;

pub use msg::{Body, Envelope, Priority, Request, Response, Status, MSG_HEADER_BYTES};
pub use record::Record;
pub use tablet::{TabletDescriptor, TabletState};
