//! Client-side measurement: latency series and counters.

use std::cell::RefCell;
use std::rc::Rc;

use rocksteady_common::{Nanos, TimeSeries, SECOND};

/// Per-client measurements, shared with the harness.
#[derive(Debug)]
pub struct ClientStats {
    /// Client-observed read latencies by completion time.
    pub read_latency: TimeSeries,
    /// Client-observed write latencies by completion time.
    pub write_latency: TimeSeries,
    /// Objects successfully read/written per interval (multigets count
    /// each object, matching the paper's "objects read per second").
    pub objects: TimeSeries,
    /// Operations that ended in `NotFound`.
    pub not_found: u64,
    /// `Retry` responses received (reads racing migration, §3.3).
    pub retries: u64,
    /// Map refreshes triggered by `UnknownTablet`.
    pub map_refreshes: u64,
    /// RPCs that timed out and were re-issued.
    pub timeouts: u64,
    /// Durably acknowledged writes as `(key rank, version)` — the
    /// ground truth crash tests check against: an acked write must
    /// survive any subsequent failure (§3.4).
    pub confirmed_writes: Vec<(u64, u64)>,
}

impl ClientStats {
    /// Creates stats with the given timeline interval (1 s of virtual
    /// time by default in the harness).
    pub fn new(interval: Nanos) -> Self {
        ClientStats {
            read_latency: TimeSeries::new(interval),
            write_latency: TimeSeries::new(interval),
            objects: TimeSeries::new(interval),
            not_found: 0,
            retries: 0,
            map_refreshes: 0,
            timeouts: 0,
            confirmed_writes: Vec::new(),
        }
    }
}

impl Default for ClientStats {
    fn default() -> Self {
        Self::new(SECOND)
    }
}

/// Shared handle to a client's stats.
pub type ClientStatsHandle = Rc<RefCell<ClientStats>>;

/// Creates a fresh shared stats handle with the given series interval.
pub fn client_stats(interval: Nanos) -> ClientStatsHandle {
    Rc::new(RefCell::new(ClientStats::new(interval)))
}
