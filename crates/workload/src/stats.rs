//! Client-side measurement: latency series and counters.
//!
//! Latencies are recorded twice on purpose: into per-interval
//! [`TimeSeries`] buckets (the timeline figures need per-interval
//! percentiles) and into cumulative registry histograms under the
//! `client_*` families (the SLO monitor windows those with
//! `delta_since`, and the exporter publishes them). Event counters are
//! `rocksteady-metrics` counters so one registry snapshot covers
//! servers and clients alike.

use std::cell::RefCell;
use std::rc::Rc;

use rocksteady_common::{Nanos, TimeSeries, SECOND};
use rocksteady_metrics::{Counter, Histo, Registry};

/// Counter family for `Retry` responses received by clients. The
/// flight-recorder watchdog scrapes this family by name, so it lives in
/// a shared const rather than a string literal.
pub const CLIENT_RETRIES_FAMILY: &str = "client_retries";

/// Per-client measurements, shared with the harness.
#[derive(Debug)]
pub struct ClientStats {
    /// Client-observed read latencies by completion time.
    pub read_latency: TimeSeries,
    /// Client-observed write latencies by completion time.
    pub write_latency: TimeSeries,
    /// Objects successfully read/written per interval (multigets count
    /// each object, matching the paper's "objects read per second").
    pub objects: TimeSeries,
    /// Cumulative read-latency histogram (family `client_read_latency_ns`).
    pub read_hist: Histo,
    /// Cumulative write-latency histogram (family `client_write_latency_ns`).
    pub write_hist: Histo,
    /// Operations that ended in `NotFound`.
    pub not_found: Counter,
    /// `Retry` responses received (reads racing migration, §3.3).
    pub retries: Counter,
    /// Read RPC *attempts* issued (first issues plus every retry and
    /// re-route). Latency histograms count each operation exactly once,
    /// first-issue → final-success; this counter is where the extra
    /// attempts show up, so `read_attempts − reads` = retry volume.
    pub read_attempts: Counter,
    /// Map refreshes triggered by `UnknownTablet`.
    pub map_refreshes: Counter,
    /// RPCs that timed out and were re-issued.
    pub timeouts: Counter,
    /// Durably acknowledged writes as `(key rank, version)` — the
    /// ground truth crash tests check against: an acked write must
    /// survive any subsequent failure (§3.4).
    pub confirmed_writes: Vec<(u64, u64)>,
}

impl ClientStats {
    /// Creates detached stats (not exported) with the given timeline
    /// interval (1 s of virtual time by default in the harness).
    pub fn new(interval: Nanos) -> Self {
        ClientStats {
            read_latency: TimeSeries::new(interval),
            write_latency: TimeSeries::new(interval),
            objects: TimeSeries::new(interval),
            read_hist: Histo::default(),
            write_hist: Histo::default(),
            not_found: Counter::default(),
            retries: Counter::default(),
            read_attempts: Counter::default(),
            map_refreshes: Counter::default(),
            timeouts: Counter::default(),
            confirmed_writes: Vec::new(),
        }
    }

    /// Creates stats whose histograms and counters are registered in
    /// `reg` under the `client_*` families with a `client="<idx>"`
    /// label.
    pub fn register(reg: &Registry, idx: usize, interval: Nanos) -> Self {
        let l = [("client", idx.to_string())];
        ClientStats {
            read_latency: TimeSeries::new(interval),
            write_latency: TimeSeries::new(interval),
            objects: TimeSeries::new(interval),
            read_hist: reg.histogram("client_read_latency_ns", "client-observed read latency", &l),
            write_hist: reg.histogram(
                "client_write_latency_ns",
                "client-observed write latency",
                &l,
            ),
            not_found: reg.counter("client_not_found", "operations that ended in NotFound", &l),
            retries: reg.counter(CLIENT_RETRIES_FAMILY, "Retry responses received", &l),
            read_attempts: reg.counter(
                "client_read_attempts_total",
                "read RPC attempts issued (first issues + retries)",
                &l,
            ),
            map_refreshes: reg.counter(
                "client_map_refreshes",
                "map refreshes triggered by UnknownTablet",
                &l,
            ),
            timeouts: reg.counter(
                "client_timeouts",
                "RPCs that timed out and were re-issued",
                &l,
            ),
            confirmed_writes: Vec::new(),
        }
    }

    /// Records one completed read: timeline bucket + cumulative histogram.
    pub fn record_read(&mut self, now: Nanos, latency: Nanos) {
        self.read_latency.record(now, latency);
        self.read_hist.record(latency);
    }

    /// Records one completed write: timeline bucket + cumulative histogram.
    pub fn record_write(&mut self, now: Nanos, latency: Nanos) {
        self.write_latency.record(now, latency);
        self.write_hist.record(latency);
    }
}

impl Default for ClientStats {
    fn default() -> Self {
        Self::new(SECOND)
    }
}

/// Shared handle to a client's stats.
pub type ClientStatsHandle = Rc<RefCell<ClientStats>>;

/// Creates a fresh detached stats handle with the given series interval.
pub fn client_stats(interval: Nanos) -> ClientStatsHandle {
    Rc::new(RefCell::new(ClientStats::new(interval)))
}

/// Creates a stats handle registered in `reg` as client `idx`.
pub fn registered_client_stats(reg: &Registry, idx: usize, interval: Nanos) -> ClientStatsHandle {
    Rc::new(RefCell::new(ClientStats::register(reg, idx, interval)))
}
