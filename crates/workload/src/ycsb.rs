//! The YCSB client (§4.1): nearly-open Zipfian read/write load.
//!
//! Figures 9–14 drive the cluster with YCSB-B — 95% reads, 5% writes,
//! keys Zipfian with θ = 0.99 — at an offered load high enough to hold
//! the source at ~80% dispatch utilization. The client here is *nearly
//! open*: arrivals are Poisson at the configured rate and queue up when
//! the cluster falls behind (bounded by `max_outstanding` in flight), so
//! backlogged demand reappears as the post-migration throughput spike the
//! paper shows in Figure 9.

use bytes::Bytes;
use rocksteady_audit::{AuditKind, AuditSink};
use rocksteady_common::rng::Prng;
use rocksteady_common::zipf::{KeyDist, KeySampler};
use rocksteady_common::FxHashMap;
use rocksteady_common::{key_hash, CausalCtx, KeyHash, Nanos, RpcId, TableId, TraceId};
use rocksteady_proto::{Body, Envelope, Request, Response, Status};
use rocksteady_simnet::{Actor, Ctx, Directory, Event};
use rocksteady_trace::Tracer;

use crate::core::{primary_key, ClientCore};
use crate::shape::{hash_bucket, LoadShape};
use crate::stats::ClientStatsHandle;

const TOK_ARRIVAL: u64 = 1;
const TOK_RETRY: u64 = 2;
const TOK_TIMEOUT: u64 = 3;

/// Configuration for one YCSB client actor.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Cluster wiring.
    pub dir: Directory,
    /// Table to access.
    pub table: TableId,
    /// Number of keys in the table.
    pub num_keys: u64,
    /// Primary-key length in bytes (paper: 30).
    pub key_len: usize,
    /// Value length in bytes (paper: 100).
    pub value_len: usize,
    /// Offered load from this client, operations per second.
    pub ops_per_sec: f64,
    /// Fraction of reads (YCSB-B: 0.95).
    pub read_fraction: f64,
    /// Key popularity distribution (YCSB-B: Zipfian θ = 0.99).
    pub dist: KeyDist,
    /// Scramble popularity ranks across the key space (YCSB default).
    pub scrambled: bool,
    /// Maximum operations in flight before arrivals backlog.
    pub max_outstanding: usize,
    /// Re-issue an op if no response within this long (crash handling).
    pub rpc_timeout: Nanos,
    /// Stop issuing new arrivals at this virtual time (`u64::MAX` =
    /// never).
    pub stop_at: Nanos,
    /// RNG seed (derive per client).
    pub seed: u64,
    /// Spatial load shape: where in the hash space arrivals concentrate
    /// over time ([`LoadShape::Steady`] = pure rank sampling).
    pub shape: LoadShape,
}

impl YcsbConfig {
    /// YCSB-B against `table` with `num_keys` keys at `ops_per_sec`.
    pub fn ycsb_b(dir: Directory, table: TableId, num_keys: u64, ops_per_sec: f64) -> Self {
        YcsbConfig {
            dir,
            table,
            num_keys,
            key_len: 30,
            value_len: 100,
            ops_per_sec,
            read_fraction: 0.95,
            dist: KeyDist::Zipfian { theta: 0.99 },
            scrambled: true,
            max_outstanding: 64,
            rpc_timeout: 10 * rocksteady_common::MILLISECOND,
            stop_at: Nanos::MAX,
            seed: 1,
            shape: LoadShape::Steady,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read,
    Write,
}

#[derive(Debug)]
struct Op {
    kind: OpKind,
    rank: u64,
    started: Nanos,
    issued: Nanos,
    rpc: Option<RpcId>,
    /// Retry attempts so far (drives exponential back-off).
    retries: u32,
    /// RPC attempts issued for this operation (first issue = 1). Also
    /// the `hop` stamped into the attempt's [`CausalCtx`], so journey
    /// reconstruction can order attempts without trusting timestamps.
    attempts: u32,
}

/// The YCSB client actor.
pub struct YcsbClient {
    cfg: YcsbConfig,
    core: ClientCore,
    stats: ClientStatsHandle,
    sampler: KeySampler,
    rng: Prng,
    ops: FxHashMap<u64, Op>,
    rpc_to_op: FxHashMap<RpcId, u64>,
    waiting_for_map: Vec<u64>,
    /// Memoized `rank -> (hash, serialized key)`. Zipfian traffic revisits
    /// hot ranks constantly; caching turns two heap allocations plus a
    /// key hash per issue into a map probe and an `Arc` bump.
    key_cache: FxHashMap<u64, (KeyHash, Bytes)>,
    /// Ranks grouped by hash region, precomputed when the load shape
    /// targets regions (empty for [`LoadShape::Steady`]). Lets a shaped
    /// arrival pick uniformly inside the hot region in O(1).
    bucket_ranks: Vec<Vec<u64>>,
    next_op: u64,
    pending_arrivals: u64,
    value: Bytes,
    trace: Tracer,
    /// Protocol auditing (zero-cost when disarmed): confirmed writes and
    /// read-backs feed the auditor's read-your-writes spot checks.
    audit: AuditSink,
    /// Per-key max confirmed write `(version, confirmed_at)`, kept only
    /// while the audit sink is armed. A read is spot-checked only when it
    /// was *issued after* that confirmation — in-flight reads racing the
    /// write are legitimately allowed to see the older version.
    confirmed: FxHashMap<KeyHash, (u64, Nanos)>,
}

impl YcsbClient {
    /// Creates a client; `stats` is shared with the harness.
    pub fn new(cfg: YcsbConfig, stats: ClientStatsHandle) -> Self {
        let sampler = KeySampler::new(cfg.num_keys, cfg.dist, cfg.scrambled);
        let rng = Prng::new(cfg.seed);
        let value = Bytes::from(vec![0xabu8; cfg.value_len]);
        let bucket_ranks = match cfg.shape.buckets() {
            None => Vec::new(),
            Some(buckets) => {
                let mut by_bucket = vec![Vec::new(); buckets as usize];
                for rank in 0..cfg.num_keys {
                    let hash = key_hash(&primary_key(rank, cfg.key_len));
                    by_bucket[hash_bucket(hash, buckets) as usize].push(rank);
                }
                by_bucket
            }
        };
        YcsbClient {
            core: ClientCore::new(cfg.dir.clone(), cfg.table),
            stats,
            sampler,
            rng,
            ops: FxHashMap::with_capacity_and_hasher(2 * cfg.max_outstanding, Default::default()),
            rpc_to_op: FxHashMap::with_capacity_and_hasher(
                2 * cfg.max_outstanding,
                Default::default(),
            ),
            waiting_for_map: Vec::new(),
            key_cache: FxHashMap::default(),
            bucket_ranks,
            next_op: 1,
            pending_arrivals: 0,
            value,
            trace: Tracer::off(),
            audit: AuditSink::off(),
            confirmed: FxHashMap::default(),
            cfg,
        }
    }

    /// Arms trace recording: every completed RPC attempt emits an
    /// `rpc-client` instant (issue/complete stamps) that pairs with the
    /// server's `rpc` instant for end-to-end latency decomposition.
    pub fn with_trace(mut self, trace: Tracer) -> Self {
        self.trace = trace;
        self
    }

    /// Arms protocol auditing: confirmed writes and subsequent reads of
    /// the same keys are reported for read-your-writes spot checks.
    pub fn with_audit(mut self, audit: AuditSink) -> Self {
        self.audit = audit;
        self
    }

    /// The cached key hash for `rank` (populated by the first issue).
    fn hash_of(&self, rank: u64) -> Option<KeyHash> {
        self.key_cache.get(&rank).map(|(h, _)| *h)
    }

    fn arm_arrival(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        if ctx.now() >= self.cfg.stop_at {
            return;
        }
        let mean = 1e9 / self.cfg.ops_per_sec;
        let gap = self.rng.next_exp(mean).max(1.0) as Nanos;
        ctx.timer(gap, TOK_ARRIVAL);
    }

    fn drain_arrivals(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        while self.pending_arrivals > 0 && self.ops.len() < self.cfg.max_outstanding {
            self.pending_arrivals -= 1;
            let kind = if self.rng.next_f64() < self.cfg.read_fraction {
                OpKind::Read
            } else {
                OpKind::Write
            };
            let rank = self.sample_rank(ctx.now());
            let id = self.next_op;
            self.next_op += 1;
            self.ops.insert(
                id,
                Op {
                    kind,
                    rank,
                    started: ctx.now(),
                    issued: 0,
                    rpc: None,
                    retries: 0,
                    attempts: 0,
                },
            );
            self.issue(ctx, id);
        }
    }

    /// Picks the next key rank: with probability `hot_weight` a uniform
    /// draw from the currently hot hash region (if the shape defines
    /// one), otherwise the configured rank distribution.
    fn sample_rank(&mut self, now: Nanos) -> u64 {
        if let Some((bucket, _, weight)) = self.cfg.shape.hot_bucket(now) {
            let ranks = &self.bucket_ranks[bucket as usize];
            if !ranks.is_empty() && self.rng.next_f64() < weight {
                return ranks[self.rng.next_below(ranks.len() as u64) as usize];
            }
        }
        self.sampler.sample(&mut self.rng)
    }

    fn issue(&mut self, ctx: &mut Ctx<'_, Envelope>, op_id: u64) {
        let Some(op) = self.ops.get(&op_id) else {
            return;
        };
        let (hash, key) = match self.key_cache.get(&op.rank) {
            Some((h, k)) => (*h, k.clone()),
            None => {
                let raw = primary_key(op.rank, self.cfg.key_len);
                let h = key_hash(&raw);
                let k = Bytes::from(raw);
                self.key_cache.insert(op.rank, (h, k.clone()));
                (h, k)
            }
        };
        let Some(owner) = self.core.owner_of(hash) else {
            self.waiting_for_map.push(op_id);
            self.core.request_map(ctx);
            return;
        };
        let kind = op.kind;
        let attempt = op.attempts + 1;
        let req = match op.kind {
            OpKind::Read => Request::Read {
                table: self.cfg.table,
                key,
                key_hash: hash,
            },
            OpKind::Write => Request::Write {
                table: self.cfg.table,
                key,
                key_hash: hash,
                value: self.value.clone(),
            },
        };
        let rpc = self.core.alloc_rpc();
        let dst = self.core.actor_of(owner);
        // Every attempt of one operation carries the same minted trace
        // id; the hop field is the attempt number, so downstream spans
        // (and the PriorityPull a read miss spawns) chain back to the
        // exact attempt that caused them.
        let cctx = CausalCtx {
            trace_id: TraceId::mint(ctx.self_id() as u64, op_id),
            parent_span: 0,
            hop: attempt,
        };
        if self.trace.is_on() {
            self.trace.flow(
                "rpc-flow",
                "flow",
                ctx.self_id() as u64,
                0,
                ctx.now(),
                true,
                cctx.trace_id.0 ^ rpc.0,
                vec![("trace", cctx.trace_id.0), ("attempt", attempt as u64)],
            );
        }
        ctx.send(dst, Envelope::req(rpc, req).with_ctx(cctx));
        self.rpc_to_op.insert(rpc, op_id);
        let op = self.ops.get_mut(&op_id).expect("checked above");
        op.rpc = Some(rpc);
        op.issued = ctx.now();
        op.attempts = attempt;
        if kind == OpKind::Read {
            self.stats.borrow_mut().read_attempts.inc();
        }
        ctx.timer(self.cfg.rpc_timeout, (op_id << 8) | TOK_TIMEOUT);
    }

    fn complete(&mut self, ctx: &mut Ctx<'_, Envelope>, op_id: u64, found: bool) {
        let Some(op) = self.ops.remove(&op_id) else {
            return;
        };
        if let Some(rpc) = op.rpc {
            self.rpc_to_op.remove(&rpc);
        }
        let latency = ctx.now() - op.started;
        let mut s = self.stats.borrow_mut();
        match op.kind {
            OpKind::Read => s.record_read(ctx.now(), latency),
            OpKind::Write => s.record_write(ctx.now(), latency),
        }
        if found {
            s.objects.record(ctx.now(), 1);
        } else {
            s.not_found.inc();
        }
        drop(s);
        self.drain_arrivals(ctx);
    }

    /// Reports a completed read (version 0 = miss) for read-your-writes
    /// spot checking, but only when this key has a confirmed write and
    /// the read attempt was issued after that confirmation — earlier
    /// reads may legitimately observe the pre-write version.
    fn audit_read(&mut self, ctx: &Ctx<'_, Envelope>, op_id: u64, version: u64) {
        if !self.audit.is_on() {
            return;
        }
        let Some(op) = self.ops.get(&op_id) else {
            return;
        };
        let Some(hash) = self.hash_of(op.rank) else {
            return;
        };
        let Some(&(_, confirmed_at)) = self.confirmed.get(&hash) else {
            return;
        };
        if op.issued > confirmed_at {
            self.audit.emit(
                ctx.now(),
                AuditKind::ClientRead {
                    client: ctx.self_id() as u64,
                    hash,
                    version,
                },
            );
        }
    }

    fn on_op_response(&mut self, ctx: &mut Ctx<'_, Envelope>, op_id: u64, resp: Response) {
        match resp {
            Response::WriteOk { version } => {
                if let Some(op) = self.ops.get(&op_id) {
                    self.stats
                        .borrow_mut()
                        .confirmed_writes
                        .push((op.rank, version));
                    if self.audit.is_on() {
                        if let Some(hash) = self.hash_of(op.rank) {
                            let entry = self.confirmed.entry(hash).or_insert((0, 0));
                            if version > entry.0 {
                                *entry = (version, ctx.now());
                            }
                            self.audit.emit(
                                ctx.now(),
                                AuditKind::ClientWrite {
                                    client: ctx.self_id() as u64,
                                    hash,
                                    version,
                                },
                            );
                        }
                    }
                }
                self.complete(ctx, op_id, true);
            }
            Response::ReadOk { version, .. } => {
                self.audit_read(ctx, op_id, version);
                self.complete(ctx, op_id, true);
            }
            Response::DeleteOk { .. } => {
                self.complete(ctx, op_id, true);
            }
            Response::Err(Status::NotFound) => {
                if let Some(op) = self.ops.get(&op_id) {
                    if op.kind == OpKind::Read {
                        self.audit_read(ctx, op_id, 0);
                    }
                }
                self.complete(ctx, op_id, false)
            }
            Response::Err(Status::Retry { after }) => {
                self.stats.borrow_mut().retries.inc();
                if let Some(op) = self.ops.get_mut(&op_id) {
                    if let Some(rpc) = op.rpc.take() {
                        self.rpc_to_op.remove(&rpc);
                    }
                    // Exponential back-off: the first retry honors the
                    // server's hint ("a few tens of microseconds", §3);
                    // repeated misses on a cold record back off so a
                    // thousand waiting clients don't saturate the
                    // target's dispatch with retry traffic.
                    op.retries += 1;
                    let factor = 1u64 << op.retries.min(7);
                    let delay =
                        (after.saturating_mul(factor) / 2).min(4 * rocksteady_common::MILLISECOND);
                    ctx.timer(delay, (op_id << 8) | TOK_RETRY);
                }
            }
            Response::Err(Status::UnknownTablet) => {
                self.stats.borrow_mut().map_refreshes.inc();
                if let Some(op) = self.ops.get_mut(&op_id) {
                    if let Some(rpc) = op.rpc.take() {
                        self.rpc_to_op.remove(&rpc);
                    }
                }
                self.waiting_for_map.push(op_id);
                self.core.request_map(ctx);
            }
            _ => self.complete(ctx, op_id, false),
        }
    }
}

/// Maps a response to the journey status code recorded on `rpc-client`
/// attempt instants (see `rocksteady_trace::journey::status`).
fn status_code(resp: &Response) -> u64 {
    match resp {
        Response::Err(Status::Retry { .. }) => 1,
        Response::Err(Status::UnknownTablet) => 2,
        Response::Err(Status::NotFound) => 3,
        Response::Err(_) => 4,
        _ => 0,
    }
}

impl Actor<Envelope> for YcsbClient {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        self.core.request_map(ctx);
        self.arm_arrival(ctx);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Envelope>, event: Event<Envelope>) {
        match event {
            Event::Message { payload, .. } => {
                let rpc = payload.rpc;
                let Body::Resp(resp) = payload.body else {
                    return;
                };
                if let Response::TabletMapOk { tablets } = resp {
                    if self.core.install_map(rpc, tablets) {
                        let waiting = std::mem::take(&mut self.waiting_for_map);
                        for op_id in waiting {
                            self.issue(ctx, op_id);
                        }
                    }
                    return;
                }
                if let Some(op_id) = self.rpc_to_op.remove(&rpc) {
                    if self.trace.is_on() {
                        if let Some(op) = self.ops.get(&op_id) {
                            let now = ctx.now();
                            self.trace.instant(
                                "rpc-client",
                                "client",
                                ctx.self_id() as u64,
                                0,
                                now,
                                vec![
                                    ("rpc", rpc.0),
                                    ("issued", op.issued),
                                    ("completed", now),
                                    ("e2e", now - op.issued),
                                    ("trace", TraceId::mint(ctx.self_id() as u64, op_id).0),
                                    ("attempt", op.attempts as u64),
                                    ("status", status_code(&resp)),
                                ],
                            );
                        }
                    }
                    self.on_op_response(ctx, op_id, resp);
                }
            }
            Event::Timer { token } => match token & 0xff {
                TOK_ARRIVAL => {
                    self.pending_arrivals += 1;
                    self.drain_arrivals(ctx);
                    self.arm_arrival(ctx);
                }
                TOK_RETRY => {
                    self.issue(ctx, token >> 8);
                }
                TOK_TIMEOUT => {
                    let op_id = token >> 8;
                    let timed_out = match self.ops.get(&op_id) {
                        Some(op) => {
                            op.rpc.is_some()
                                && ctx.now().saturating_sub(op.issued) >= self.cfg.rpc_timeout
                        }
                        None => false,
                    };
                    if timed_out {
                        self.stats.borrow_mut().timeouts.inc();
                        if let Some(op) = self.ops.get_mut(&op_id) {
                            if let Some(rpc) = op.rpc.take() {
                                self.rpc_to_op.remove(&rpc);
                            }
                        }
                        // The owner may have crashed: refresh and retry.
                        self.waiting_for_map.push(op_id);
                        if self.core.request_map(ctx).is_none() && !self.core.map_pending() {
                            self.issue(ctx, op_id);
                        }
                    }
                }
                _ => {}
            },
        }
    }
}
