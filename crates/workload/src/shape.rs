//! Time-varying load shapes: hotspots that move.
//!
//! The steady Zipfian mix in [`crate::YcsbClient`] skews *rank*
//! popularity, but ranks scatter uniformly over the 64-bit hash space,
//! so every tablet sees the same load and there is nothing for a
//! rebalancer to fix. A [`LoadShape`] adds the missing dimension: it
//! concentrates a configurable fraction of arrivals onto one *hash
//! region* (an aligned `1/buckets` slice of the key-hash space) and
//! moves that region over virtual time. Because tablet boundaries are
//! hash ranges, a hot region is a hot tablet — the load imbalance the
//! rebalancer exists to shed.
//!
//! Shapes are pure functions of virtual time, so shaped workloads stay
//! bit-deterministic per seed.

use rocksteady_common::{KeyHash, Nanos};

/// How a client's offered load moves across the hash space over time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LoadShape {
    /// No spatial skew: pure rank-popularity sampling (the default;
    /// byte-identical behavior to a client predating load shapes).
    #[default]
    Steady,
    /// One abrupt hotspot change: before `at`, the first hash region is
    /// hot; from `at` on, the last one is. Models a working-set flip —
    /// the worst case for any reactive placement loop.
    SkewFlip {
        /// Virtual time of the flip.
        at: Nanos,
        /// Number of equal hash regions the space is divided into.
        buckets: u32,
        /// Fraction of arrivals aimed at the hot region (the rest
        /// follow the client's rank distribution).
        hot_weight: f64,
    },
    /// A slowly wandering hotspot: the hot region advances one bucket
    /// every `dwell`, wrapping around — a compressed diurnal cycle
    /// where demand drifts across the key space.
    DiurnalDrift {
        /// How long the hotspot stays on one region.
        dwell: Nanos,
        /// Number of equal hash regions the space is divided into.
        buckets: u32,
        /// Fraction of arrivals aimed at the hot region.
        hot_weight: f64,
    },
}

impl LoadShape {
    /// The hot region at `now` as `(bucket, buckets, hot_weight)`, or
    /// `None` for [`LoadShape::Steady`].
    pub fn hot_bucket(&self, now: Nanos) -> Option<(u32, u32, f64)> {
        match *self {
            LoadShape::Steady => None,
            LoadShape::SkewFlip {
                at,
                buckets,
                hot_weight,
            } => {
                let b = if now < at {
                    0
                } else {
                    buckets.saturating_sub(1)
                };
                Some((b, buckets, hot_weight))
            }
            LoadShape::DiurnalDrift {
                dwell,
                buckets,
                hot_weight,
            } => {
                let b = ((now / dwell.max(1)) % u64::from(buckets.max(1))) as u32;
                Some((b, buckets, hot_weight))
            }
        }
    }

    /// Number of hash regions, or `None` for [`LoadShape::Steady`].
    pub fn buckets(&self) -> Option<u32> {
        match *self {
            LoadShape::Steady => None,
            LoadShape::SkewFlip { buckets, .. } | LoadShape::DiurnalDrift { buckets, .. } => {
                Some(buckets)
            }
        }
    }
}

/// The region index a key hash falls into when the space is divided
/// into `buckets` equal aligned slices.
pub fn hash_bucket(hash: KeyHash, buckets: u32) -> u32 {
    let width = (1u128 << 64) / u128::from(buckets.max(1));
    ((u128::from(hash) / width) as u32).min(buckets.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocksteady_common::SECOND;

    #[test]
    fn steady_has_no_hotspot() {
        assert_eq!(LoadShape::Steady.hot_bucket(0), None);
        assert_eq!(LoadShape::Steady.buckets(), None);
    }

    #[test]
    fn skew_flip_switches_once() {
        let s = LoadShape::SkewFlip {
            at: SECOND,
            buckets: 8,
            hot_weight: 0.6,
        };
        assert_eq!(s.hot_bucket(0), Some((0, 8, 0.6)));
        assert_eq!(s.hot_bucket(SECOND - 1), Some((0, 8, 0.6)));
        assert_eq!(s.hot_bucket(SECOND), Some((7, 8, 0.6)));
        assert_eq!(s.hot_bucket(100 * SECOND), Some((7, 8, 0.6)));
    }

    #[test]
    fn diurnal_drift_wraps() {
        let s = LoadShape::DiurnalDrift {
            dwell: SECOND,
            buckets: 4,
            hot_weight: 0.5,
        };
        assert_eq!(s.hot_bucket(0).unwrap().0, 0);
        assert_eq!(s.hot_bucket(SECOND).unwrap().0, 1);
        assert_eq!(s.hot_bucket(3 * SECOND).unwrap().0, 3);
        assert_eq!(s.hot_bucket(4 * SECOND).unwrap().0, 0);
    }

    #[test]
    fn hash_buckets_partition_the_space() {
        assert_eq!(hash_bucket(0, 4), 0);
        assert_eq!(hash_bucket(u64::MAX / 2, 4), 1);
        assert_eq!(hash_bucket(u64::MAX, 4), 3);
        for b in [1u32, 2, 3, 7, 16] {
            assert_eq!(hash_bucket(u64::MAX, b), b - 1);
        }
    }
}
