//! Simulated clients: YCSB, multiget-spread, and index-scan workloads.
//!
//! The paper's evaluation drives the cluster with three client shapes,
//! all implemented here as simulation actors:
//!
//! - [`ycsb::YcsbClient`] — YCSB-B (95% reads / 5% writes, Zipfian keys,
//!   §4.1) offered as a *nearly open* load: arrivals are Poisson at a
//!   configured rate, with a bounded number outstanding so a stalled
//!   cluster backlogs rather than generating unbounded virtual state.
//!   Used by Figures 9–14.
//! - [`spread::SpreadClient`] — the Figure 3 microbenchmark: 7-key
//!   multigets split across a configurable number of servers,
//!   issued back-to-back (closed loop).
//! - [`scan::ScanClient`] — the Figure 4 workload: short secondary-index
//!   range scans (Zipfian start key, θ = 0.5) followed by multi-gets of
//!   the returned primary hashes.
//!
//! All clients share [`core::ClientCore`]: tablet-map caching with
//! refresh-on-`UnknownTablet` (exactly how RAMCloud clients chase a
//! migrated tablet, §3), retry-with-back-off on `Retry` responses, RPC
//! timeouts for crash tests, and latency recording into per-interval
//! [`TimeSeries`](rocksteady_common::TimeSeries).

pub mod core;
pub mod scan;
pub mod shape;
pub mod spread;
pub mod stats;
pub mod ycsb;

pub use crate::core::ClientCore;
pub use scan::{ScanClient, ScanConfig};
pub use shape::{hash_bucket, LoadShape};
pub use spread::{SpreadClient, SpreadConfig};
pub use stats::{client_stats, registered_client_stats, ClientStats, ClientStatsHandle};
pub use ycsb::{YcsbClient, YcsbConfig};
