//! The multiget *spread* microbenchmark (Figure 3).
//!
//! Clients issue back-to-back 7-key multigets; the `spread` knob sets how
//! many servers each multiget touches. At spread 1 all seven keys come
//! from one server (one RPC); at spread `s > 1` the first server
//! contributes `7 - (s-1)` keys and each of the other `s-1` servers one
//! key, so the client issues `s` parallel RPCs for the same seven
//! objects — same worker work cluster-wide, `s×` the dispatch work. The
//! paper uses this to show dispatch saturation destroying locality
//! gains (§2.1).

use std::collections::HashMap;

use bytes::Bytes;
use rocksteady_common::rng::Prng;
use rocksteady_common::{Nanos, RpcId, ServerId, TableId};
use rocksteady_proto::{Body, Envelope, Request, Response};
use rocksteady_simnet::{Actor, Ctx, Directory, Event};

use crate::core::{primary_hash, primary_key, ClientCore};
use crate::stats::ClientStatsHandle;

/// Configuration for one spread client.
#[derive(Debug, Clone)]
pub struct SpreadConfig {
    /// Cluster wiring.
    pub dir: Directory,
    /// Table to read.
    pub table: TableId,
    /// Key length in bytes.
    pub key_len: usize,
    /// Key ranks owned by each server (precomputed by the harness from
    /// the tablet split).
    pub keys_by_server: Vec<(ServerId, Vec<u64>)>,
    /// Servers touched per multiget (1–7 in the paper).
    pub spread: usize,
    /// Keys per multiget (7 in the paper).
    pub keys_per_op: usize,
    /// Multigets kept in flight back-to-back (closed loop).
    pub concurrency: usize,
    /// RNG seed.
    pub seed: u64,
}

#[derive(Debug)]
struct Op {
    started: Nanos,
    remaining: u32,
    objects: u64,
}

/// The spread client actor (closed loop).
pub struct SpreadClient {
    cfg: SpreadConfig,
    core: ClientCore,
    stats: ClientStatsHandle,
    rng: Prng,
    ops: HashMap<u64, Op>,
    rpc_to_op: HashMap<RpcId, u64>,
    next_op: u64,
}

impl SpreadClient {
    /// Creates a spread client.
    ///
    /// # Panics
    ///
    /// Panics if `spread` is zero, exceeds the server count, or exceeds
    /// `keys_per_op`.
    pub fn new(cfg: SpreadConfig, stats: ClientStatsHandle) -> Self {
        assert!(cfg.spread >= 1 && cfg.spread <= cfg.keys_by_server.len());
        assert!(cfg.spread <= cfg.keys_per_op);
        let rng = Prng::new(cfg.seed);
        SpreadClient {
            core: ClientCore::new(cfg.dir.clone(), cfg.table),
            stats,
            rng,
            ops: HashMap::new(),
            rpc_to_op: HashMap::new(),
            next_op: 1,
            cfg,
        }
    }

    fn issue_one(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        let servers = self.cfg.keys_by_server.len();
        let first = self.rng.next_below(servers as u64) as usize;
        let op_id = self.next_op;
        self.next_op += 1;
        // Server i of the op: the first contributes the bulk, the rest
        // one key each (the paper's 6+1 shape at spread 2).
        let mut rpcs = 0;
        let mut total_keys = 0;
        for i in 0..self.cfg.spread {
            let count = if i == 0 {
                self.cfg.keys_per_op - (self.cfg.spread - 1)
            } else {
                1
            };
            let (server, ranks) = &self.cfg.keys_by_server[(first + i) % servers];
            let mut keys = Vec::with_capacity(count);
            for _ in 0..count {
                let rank = ranks[self.rng.next_below(ranks.len() as u64) as usize];
                keys.push((
                    Bytes::from(primary_key(rank, self.cfg.key_len)),
                    primary_hash(rank, self.cfg.key_len),
                ));
            }
            total_keys += keys.len();
            let rpc = self.core.alloc_rpc();
            let dst = self.core.actor_of(*server);
            ctx.send(
                dst,
                Envelope::req(
                    rpc,
                    Request::MultiRead {
                        table: self.cfg.table,
                        keys,
                    },
                ),
            );
            self.rpc_to_op.insert(rpc, op_id);
            rpcs += 1;
        }
        self.ops.insert(
            op_id,
            Op {
                started: ctx.now(),
                remaining: rpcs,
                objects: total_keys as u64,
            },
        );
    }
}

impl Actor<Envelope> for SpreadClient {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        for _ in 0..self.cfg.concurrency {
            self.issue_one(ctx);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Envelope>, event: Event<Envelope>) {
        let Event::Message { payload, .. } = event else {
            return;
        };
        let Body::Resp(resp) = payload.body else {
            return;
        };
        let Some(op_id) = self.rpc_to_op.remove(&payload.rpc) else {
            return;
        };
        debug_assert!(matches!(resp, Response::MultiReadOk { .. }), "{resp:?}");
        let finished = {
            let op = self.ops.get_mut(&op_id).expect("op for rpc");
            op.remaining -= 1;
            op.remaining == 0
        };
        if finished {
            let op = self.ops.remove(&op_id).expect("checked");
            let mut s = self.stats.borrow_mut();
            s.record_read(ctx.now(), ctx.now() - op.started);
            for _ in 0..op.objects {
                s.objects.record(ctx.now(), 1);
            }
            drop(s);
            // Closed loop: immediately issue the next multiget.
            self.issue_one(ctx);
        }
    }
}
