//! Shared client plumbing: routing, map refresh, RPC ids, key naming.
//!
//! RAMCloud clients cache the coordinator's tablet map and learn about
//! migrations lazily: a request to the old owner returns `UnknownTablet`,
//! the client refetches the map, and retries against the new owner (§3).
//! [`ClientCore`] implements that cycle once for all workload shapes.

use rocksteady_common::{key_hash, KeyHash, RpcId, ServerId, TableId};
use rocksteady_proto::{Envelope, Request, TabletDescriptor};
use rocksteady_simnet::{ActorId, Ctx, Directory};

/// Routing + RPC-id plumbing shared by all clients.
#[derive(Debug)]
pub struct ClientCore {
    /// Cluster wiring.
    pub dir: Directory,
    /// The table this client works against.
    pub table: TableId,
    map: Vec<TabletDescriptor>,
    map_rpc: Option<RpcId>,
    next_rpc: u64,
}

impl ClientCore {
    /// Creates a core for `table` in the given cluster.
    pub fn new(dir: Directory, table: TableId) -> Self {
        ClientCore {
            dir,
            table,
            map: Vec::new(),
            map_rpc: None,
            next_rpc: 1,
        }
    }

    /// Allocates the next RPC id.
    pub fn alloc_rpc(&mut self) -> RpcId {
        let id = RpcId(self.next_rpc);
        self.next_rpc += 1;
        id
    }

    /// Current owner of `hash` per the cached map.
    pub fn owner_of(&self, hash: KeyHash) -> Option<ServerId> {
        self.map
            .iter()
            .find(|t| t.covers(self.table, hash))
            .map(|t| t.owner)
    }

    /// Whether a map fetch is already in flight.
    pub fn map_pending(&self) -> bool {
        self.map_rpc.is_some()
    }

    /// Requests the tablet map from the coordinator (no-op if one fetch
    /// is already outstanding). Returns the RPC id when sent.
    pub fn request_map(&mut self, ctx: &mut Ctx<'_, Envelope>) -> Option<RpcId> {
        if self.map_rpc.is_some() {
            return None;
        }
        let rpc = self.alloc_rpc();
        self.map_rpc = Some(rpc);
        ctx.send(
            self.dir.coordinator,
            Envelope::req(rpc, Request::GetTabletMap),
        );
        Some(rpc)
    }

    /// Installs a map response. Returns true if `rpc` was the pending
    /// map fetch.
    pub fn install_map(&mut self, rpc: RpcId, tablets: Vec<TabletDescriptor>) -> bool {
        if self.map_rpc == Some(rpc) {
            self.map_rpc = None;
            self.map = tablets;
            true
        } else {
            false
        }
    }

    /// Actor id of a server.
    pub fn actor_of(&self, id: ServerId) -> ActorId {
        self.dir.actor_of(id)
    }
}

/// Formats the `rank`-th primary key: `"user"` followed by the rank
/// zero-padded on the *left* to fill `key_len` bytes (the paper uses
/// 30 B keys; §4.1). Left-padding keeps every rank distinct.
pub fn primary_key(rank: u64, key_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(key_len.max(4 + 20));
    write_primary_key(rank, key_len, &mut out);
    out
}

/// Formats the `rank`-th primary key into `out` (cleared first) without
/// allocating in the steady state — the bulk-load path formats millions
/// of keys and must not pay a `format!` heap allocation per record.
/// Produces byte-identical output to [`primary_key`].
pub fn write_primary_key(rank: u64, key_len: usize, out: &mut Vec<u8>) {
    let digits = key_len.saturating_sub(4).max(1);
    // `format!("{rank:0digits$}")` pads to `digits` but never truncates;
    // match that by widening to the rank's own decimal length if needed.
    let mut need = 1;
    let mut r = rank;
    while r >= 10 {
        need += 1;
        r /= 10;
    }
    let width = digits.max(need);
    out.clear();
    out.extend_from_slice(b"user");
    let start = out.len();
    out.resize(start + width, b'0');
    let mut r = rank;
    let mut i = start + width;
    while r > 0 {
        i -= 1;
        out[i] = b'0' + (r % 10) as u8;
        r /= 10;
    }
}

/// Hash of the `rank`-th primary key.
pub fn primary_hash(rank: u64, key_len: usize) -> KeyHash {
    key_hash(&primary_key(rank, key_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_fixed_width_and_distinct() {
        let a = primary_key(0, 30);
        let b = primary_key(123_456, 30);
        assert_eq!(a.len(), 30);
        assert_eq!(b.len(), 30);
        assert_ne!(a, b);
        assert_eq!(primary_hash(7, 30), key_hash(&primary_key(7, 30)));
        // The historical trap: user1 / user10 / user100 must not collide
        // under padding.
        let mut keys: Vec<Vec<u8>> = (0..10_000).map(|r| primary_key(r, 30)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 10_000);
    }

    #[test]
    fn owner_lookup_uses_cached_map() {
        use rocksteady_common::HashRange;
        use rocksteady_proto::TabletState;
        let mut core = ClientCore::new(Directory::default(), TableId(1));
        assert_eq!(core.owner_of(5), None);
        core.map = vec![TabletDescriptor {
            table: TableId(1),
            range: HashRange { start: 0, end: 10 },
            owner: ServerId(3),
            state: TabletState::Normal,
        }];
        assert_eq!(core.owner_of(5), Some(ServerId(3)));
        assert_eq!(core.owner_of(11), None);
    }
}
