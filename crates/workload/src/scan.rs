//! The secondary-index scan workload (Figure 4).
//!
//! Each operation is the two-step dance of Figure 2: a short range scan
//! against the indexlet owning the start key (returning primary-key
//! hashes), then multi-gets of those hashes against the backing tablets,
//! grouped by owner. The client-observed latency covers both steps; the
//! *cluster-wide dispatch load* depends on how many servers the second
//! step fans out to — which is exactly the trade-off Figure 4 sweeps.

use std::collections::HashMap;

use bytes::Bytes;
use rocksteady_common::ids::IndexId;
use rocksteady_common::rng::Prng;
use rocksteady_common::zipf::{KeyDist, KeySampler};
use rocksteady_common::{KeyHash, Nanos, RpcId, ServerId, TableId};
use rocksteady_proto::{Body, Envelope, Request, Response};
use rocksteady_simnet::{Actor, Ctx, Directory, Event};

use crate::core::ClientCore;
use crate::stats::ClientStatsHandle;

const TOK_ARRIVAL: u64 = 1;

/// Formats the `rank`-th secondary key (lexicographic order == numeric
/// order, so range scans work).
pub fn secondary_key(rank: u64, key_len: usize) -> Vec<u8> {
    let mut key = format!("sec{rank:020}").into_bytes();
    key.resize(key_len.max(key.len()), b'0');
    key
}

/// Configuration for one index-scan client.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Cluster wiring.
    pub dir: Directory,
    /// Indexed table.
    pub table: TableId,
    /// Which index.
    pub index: IndexId,
    /// Secondary-key length (paper: 30).
    pub sec_key_len: usize,
    /// Number of records (== number of secondary keys).
    pub num_keys: u64,
    /// Indexlet ranges and owners: `(lo, exclusive hi, owner)`.
    pub indexlets: Vec<(Vec<u8>, Option<Vec<u8>>, ServerId)>,
    /// Records per scan (paper: 4).
    pub scan_len: u64,
    /// Start-key skew (paper: Zipfian θ = 0.5).
    pub dist: KeyDist,
    /// Offered scans per second from this client.
    pub scans_per_sec: f64,
    /// Maximum scans in flight.
    pub max_outstanding: usize,
    /// RNG seed.
    pub seed: u64,
}

#[derive(Debug)]
enum Phase {
    /// Waiting for the indexlet's hash list.
    Lookup,
    /// Waiting for `remaining` multi-get responses.
    Fetch { remaining: u32, objects: u64 },
}

#[derive(Debug)]
struct Op {
    started: Nanos,
    phase: Phase,
}

/// The index-scan client actor (open loop).
pub struct ScanClient {
    cfg: ScanConfig,
    core: ClientCore,
    stats: ClientStatsHandle,
    sampler: KeySampler,
    rng: Prng,
    ops: HashMap<u64, Op>,
    rpc_to_op: HashMap<RpcId, u64>,
    next_op: u64,
    pending_arrivals: u64,
    map_ready: bool,
}

impl ScanClient {
    /// Creates a scan client.
    pub fn new(cfg: ScanConfig, stats: ClientStatsHandle) -> Self {
        let sampler = KeySampler::new(cfg.num_keys, cfg.dist, false);
        let rng = Prng::new(cfg.seed);
        ScanClient {
            core: ClientCore::new(cfg.dir.clone(), cfg.table),
            stats,
            sampler,
            rng,
            ops: HashMap::new(),
            rpc_to_op: HashMap::new(),
            next_op: 1,
            pending_arrivals: 0,
            map_ready: false,
            cfg,
        }
    }

    fn indexlet_owner(&self, begin: &[u8]) -> Option<ServerId> {
        self.cfg
            .indexlets
            .iter()
            .find(|(lo, hi, _)| {
                begin >= lo.as_slice() && hi.as_ref().is_none_or(|h| begin < h.as_slice())
            })
            .map(|(_, _, owner)| *owner)
    }

    fn arm_arrival(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        let mean = 1e9 / self.cfg.scans_per_sec;
        let gap = self.rng.next_exp(mean).max(1.0) as Nanos;
        ctx.timer(gap, TOK_ARRIVAL);
    }

    fn drain(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        if !self.map_ready {
            return;
        }
        while self.pending_arrivals > 0 && self.ops.len() < self.cfg.max_outstanding {
            self.pending_arrivals -= 1;
            self.issue_scan(ctx);
        }
    }

    fn issue_scan(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        let start = self.sampler.sample(&mut self.rng);
        let end = (start + self.cfg.scan_len - 1).min(self.cfg.num_keys - 1);
        let begin_key = secondary_key(start, self.cfg.sec_key_len);
        let end_key = secondary_key(end, self.cfg.sec_key_len);
        let Some(owner) = self.indexlet_owner(&begin_key) else {
            return;
        };
        let op_id = self.next_op;
        self.next_op += 1;
        let rpc = self.core.alloc_rpc();
        let dst = self.core.actor_of(owner);
        ctx.send(
            dst,
            Envelope::req(
                rpc,
                Request::IndexScan {
                    table: self.cfg.table,
                    index: self.cfg.index,
                    begin: Bytes::from(begin_key),
                    end: Bytes::from(end_key),
                    limit: self.cfg.scan_len as u32,
                },
            ),
        );
        self.rpc_to_op.insert(rpc, op_id);
        self.ops.insert(
            op_id,
            Op {
                started: ctx.now(),
                phase: Phase::Lookup,
            },
        );
    }

    fn on_hashes(&mut self, ctx: &mut Ctx<'_, Envelope>, op_id: u64, hashes: Vec<KeyHash>) {
        if hashes.is_empty() {
            self.finish(ctx, op_id, 0);
            return;
        }
        // Group the hashes by current tablet owner (Figure 2: the number
        // of backing tablets dictates the fan-out).
        let mut by_owner: HashMap<ServerId, Vec<KeyHash>> = HashMap::new();
        for h in hashes {
            let Some(owner) = self.core.owner_of(h) else {
                continue;
            };
            by_owner.entry(owner).or_default().push(h);
        }
        let mut remaining = 0;
        let mut objects = 0;
        for (owner, hashes) in by_owner {
            objects += hashes.len() as u64;
            let rpc = self.core.alloc_rpc();
            let dst = self.core.actor_of(owner);
            ctx.send(
                dst,
                Envelope::req(
                    rpc,
                    Request::MultiReadHash {
                        table: self.cfg.table,
                        hashes,
                    },
                ),
            );
            self.rpc_to_op.insert(rpc, op_id);
            remaining += 1;
        }
        if remaining == 0 {
            self.finish(ctx, op_id, 0);
            return;
        }
        if let Some(op) = self.ops.get_mut(&op_id) {
            op.phase = Phase::Fetch { remaining, objects };
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_, Envelope>, op_id: u64, objects: u64) {
        let Some(op) = self.ops.remove(&op_id) else {
            return;
        };
        let mut s = self.stats.borrow_mut();
        s.record_read(ctx.now(), ctx.now() - op.started);
        for _ in 0..objects {
            s.objects.record(ctx.now(), 1);
        }
        drop(s);
        self.drain(ctx);
    }
}

impl Actor<Envelope> for ScanClient {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        self.core.request_map(ctx);
        self.arm_arrival(ctx);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Envelope>, event: Event<Envelope>) {
        match event {
            Event::Message { payload, .. } => {
                let rpc = payload.rpc;
                let Body::Resp(resp) = payload.body else {
                    return;
                };
                if let Response::TabletMapOk { tablets } = resp {
                    if self.core.install_map(rpc, tablets) {
                        self.map_ready = true;
                        self.drain(ctx);
                    }
                    return;
                }
                let Some(op_id) = self.rpc_to_op.remove(&rpc) else {
                    return;
                };
                match resp {
                    Response::IndexScanOk { hashes, .. } => {
                        self.on_hashes(ctx, op_id, hashes);
                    }
                    Response::MultiReadHashOk { .. } => {
                        let done = match self.ops.get_mut(&op_id) {
                            Some(Op {
                                phase: Phase::Fetch { remaining, objects },
                                ..
                            }) => {
                                *remaining -= 1;
                                if *remaining == 0 {
                                    Some(*objects)
                                } else {
                                    None
                                }
                            }
                            _ => None,
                        };
                        if let Some(objects) = done {
                            self.finish(ctx, op_id, objects);
                        }
                    }
                    _ => {
                        // Scan failed (stale map); drop the op.
                        self.ops.remove(&op_id);
                        self.drain(ctx);
                    }
                }
            }
            Event::Timer { token } => {
                if token == TOK_ARRIVAL {
                    self.pending_arrivals += 1;
                    self.drain(ctx);
                    self.arm_arrival(ctx);
                }
            }
        }
    }
}
