//! Shared plumbing for the figure-regeneration benchmarks.
//!
//! Each `benches/figNN_*.rs` target is a `harness = false` binary that
//! rebuilds one table or figure from the paper's evaluation (§4) at the
//! simulator's scale, prints the same rows/series the paper plots, and
//! runs qualitative *shape checks* — who wins, by roughly what factor,
//! where the knees fall. EXPERIMENTS.md records paper-vs-measured for
//! every one of them.
//!
//! # Scale
//!
//! Two scale substitutions apply to every experiment (DESIGN.md §1):
//!
//! - **Data**: the paper migrates 13.9 GB; we migrate tens of MB.
//!   Migration *rates* (MB/s) are directly comparable; migration
//!   *durations* shrink proportionally, so timeline x-axes here are in
//!   hundreds of milliseconds instead of tens of seconds.
//! - **Event rate** (timeline figures only): simulating the paper's
//!   ~1 M ops/s for tens of seconds is prohibitive on two host cores,
//!   so [`timeline_config`] scales the dispatch-side costs ×10 and the
//!   offered load ÷10. All ratios that drive Figures 9–14 (dispatch
//!   utilization, priority ordering, migration-vs-foreground contention)
//!   are preserved; absolute latencies are ~2–3× the paper's.

use rocksteady_cluster::{Cluster, ClusterBuilder, ClusterConfig};
use rocksteady_common::time::{fmt_nanos, mb_per_sec};
use rocksteady_common::{CostModel, HashRange, Nanos, ServerId, TableId, MILLISECOND};
use rocksteady_metrics::timeline;

/// The table every benchmark uses.
pub const TABLE: TableId = TableId(1);
/// Migration split point (upper half moves).
pub const MID: u64 = u64::MAX / 2 + 1;

/// The migrating range.
pub fn upper() -> HashRange {
    HashRange {
        start: MID,
        end: u64::MAX,
    }
}

/// Prints the simulated "Table 1": the cluster configuration every
/// figure runs on.
pub fn print_table1(name: &str, cfg: &ClusterConfig, extra: &str) {
    println!("== {name} ==");
    println!("Table 1 (simulated cluster configuration)");
    println!(
        "  servers: {} (+1 coordinator) | workers/server: {} | replicas: {}",
        cfg.servers, cfg.workers, cfg.replicas
    );
    println!(
        "  NIC: {:.1} GB/s line rate, {} one-way | dispatch: {}/msg",
        cfg.nic.bytes_per_ns,
        fmt_nanos(cfg.nic.one_way_latency_ns),
        fmt_nanos(cfg.cost.dispatch_per_msg_ns),
    );
    println!(
        "  segments: {} KB | replication ceiling: {:.0} MB/s | seed: {}",
        cfg.segment_bytes / 1024,
        cfg.cost.replication_bytes_per_ns * 1e3,
        cfg.seed
    );
    if !extra.is_empty() {
        println!("  {extra}");
    }
    println!();
}

/// Cluster configuration for the timeline figures (9–14): dispatch-side
/// costs ×10, so the paper's "source at 80% dispatch load" regime is
/// reachable at a simulable event rate (see module docs).
pub fn timeline_config(servers: usize) -> ClusterConfig {
    let mut cost = CostModel::default();
    cost.dispatch_per_msg_ns *= 10;
    cost.dispatch_tx_per_msg_ns *= 10;
    cost.migration_mgr_check_ns *= 10;
    ClusterConfig {
        servers,
        workers: 12,
        cost,
        replicas: 2.min(servers.saturating_sub(1)),
        segment_bytes: 1 << 20,
        sample_interval: 50 * MILLISECOND,
        series_interval: 100 * MILLISECOND,
        seed: 42,
        ..ClusterConfig::default()
    }
}

/// Standard migration-bench preload: table on server 0, `keys` records
/// (30 B keys, `value_len` B values), backups seeded, split at [`MID`].
pub fn standard_setup(cluster: &mut Cluster, keys: u64, value_len: usize) {
    cluster.create_table(TABLE, &[(HashRange::full(), ServerId(0))]);
    cluster.load_table(TABLE, keys, 30, value_len);
    cluster.seed_backups();
    cluster.split_tablet(TABLE, MID);
}

/// A qualitative shape check: prints `CHECK PASS/FAIL <what>`.
/// Returns the outcome so callers can aggregate.
pub fn check(ok: bool, what: &str) -> bool {
    println!("CHECK {} {}", if ok { "PASS" } else { "FAIL" }, what);
    ok
}

/// Mean of a slice (0.0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Extracts the migration-rate series (interval start, MB/s of record
/// bytes arriving at `target`) between `from` and `to`.
pub fn migration_rate_series(
    cluster: &Cluster,
    target: ServerId,
    from: Nanos,
    to: Nanos,
) -> Vec<(Nanos, f64)> {
    let util = cluster.util.borrow();
    let interval = util.interval.max(1);
    util.by_server
        .get(&target)
        .map(|points| {
            points
                .iter()
                .filter(|p| p.at >= from && p.at < to)
                .map(|p| (p.at, mb_per_sec(p.bytes_in, interval)))
                .collect()
        })
        .unwrap_or_default()
}

/// Builds a `ClusterBuilder` and hands it to `f` for customization —
/// sugar that keeps each figure binary focused on its experiment.
pub fn cluster(cfg: ClusterConfig, f: impl FnOnce(&mut ClusterBuilder)) -> Cluster {
    let mut b = ClusterBuilder::new(cfg);
    f(&mut b);
    b.build()
}

/// Formats a nanosecond value for table cells.
pub fn ns(v: u64) -> String {
    fmt_nanos(v)
}

/// Per-interval (median, p999) read-latency rows within a window.
/// Thin wrapper over [`rocksteady_metrics::timeline::latency_timeline`],
/// the one shared percentile path every figure uses.
pub fn latency_rows(
    stats: &rocksteady_workload::ClientStats,
    from: Nanos,
    to: Nanos,
) -> Vec<(Nanos, u64, u64)> {
    timeline::latency_timeline(&stats.read_latency, from, to)
        .into_iter()
        .map(|p| (p.at, p.p50, p.p999))
        .collect()
}

/// Per-bucket (median, p999) read latency merged across all of a
/// cluster's clients — the exact series Figures 10 and 13 plot.
pub fn merged_latency_rows(cluster: &Cluster, from: Nanos, to: Nanos) -> Vec<(Nanos, u64, u64)> {
    let borrows: Vec<_> = cluster.client_stats.iter().map(|s| s.borrow()).collect();
    timeline::merged_latency_timeline(borrows.iter().map(|s| &s.read_latency), from, to)
        .into_iter()
        .map(|p| (p.at, p.p50, p.p999))
        .collect()
}

/// Per-interval completed-ops/s rows within a window.
pub fn throughput_rows(
    stats: &rocksteady_workload::ClientStats,
    from: Nanos,
    to: Nanos,
) -> Vec<(Nanos, f64)> {
    timeline::throughput_timeline(&stats.objects, from, to)
}

/// Total completed ops/s per bucket summed across all of a cluster's
/// clients — the series Figures 9 and 14 plot.
pub fn total_throughput_rows(cluster: &Cluster, from: Nanos, to: Nanos) -> Vec<(Nanos, f64)> {
    let borrows: Vec<_> = cluster.client_stats.iter().map(|s| s.borrow()).collect();
    timeline::merged_throughput_timeline(borrows.iter().map(|s| &s.objects), from, to)
}

/// Where [`export_csv`] writes figure data: `target/figures/` at the
/// *workspace* root, regardless of the working directory cargo runs the
/// bench with (it uses the package directory, not the workspace root).
pub const FIGURE_DATA_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/figures");

/// Writes one figure's plotted series as CSV under
/// [`FIGURE_DATA_DIR`]`/<stem>.csv` and returns the path. `header` is a
/// comma-separated column list; each row must have as many cells as the
/// header has columns (checked, so a figure can't silently emit ragged
/// data). Every fig bench exports through here — one command
/// (`cargo bench --bench figNN_...`) regenerates both the console
/// report and the machine-readable series.
pub fn export_csv(stem: &str, header: &str, rows: &[Vec<String>]) -> std::path::PathBuf {
    let cols = header.split(',').count();
    let mut out = String::with_capacity(64 * (rows.len() + 1));
    out.push_str(header);
    out.push('\n');
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            row.len(),
            cols,
            "export_csv({stem}): row {i} has {} cells, header has {cols}",
            row.len()
        );
        out.push_str(&row.join(","));
        out.push('\n');
    }
    let dir = std::path::Path::new(FIGURE_DATA_DIR);
    std::fs::create_dir_all(dir).expect("create figure-data dir");
    // Canonicalize for a readable path (drops the `crates/bench/../..`
    // the workspace-root anchoring introduces).
    let dir = dir.canonicalize().expect("canonicalize figure-data dir");
    let path = dir.join(format!("{stem}.csv"));
    std::fs::write(&path, out).expect("write figure csv");
    println!("wrote {}", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_csv_roundtrip() {
        let rows = vec![
            vec!["0".to_string(), "42".to_string()],
            vec!["1000".to_string(), "43".to_string()],
        ];
        let path = export_csv("test_export_roundtrip", "t_ns,value", &rows);
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "t_ns,value");
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 2, "ragged row: {line}");
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    #[should_panic(expected = "row 0 has 1 cells")]
    fn export_csv_rejects_ragged_rows() {
        export_csv("test_export_ragged", "a,b", &[vec!["only-one".to_string()]]);
    }

    #[test]
    fn latency_rows_use_shared_timeline_path() {
        let mut stats = rocksteady_workload::ClientStats::new(MILLISECOND);
        stats.record_read(0, 5_000);
        stats.record_read(10, 6_000);
        stats.record_read(2 * MILLISECOND, 7_000);
        let rows = latency_rows(&stats, 0, 10 * MILLISECOND);
        assert_eq!(rows.len(), 2, "empty intervals are skipped");
        assert_eq!(rows[0].0, 0);
        assert!(rows[0].1 >= 4_900 && rows[0].2 >= rows[0].1);
        let tp = throughput_rows(&stats, 0, 10 * MILLISECOND);
        assert!(tp.is_empty(), "no objects recorded yet");
    }
}
