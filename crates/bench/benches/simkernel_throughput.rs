//! Event-kernel throughput: how fast the simulation substrate itself
//! runs, independent of any paper figure.
//!
//! ROADMAP item 2 is "simulate paper scale on two host cores"; the
//! bottleneck is the kernel hot path (event queue, record storage,
//! dispatch bookkeeping). This bench pins that cost with three fixed
//! scenarios and persists the numbers to `BENCH_simkernel.json` so the
//! calendar-queue/slab/batched-dispatch work is machine-checkable:
//!
//! - `kernel/ping_storm` — pure `simnet` event churn: 128 actors with
//!   2 048 messages in perpetual flight plus periodic near timers and a
//!   sparse far-horizon timer population. Measures raw events/sec of the
//!   scheduler with trivial actor bodies.
//! - `harness/migration` — the standard harness scenario (the same
//!   shape as `tests/determinism.rs`): 3 servers, YCSB-B at 50 k ops/s
//!   over 5 k keys, one migration at t=5 ms, run to t=100 ms. Measures
//!   events/sec with the full server/actor stack on the path.
//! - `paper/8node_10M` — the paper-direction scale check: 10 M records
//!   spread over 8 nodes, one whole-tablet migration window. Measures
//!   records-simulated/sec (load + replay) and must complete within the
//!   bench timeout on two host cores.
//!
//! `ROCKSTEADY_BENCH_SMOKE=1` shrinks every scenario and redirects the
//! JSON to `target/simkernel-smoke.json` (CI smoke path); the committed
//! `BENCH_simkernel.json` always holds full-scale numbers.

use std::time::Instant;

use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use rocksteady_bench::{upper, MID, TABLE};
use rocksteady_cluster::{ClusterBuilder, ClusterConfig, ControlCmd};
use rocksteady_common::wire::{SimMessage, WireSized};
use rocksteady_common::{HashRange, MigrationId, Nanos, ServerId, MILLISECOND};
use rocksteady_simnet::{Actor, ActorId, Ctx, Event, NicConfig, Simulation};
use rocksteady_workload::YcsbConfig;

fn smoke() -> bool {
    std::env::var("ROCKSTEADY_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Scheduler A/B override for perf triage: `ROCKSTEADY_SCHED=heap`
/// runs the retired binary-heap kernel; anything else (or unset) runs
/// the default calendar queue.
fn sched() -> rocksteady_cluster::SchedulerKind {
    match std::env::var("ROCKSTEADY_SCHED").as_deref() {
        Ok("heap") => rocksteady_cluster::SchedulerKind::BinaryHeap,
        _ => rocksteady_cluster::SchedulerKind::default(),
    }
}

// ------------------------------------------------------------------
// Scenario 1: kernel/ping_storm — raw scheduler throughput.
// ------------------------------------------------------------------

#[derive(Debug)]
struct Hop {
    bytes: u64,
}

impl WireSized for Hop {
    fn wire_size(&self) -> u64 {
        self.bytes
    }
}

impl SimMessage for Hop {}

/// Forwards every message one hop around the ring; keeps a short
/// periodic timer armed and one long far-horizon timer outstanding, so
/// the queue mixes near deliveries with sparse distant deadlines.
struct StormActor {
    next: ActorId,
    horizon: Nanos,
}

const TOKEN_NEAR: u64 = 1;
const TOKEN_FAR: u64 = 2;

impl Actor<Hop> for StormActor {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, Hop>) {
        ctx.timer(100_000, TOKEN_NEAR);
        ctx.timer(2 * MILLISECOND, TOKEN_FAR);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Hop>, event: Event<Hop>) {
        match event {
            Event::Message { payload, .. } => {
                if ctx.now() < self.horizon {
                    ctx.send(self.next, payload);
                }
            }
            Event::Timer { token } => {
                if ctx.now() < self.horizon {
                    let period = if token == TOKEN_NEAR {
                        100_000
                    } else {
                        2 * MILLISECOND
                    };
                    ctx.timer(period, token);
                }
            }
        }
    }
}

/// Seeds the storm: fires `in_flight` initial messages spread over the
/// ring from actor 0's start hook.
struct StormSeeder {
    ring: usize,
    in_flight: usize,
    next: ActorId,
    horizon: Nanos,
}

impl Actor<Hop> for StormSeeder {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, Hop>) {
        for i in 0..self.in_flight {
            // Tiny frames: wire time stays small so the ring stays hot.
            ctx.send(1 + (i % self.ring), Hop { bytes: 64 });
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Hop>, event: Event<Hop>) {
        if let Event::Message { payload, .. } = event {
            if ctx.now() < self.horizon {
                ctx.send(self.next, payload);
            }
        }
    }
}

fn build_storm(horizon: Nanos, ring: usize, in_flight: usize) -> Simulation<Hop> {
    let nic = NicConfig {
        bytes_per_ns: 5.0,
        one_way_latency_ns: 1_800,
    };
    let mut sim = Simulation::new(nic, 7);
    sim.add_actor(Box::new(StormSeeder {
        ring,
        in_flight,
        next: 1,
        horizon,
    }));
    for i in 0..ring {
        sim.add_actor(Box::new(StormActor {
            next: 1 + ((i + 1) % ring),
            horizon,
        }));
    }
    sim
}

fn run_storm(horizon: Nanos, ring: usize, in_flight: usize) -> Simulation<Hop> {
    let mut sim = build_storm(horizon, ring, in_flight);
    sim.run_to_idle();
    sim
}

// ------------------------------------------------------------------
// Scenario 2: harness/migration — the standard harness scenario.
// ------------------------------------------------------------------

fn harness_config() -> ClusterConfig {
    ClusterConfig {
        servers: 3,
        workers: 4,
        replicas: 2,
        sample_interval: MILLISECOND,
        series_interval: 10 * MILLISECOND,
        scheduler: sched(),
        ..ClusterConfig::default()
    }
}

fn build_migration(keys: u64, ops_per_sec: f64) -> rocksteady_cluster::Cluster {
    let mut b = ClusterBuilder::new(harness_config());
    let dir = b.directory();
    b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, keys, ops_per_sec));
    b.at(
        5 * MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    cluster.create_table(TABLE, &[(HashRange::full(), ServerId(0))]);
    cluster.load_table(TABLE, keys, 30, 100);
    cluster.seed_backups();
    cluster.split_tablet(TABLE, MID);
    cluster
}

fn run_migration(keys: u64, ops_per_sec: f64, until: Nanos) -> rocksteady_cluster::Cluster {
    let mut cluster = build_migration(keys, ops_per_sec);
    cluster.run_until(until);
    cluster
}

// ------------------------------------------------------------------
// Scenario 3: paper/8node_10M — paper-direction scale, timed manually.
// ------------------------------------------------------------------

struct PaperRun {
    records: u64,
    replayed: u64,
    wall_secs: f64,
}

fn run_paper_scale(records: u64) -> PaperRun {
    let servers = 8usize;
    let cfg = ClusterConfig {
        servers,
        workers: 4,
        replicas: 0,
        // ~5 records/bucket at full scale: inline slots absorb the load.
        hash_buckets: ((records / servers as u64) as usize / 4).next_power_of_two(),
        segment_bytes: 1 << 23,
        sample_interval: 10 * MILLISECOND,
        series_interval: 100 * MILLISECOND,
        scheduler: sched(),
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(cfg);
    b.at(
        MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: HashRange {
                start: (u64::MAX / servers as u64) * (servers as u64 - 1) + 1,
                end: u64::MAX,
            },
            source: ServerId(servers as u32 - 1),
            target: ServerId(0),
        },
    );
    let mut cluster = b.build();
    // Even ownership split across all 8 nodes.
    let stride = u64::MAX / servers as u64;
    let mut placement = Vec::new();
    for s in 0..servers as u64 {
        let start = if s == 0 { 0 } else { stride * s + 1 };
        let end = if s == servers as u64 - 1 {
            u64::MAX
        } else {
            stride * (s + 1)
        };
        placement.push((HashRange { start, end }, ServerId(s as u32)));
    }
    cluster.create_table(TABLE, &placement);

    let start = Instant::now();
    cluster.load_table(TABLE, records, 30, 100);
    let loaded = Instant::now();
    cluster.run_until(25 * MILLISECOND);
    let wall_secs = start.elapsed().as_secs_f64();
    println!(
        "  load {:.2}s, run {:.2}s, events {}",
        (loaded - start).as_secs_f64(),
        wall_secs - (loaded - start).as_secs_f64(),
        cluster.sim.events_processed()
    );
    let replayed = cluster.server_stats[&ServerId(0)].records_replayed.get();
    PaperRun {
        records,
        replayed,
        wall_secs,
    }
}

// ------------------------------------------------------------------
// Criterion plumbing + JSON emission.
// ------------------------------------------------------------------

fn bench_kernel(c: &mut Criterion) {
    let (horizon, ring, in_flight) = if smoke() {
        (MILLISECOND, 16, 128)
    } else {
        (4 * MILLISECOND, 128, 2_048)
    };
    let events = run_storm(horizon, ring, in_flight).events_processed();
    assert!(events > 0, "storm produced no events");
    let mut g = c.benchmark_group("kernel");
    g.throughput(Throughput::Elements(events));
    g.bench_function("ping_storm/events", |b| {
        b.iter_batched(
            || (),
            // Returning the simulation keeps its teardown off the clock.
            |()| {
                let sim = run_storm(horizon, ring, in_flight);
                assert_eq!(
                    sim.events_processed(),
                    events,
                    "storm must be deterministic"
                );
                sim
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn bench_harness(c: &mut Criterion) {
    let (keys, rate, until) = if smoke() {
        (500, 20_000.0, 20 * MILLISECOND)
    } else {
        (5_000, 50_000.0, 100 * MILLISECOND)
    };
    let events = run_migration(keys, rate, until).sim.events_processed();
    assert!(events > 0, "migration scenario produced no events");
    let mut g = c.benchmark_group("harness");
    g.throughput(Throughput::Elements(events));
    g.bench_function("migration/events", |b| {
        b.iter_batched(
            || (),
            // Returning the cluster keeps its teardown off the clock.
            |()| {
                let cluster = run_migration(keys, rate, until);
                assert_eq!(
                    cluster.sim.events_processed(),
                    events,
                    "scenario must be deterministic"
                );
                cluster
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(2)
        .measurement_time(std::time::Duration::from_millis(10))
        .warm_up_time(std::time::Duration::from_millis(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_kernel, bench_harness
}

/// Pre-PR kernel numbers (global `BinaryHeap` scheduler, per-record
/// copies on read/replay/replication, per-message dispatch accounting),
/// measured on this machine with identical scenarios — the denominator
/// of the calendar-queue/slab/batched-dispatch speedup. Re-measured
/// against a worktree pinned at the pre-PR commit, interleaved with the
/// optimized build on the same machine state (the host's absolute speed
/// drifts; only same-session A/B ratios are meaningful). Medians of 30
/// warm in-process rounds for the harness scenario.
const SEED_BASELINE: &str = r#"  "seed_baseline": [
    {"id": "kernel/ping_storm/events", "ns_per_iter": 552500000.0, "events_per_sec": 8162615.4},
    {"id": "harness/migration/events", "ns_per_iter": 40450000.0, "events_per_sec": 808974.0},
    {"id": "paper/8node_10M/records", "wall_secs": 37.78, "records_per_sec": 264690.3}
  ],
"#;

fn emit_json(paper: &PaperRun) {
    let results = criterion::take_results();
    let mut out = String::from("{\n  \"bench\": \"simkernel_throughput\",\n");
    out.push_str(SEED_BASELINE);
    out.push_str("  \"results\": [\n");
    for m in results.iter() {
        let per_sec = match m.throughput {
            Some(Throughput::Elements(n)) => n as f64 * m.iters_per_sec(),
            Some(Throughput::Bytes(n)) => n as f64 * m.iters_per_sec(),
            None => m.iters_per_sec(),
        };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"events_per_sec\": {:.1}}},\n",
            m.id, m.ns_per_iter, per_sec,
        ));
    }
    out.push_str(&format!(
        "    {{\"id\": \"paper/8node_10M/records\", \"wall_secs\": {:.2}, \"records_per_sec\": {:.1}, \"records\": {}, \"replayed\": {}}}\n",
        paper.wall_secs,
        paper.records as f64 / paper.wall_secs,
        paper.records,
        paper.replayed,
    ));
    out.push_str("  ]\n}\n");
    let path: std::path::PathBuf = if smoke() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target");
        std::fs::create_dir_all(dir).expect("create target dir");
        format!("{dir}/simkernel-smoke.json").into()
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simkernel.json").into()
    };
    std::fs::write(&path, &out).expect("write simkernel bench json");
    println!("wrote {}", path.display());
}

// Custom main instead of criterion_main! so the paper-scale run is
// timed once (not criterion-sampled) and everything lands in one JSON.
fn main() {
    if let Ok(rounds) = std::env::var("ROCKSTEADY_BENCH_SPLIT") {
        for round in 0..rounds.parse::<u32>().unwrap_or(3) {
            let t0 = Instant::now();
            let mut b = ClusterBuilder::new(harness_config());
            let dir = b.directory();
            b.add_ycsb(YcsbConfig::ycsb_b(dir, TABLE, 5_000, 50_000.0));
            b.at(
                5 * MILLISECOND,
                ControlCmd::Migrate {
                    id: MigrationId(1),
                    table: TABLE,
                    range: upper(),
                    source: ServerId(0),
                    target: ServerId(1),
                },
            );
            let mut cluster = b.build();
            let t1 = Instant::now();
            cluster.create_table(TABLE, &[(HashRange::full(), ServerId(0))]);
            cluster.load_table(TABLE, 5_000, 30, 100);
            let t2 = Instant::now();
            cluster.seed_backups();
            cluster.split_tablet(TABLE, MID);
            let t3 = Instant::now();
            cluster.run_until(100 * MILLISECOND);
            let t4 = Instant::now();
            println!(
                "round {round}: build {:.1} ms, load {:.1} ms, seed {:.1} ms, run {:.1} ms, events {}",
                (t1 - t0).as_secs_f64() * 1e3,
                (t2 - t1).as_secs_f64() * 1e3,
                (t3 - t2).as_secs_f64() * 1e3,
                (t4 - t3).as_secs_f64() * 1e3,
                cluster.sim.events_processed()
            );
        }
        return;
    }
    benches();
    let records = if smoke() { 100_000 } else { 10_000_000 };
    println!("running paper-direction scenario ({records} records / 8 nodes)…");
    let paper = run_paper_scale(records);
    println!(
        "paper/8node_10M: {} records (+{} replayed) in {:.2}s = {:.0} records/s",
        paper.records,
        paper.replayed,
        paper.wall_secs,
        paper.records as f64 / paper.wall_secs
    );
    emit_json(&paper);
}
