//! Figure 12: source-side dispatch load across migration start, as a
//! function of workload skew (§4.3).
//!
//! The claim: regardless of skew θ ∈ {0, 0.5, 0.99, 1.5}, batched
//! PriorityPulls hide the extra dispatch load the background Pulls put
//! on the source — its dispatch utilization stays roughly flat from
//! migration start to completion (the eager ownership transfer sheds as
//! much load as the Pulls add).

use rocksteady_bench::{check, export_csv, mean, print_table1, standard_setup, upper, TABLE};
use rocksteady_cluster::{ClusterBuilder, ClusterConfig, ControlCmd};
use rocksteady_common::zipf::KeyDist;
use rocksteady_common::{MigrationId, Nanos, ServerId, MILLISECOND};
use rocksteady_workload::YcsbConfig;

const KEYS: u64 = 300_000;
const CLIENTS: usize = 8;
const RATE_PER_CLIENT: f64 = 95_000.0;
const MIG_AT: Nanos = 500 * MILLISECOND;
const END: Nanos = 1_200 * MILLISECOND;

fn run(theta: f64) -> (f64, f64, Vec<(Nanos, f64)>) {
    let cfg = ClusterConfig {
        servers: 4,
        workers: 12,
        replicas: 2,
        segment_bytes: 1 << 20,
        sample_interval: 10 * MILLISECOND,
        series_interval: 20 * MILLISECOND,
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    for i in 0..CLIENTS {
        let mut y = YcsbConfig::ycsb_b(dir.clone(), TABLE, KEYS, RATE_PER_CLIENT);
        y.dist = if theta == 0.0 {
            KeyDist::Uniform
        } else {
            KeyDist::Zipfian { theta }
        };
        y.max_outstanding = 128;
        y.seed = 300 + i as u64;
        b.add_ycsb(y);
    }
    b.at(
        MIG_AT,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    standard_setup(&mut cluster, KEYS, 1_000);
    cluster.run_until(END);

    let util = cluster.util.borrow();
    let src = &util.by_server[&ServerId(0)];
    let pre: Vec<f64> = src
        .iter()
        .filter(|p| p.at >= MIG_AT - 200 * MILLISECOND && p.at < MIG_AT)
        .map(|p| p.dispatch)
        .collect();
    let finished = cluster.server_stats[&ServerId(1)]
        .migration_finished_at
        .get()
        .unwrap_or(END);
    let during: Vec<f64> = src
        .iter()
        .filter(|p| p.at >= MIG_AT && p.at < finished.max(MIG_AT + 20 * MILLISECOND))
        .map(|p| p.dispatch)
        .collect();
    let series = src
        .iter()
        .filter(|p| p.at >= MIG_AT - 100 * MILLISECOND && p.at < finished + 100 * MILLISECOND)
        .map(|p| (p.at, p.dispatch))
        .collect();
    (mean(&pre), mean(&during), series)
}

fn main() {
    let cfg = ClusterConfig {
        servers: 4,
        workers: 12,
        replicas: 2,
        ..ClusterConfig::default()
    };
    print_table1(
        "Figure 12: source dispatch load vs workload skew",
        &cfg,
        &format!("{KEYS} records x 1 KB, {CLIENTS} clients x {RATE_PER_CLIENT:.0} ops/s"),
    );

    println!(
        "{:>6} {:>18} {:>20} {:>10}",
        "theta", "dispatch before", "dispatch during mig", "delta"
    );
    let mut ok = true;
    let mut series_rows = Vec::new();
    for theta in [0.0, 0.5, 0.99, 1.5] {
        let (pre, during, series) = run(theta);
        println!(
            "{:>6} {:>18.2} {:>20.2} {:>+10.2}",
            theta,
            pre,
            during,
            during - pre
        );
        for (t, dispatch) in &series {
            series_rows.push(vec![
                theta.to_string(),
                t.to_string(),
                format!("{dispatch:.4}"),
            ]);
        }
        // The figure's claim: source dispatch stays roughly flat across
        // migration start, at every skew.
        ok &= check(
            during <= pre + 0.15,
            &format!("theta={theta}: source dispatch stays flat across migration start"),
        );
    }
    export_csv(
        "fig12_source_dispatch_by_skew",
        "theta,t_ns,dispatch",
        &series_rows,
    );
    std::process::exit(i32::from(!ok));
}
