//! Figure 15: pull and replay scalability (§4.5).
//!
//! Isolates each end of the migration pipeline: sweep the worker count
//! on one side while the other side has ample capacity, with no client
//! load, and measure the achieved migration rate for small (128 B) and
//! large (1 KB) objects. The paper's findings:
//!
//! - source-side pull processing reaches ~5.7 GB/s for 128 B objects;
//! - target-side replay reaches ~3 GB/s — the source outpaces the
//!   target 1.8–2.4× on equal cores, so replay binds migration;
//! - for 1 KB objects neither side limits migration before the NIC's
//!   5 GB/s line rate does.

use rocksteady_bench::{check, print_table1, TABLE};
use rocksteady_cluster::{ClusterBuilder, ClusterConfig, ControlCmd};
use rocksteady_common::time::mb_per_sec;
use rocksteady_common::{HashRange, MigrationId, ServerId, MILLISECOND, SECOND};

#[derive(Clone, Copy, PartialEq)]
enum Side {
    Source,
    Target,
}

/// Migrates a whole table with `workers` on the measured side and 24 on
/// the other; returns the achieved rate in MB/s.
fn run(side: Side, workers: usize, value_len: usize) -> f64 {
    let keys: u64 = match value_len {
        v if v >= 1_000 => 60_000,
        _ => 200_000,
    };
    let mut cfg = ClusterConfig {
        servers: 2,
        workers: 24,
        replicas: 0,
        segment_bytes: 1 << 20,
        sample_interval: 10 * MILLISECOND,
        ..ClusterConfig::default()
    };
    let measured = match side {
        Side::Source => ServerId(0),
        Side::Target => ServerId(1),
    };
    cfg.workers_by_server = vec![(measured, workers)];
    // Enough partitions to keep every worker fed (§3.1.1: "a small
    // constant factor more partitions than worker cores").
    cfg.migration.partitions = (2 * workers).max(8);
    let mut b = ClusterBuilder::new(cfg);
    b.at(
        MILLISECOND,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: HashRange::full(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    cluster.create_table(TABLE, &[(HashRange::full(), ServerId(0))]);
    cluster.load_table(TABLE, keys, 30, value_len);
    let finished = cluster
        .run_until_migrated(ServerId(1), MigrationId(1), 30 * SECOND)
        .expect("migration completes");
    let bytes = cluster.server_stats[&ServerId(1)].bytes_migrated_in.get();
    mb_per_sec(bytes, finished - MILLISECOND)
}

fn main() {
    let cfg = ClusterConfig {
        servers: 2,
        workers: 24,
        replicas: 0,
        ..ClusterConfig::default()
    };
    print_table1(
        "Figure 15: source/target migration scalability",
        &cfg,
        "unloaded; one side's worker count swept, the other fixed at 24",
    );

    let sweep = [1usize, 2, 4, 8, 12, 16];
    println!(
        "{:>8} {:>18} {:>18} {:>18} {:>18}",
        "workers", "src 128B (MB/s)", "tgt 128B (MB/s)", "src 1KB (MB/s)", "tgt 1KB (MB/s)"
    );
    let mut src128 = Vec::new();
    let mut tgt128 = Vec::new();
    let mut src1k = Vec::new();
    let mut tgt1k = Vec::new();
    for &w in &sweep {
        let s128 = run(Side::Source, w, 100);
        let t128 = run(Side::Target, w, 100);
        let s1k = run(Side::Source, w, 1_000);
        let t1k = run(Side::Target, w, 1_000);
        println!("{w:>8} {s128:>18.0} {t128:>18.0} {s1k:>18.0} {t1k:>18.0}");
        src128.push(s128);
        tgt128.push(t128);
        src1k.push(s1k);
        tgt1k.push(t1k);
    }
    println!("\nline rate: 5000 MB/s");

    let mut ok = true;
    // Scaling: both sides speed up substantially from 1 to 8 workers.
    ok &= check(
        src128[3] > 2.5 * src128[0],
        &format!(
            "source pull processing scales with workers ({:.0} -> {:.0} MB/s)",
            src128[0], src128[3]
        ),
    );
    ok &= check(
        tgt128[3] > 2.5 * tgt128[0],
        &format!(
            "target replay scales with workers ({:.0} -> {:.0} MB/s)",
            tgt128[0], tgt128[3]
        ),
    );
    // §4.5: replay binds — with equal cores the source-limited rate
    // exceeds the target-limited rate by ~1.8-2.4x for small objects.
    let ratio = src128[4] / tgt128[4].max(1.0);
    ok &= check(
        (1.3..=3.0).contains(&ratio),
        &format!("source outpaces target replay on small objects ({ratio:.2}x; paper 1.8-2.4x)"),
    );
    // Absolute anchors at 12 workers (the paper's core count).
    ok &= check(
        (3_500.0..=8_000.0).contains(&src128[4]),
        &format!(
            "source ~5.7 GB/s for 128 B at 12 workers (got {:.1} GB/s)",
            src128[4] / 1e3
        ),
    );
    ok &= check(
        (2_000.0..=4_200.0).contains(&tgt128[4]),
        &format!(
            "target ~3 GB/s for 128 B at 12 workers (got {:.1} GB/s)",
            tgt128[4] / 1e3
        ),
    );
    // 1 KB objects: the NIC (not either CPU side) limits migration.
    ok &= check(
        src1k[4] > 3_000.0 && tgt1k[4] > 3_000.0,
        &format!(
            "for 1 KB objects neither side limits below ~line rate (src {:.1}, tgt {:.1} GB/s)",
            src1k[4] / 1e3,
            tgt1k[4] / 1e3
        ),
    );
    std::process::exit(i32::from(!ok));
}
