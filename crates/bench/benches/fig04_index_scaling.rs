//! Figure 4: index scaling as a function of read throughput (§2.1).
//!
//! A table with a secondary index, driven by 4-record index scans whose
//! start keys are Zipfian (θ = 0.5). Three placements:
//!
//! - `1i+1t`: index on one server, table on one server (paper's
//!   baseline — breaks down first);
//! - `2i+1t`: index split over two servers (paper's winner: +54%
//!   throughput at the 100 µs 99.9th-percentile SLA);
//! - `2i+2t`: table also split — slightly worse throughput and ~26%
//!   more dispatch load, because every scan's record fetch now fans out
//!   to two tablets.

use rocksteady_bench::{check, mean, print_table1, TABLE};
use rocksteady_cluster::{Cluster, ClusterBuilder, ClusterConfig};
use rocksteady_common::ids::IndexId;
use rocksteady_common::time::fmt_nanos;
use rocksteady_common::zipf::KeyDist;
use rocksteady_common::{CostModel, HashRange, ServerId, MILLISECOND, SECOND};
use rocksteady_master::Indexlet;
use rocksteady_workload::scan::secondary_key;
use rocksteady_workload::ScanConfig;

const KEYS: u64 = 200_000;
const WARMUP: u64 = 100 * MILLISECOND;
const END: u64 = 400 * MILLISECOND;
const CLIENTS: usize = 8;

#[derive(Clone, Copy, PartialEq)]
enum Setup {
    OneIndexOneTablet,
    TwoIndexOneTablet,
    TwoIndexTwoTablets,
}

impl Setup {
    fn name(self) -> &'static str {
        match self {
            Setup::OneIndexOneTablet => "1 indexlet, 1 tablet",
            Setup::TwoIndexOneTablet => "2 indexlets, 1 tablet",
            Setup::TwoIndexTwoTablets => "2 indexlets, 2 tablets",
        }
    }
}

struct Row {
    achieved: f64,
    p999: u64,
    total_dispatch: f64,
}

fn build(setup: Setup, scans_per_sec: f64) -> Cluster {
    // SLIK-style range scans over a B-tree of a million 30 B keys cost
    // tens of microseconds of worker time (descent + key comparisons +
    // cache misses); that is what makes the indexlet the contended
    // resource this figure studies — the paper's 1i+1t configuration
    // breaks down long before the backing table's dispatch does.
    let cost = CostModel {
        index_lookup_ns: 25_000,
        ..CostModel::default()
    };
    let cfg = ClusterConfig {
        servers: 4,
        workers: 12,
        replicas: 0,
        cost,
        sample_interval: 20 * MILLISECOND,
        series_interval: 20 * MILLISECOND,
        ..ClusterConfig::default()
    };
    let index = IndexId(0);
    let split_sec = secondary_key(KEYS / 2, 30);
    let indexlets = match setup {
        Setup::OneIndexOneTablet => vec![(Vec::new(), None, ServerId(2))],
        _ => vec![
            (Vec::new(), Some(split_sec.clone()), ServerId(2)),
            (split_sec.clone(), None, ServerId(3)),
        ],
    };
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    for i in 0..CLIENTS {
        b.add_scan(ScanConfig {
            dir: dir.clone(),
            table: TABLE,
            index,
            sec_key_len: 30,
            num_keys: KEYS,
            indexlets: indexlets.clone(),
            scan_len: 4,
            dist: KeyDist::Zipfian { theta: 0.5 },
            scans_per_sec: scans_per_sec / CLIENTS as f64,
            max_outstanding: 64,
            seed: 10 + i as u64,
        });
    }
    let mut cluster = b.build();
    let mid = u64::MAX / 2 + 1;
    match setup {
        Setup::TwoIndexTwoTablets => {
            cluster.create_table(
                TABLE,
                &[
                    (
                        HashRange {
                            start: 0,
                            end: mid - 1,
                        },
                        ServerId(0),
                    ),
                    (
                        HashRange {
                            start: mid,
                            end: u64::MAX,
                        },
                        ServerId(1),
                    ),
                ],
            );
        }
        _ => cluster.create_table(TABLE, &[(HashRange::full(), ServerId(0))]),
    }
    cluster.load_table(TABLE, KEYS, 30, 100);

    // Populate the indexlet(s).
    let mut whole = Indexlet::new(TABLE, index, Vec::new(), None);
    for rank in 0..KEYS {
        whole.insert(
            &secondary_key(rank, 30),
            rocksteady_workload::core::primary_hash(rank, 30),
        );
    }
    if setup == Setup::OneIndexOneTablet {
        cluster.node(ServerId(2)).master.add_indexlet(whole);
    } else {
        let upper = whole.split_at(&split_sec);
        cluster.node(ServerId(2)).master.add_indexlet(whole);
        cluster.node(ServerId(3)).master.add_indexlet(upper);
    }
    cluster
}

fn run(setup: Setup, scans_per_sec: f64) -> Row {
    let mut cluster = build(setup, scans_per_sec);
    cluster.run_until(END);

    let mut lat = rocksteady_common::Histogram::new();
    let mut scans = 0u64;
    for stats in &cluster.client_stats {
        let s = stats.borrow();
        for (at, h) in s.read_latency.iter() {
            if at >= WARMUP {
                lat.merge(h);
                scans += h.count();
            }
        }
    }
    let util = cluster.util.borrow();
    let mut per_server_dispatch = Vec::new();
    for points in util.by_server.values() {
        let d: Vec<f64> = points
            .iter()
            .filter(|p| p.at >= WARMUP)
            .map(|p| p.dispatch)
            .collect();
        per_server_dispatch.push(mean(&d));
    }
    Row {
        achieved: scans as f64 * 4.0 / ((END - WARMUP) as f64 / SECOND as f64),
        p999: lat.percentile(0.999),
        total_dispatch: per_server_dispatch.iter().sum(),
    }
}

fn main() {
    let cfg = ClusterConfig {
        servers: 4,
        workers: 12,
        replicas: 0,
        ..ClusterConfig::default()
    };
    print_table1(
        "Figure 4: index scaling vs read throughput",
        &cfg,
        &format!("{KEYS} records x 100 B, 30 B primary + secondary keys, 4-record scans, Zipf 0.5"),
    );

    let rates = [1_200_000.0f64, 1_800_000.0, 2_400_000.0, 3_200_000.0];
    let setups = [
        Setup::OneIndexOneTablet,
        Setup::TwoIndexOneTablet,
        Setup::TwoIndexTwoTablets,
    ];
    println!(
        "{:<24} {:>14} {:>16} {:>10} {:>16}",
        "configuration", "offered obj/s", "achieved obj/s", "99.9th", "total dispatch"
    );
    let mut table = Vec::new();
    for setup in setups {
        for rate in rates {
            let row = run(setup, rate / 4.0); // offered objects/s -> scans/s
            println!(
                "{:<24} {:>14.0} {:>16.0} {:>10} {:>16.2}",
                setup.name(),
                rate,
                row.achieved,
                fmt_nanos(row.p999),
                row.total_dispatch
            );
            table.push((setup, rate, row));
        }
        println!();
    }

    // Shape checks at the highest offered load.
    let at = |s: Setup, r: f64| {
        table
            .iter()
            .find(|(ts, tr, _)| *ts == s && *tr == r)
            .map(|(_, _, row)| row)
            .unwrap()
    };
    let a_hi = at(Setup::OneIndexOneTablet, 2_400_000.0);
    let b_hi = at(Setup::TwoIndexOneTablet, 2_400_000.0);
    let c_hi = at(Setup::TwoIndexTwoTablets, 2_400_000.0);
    let a_lo = at(Setup::OneIndexOneTablet, 1_200_000.0);

    let mut ok = true;
    ok &= check(
        a_lo.p999 < 100_000,
        &format!(
            "at low load one indexlet + one tablet meets the 100us SLA ({})",
            fmt_nanos(a_lo.p999)
        ),
    );
    ok &= check(
        a_hi.p999 > 2 * b_hi.p999,
        &format!(
            "at high load the single indexlet's tail explodes vs the split ({} vs {})",
            fmt_nanos(a_hi.p999),
            fmt_nanos(b_hi.p999)
        ),
    );
    ok &= check(
        b_hi.achieved > 1.2 * a_hi.achieved || a_hi.p999 > 100_000,
        &format!(
            "splitting the index raises throughput under the SLA (paper: +54%; {:.0} vs {:.0})",
            b_hi.achieved, a_hi.achieved
        ),
    );
    ok &= check(
        c_hi.total_dispatch > b_hi.total_dispatch,
        &format!(
            "also splitting the table adds dispatch load for the same work (paper: +26%; {:.2} vs {:.2})",
            c_hi.total_dispatch, b_hi.total_dispatch
        ),
    );
    std::process::exit(i32::from(!ok));
}
