//! Figures 9, 10, 11: YCSB-B timelines across a live migration, for
//! (a) Rocksteady, (b) Rocksteady without PriorityPulls, and (c) the
//! source-retains-ownership baseline (§4.2, §4.3).
//!
//! Data is scaled ~1/430 relative to the paper (32 MB migrated instead
//! of 13.9 GB), so the migration window shrinks proportionally; the
//! timeline buckets here are 20 ms where the paper's are 1 s. Rates,
//! utilizations, and latency distributions are directly comparable.

use rocksteady_bench::{
    check, export_csv, mean, merged_latency_rows, print_table1, standard_setup,
    total_throughput_rows, upper, TABLE,
};
use rocksteady_cluster::{Cluster, ClusterBuilder, ClusterConfig, ControlCmd};
use rocksteady_common::time::{fmt_nanos, mb_per_sec};
use rocksteady_common::{MigrationId, Nanos, ServerId, MILLISECOND, SECOND};
use rocksteady_master::TabletRole;
use rocksteady_workload::YcsbConfig;

const KEYS: u64 = 300_000;
const CLIENTS: usize = 8;
const RATE_PER_CLIENT: f64 = 95_000.0; // ~80% source dispatch load
const MIG_AT: Nanos = SECOND;
const END: Nanos = 2 * SECOND;

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Rocksteady,
    NoPriorityPulls,
    SourceRetains,
}

struct Out {
    name: &'static str,
    cluster: Cluster,
    mig_window: (Nanos, Nanos),
    rate_mbps: f64,
}

fn run(variant: Variant) -> Out {
    let mut cfg = ClusterConfig {
        servers: 4,
        workers: 12,
        replicas: 2,
        segment_bytes: 1 << 20,
        sample_interval: 10 * MILLISECOND,
        series_interval: 20 * MILLISECOND,
        ..ClusterConfig::default()
    };
    if variant == Variant::NoPriorityPulls {
        cfg.migration.priority_pulls = false;
    }
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    for i in 0..CLIENTS {
        let mut y = YcsbConfig::ycsb_b(dir.clone(), TABLE, KEYS, RATE_PER_CLIENT);
        y.max_outstanding = 128;
        y.seed = 100 + i as u64;
        b.add_ycsb(y);
    }
    let cmd = match variant {
        Variant::SourceRetains => ControlCmd::MigrateBaseline {
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
            opts: Default::default(),
        },
        _ => ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    };
    b.at(MIG_AT, cmd);
    let mut cluster = b.build();
    // 1 KB values: enough data (~300 MB) that the migration spans
    // several timeline buckets, as the paper's 13.9 GB did.
    standard_setup(&mut cluster, KEYS, 1_000);
    if variant == Variant::SourceRetains {
        cluster
            .node(ServerId(1))
            .master
            .add_tablet(TABLE, upper(), TabletRole::Owner);
    }
    cluster.run_until(END);

    // Migration window: from start until bytes stop flowing into the
    // target (Rocksteady) / out of the source (baseline).
    let tgt = cluster.server_stats[&ServerId(1)].view();
    let src = cluster.server_stats[&ServerId(0)].view();
    let (bytes, finished) = match variant {
        Variant::SourceRetains => (
            src.bytes_migrated_out,
            src.migration_finished_at.unwrap_or(END),
        ),
        _ => (
            tgt.bytes_migrated_in,
            tgt.migration_finished_at.unwrap_or(END),
        ),
    };
    let rate = mb_per_sec(bytes, finished.saturating_sub(MIG_AT).max(1));
    Out {
        name: match variant {
            Variant::Rocksteady => "Rocksteady",
            Variant::NoPriorityPulls => "No Priority Pulls",
            Variant::SourceRetains => "Source Retains Ownership",
        },
        cluster,
        mig_window: (MIG_AT, finished),
        rate_mbps: rate,
    }
}

/// Total completed ops/s across all clients per series bucket (shared
/// timeline path — same merge the other figures use).
fn total_throughput(out: &Out, from: Nanos, to: Nanos) -> Vec<(Nanos, f64)> {
    total_throughput_rows(&out.cluster, from, to)
}

/// Per-bucket (median, p999) read latency merged across clients.
fn merged_latency(out: &Out, from: Nanos, to: Nanos) -> Vec<(Nanos, u64, u64)> {
    merged_latency_rows(&out.cluster, from, to)
}

/// `"Rocksteady"` -> `"rocksteady"`, `"No Priority Pulls"` -> `"no_priority_pulls"`.
fn slug(name: &str) -> String {
    name.to_ascii_lowercase().replace(' ', "_")
}

fn main() {
    let cfg = ClusterConfig {
        servers: 4,
        workers: 12,
        replicas: 2,
        ..ClusterConfig::default()
    };
    print_table1(
        "Figures 9/10/11: YCSB-B across a live migration",
        &cfg,
        &format!(
            "{KEYS} records x 1 KB, {CLIENTS} clients x {RATE_PER_CLIENT:.0} ops/s, migrate half at t={}",
            fmt_nanos(MIG_AT)
        ),
    );

    let variants = [
        run(Variant::Rocksteady),
        run(Variant::NoPriorityPulls),
        run(Variant::SourceRetains),
    ];

    for out in &variants {
        println!(
            "--- {} ---  migration window {} .. {} ({:.0} MB/s)",
            out.name,
            fmt_nanos(out.mig_window.0),
            fmt_nanos(out.mig_window.1),
            out.rate_mbps
        );
        println!("Fig 9 (throughput) + Fig 10 (read latency), 20 ms buckets:");
        println!(
            "  {:>8} {:>12} {:>10} {:>10}",
            "t", "kops/s", "median", "99.9th"
        );
        let from = MIG_AT.saturating_sub(100 * MILLISECOND);
        let to = (out.mig_window.1 + 300 * MILLISECOND).min(END);
        let tp = total_throughput(out, from, to);
        let lat = merged_latency(out, from, to);
        for ((t, ops), (_, p50, p999)) in tp.iter().zip(lat.iter()) {
            println!(
                "  {:>8} {:>12.0} {:>10} {:>10}",
                format!("{}ms", t / MILLISECOND),
                ops / 1e3,
                fmt_nanos(*p50),
                fmt_nanos(*p999)
            );
        }
        println!("Fig 11 (utilization averaged over the migration window):");
        let util = out.cluster.util.borrow();
        for server in [ServerId(0), ServerId(1)] {
            let pts: Vec<_> = util.by_server[&server]
                .iter()
                .filter(|p| p.at >= out.mig_window.0 && p.at < out.mig_window.1)
                .collect();
            let d = mean(&pts.iter().map(|p| p.dispatch).collect::<Vec<_>>());
            let w = mean(&pts.iter().map(|p| p.worker_cores).collect::<Vec<_>>());
            println!("  {server}: dispatch {d:.2}, active workers {w:.1}");
        }
        println!();

        // Machine-readable series for re-plotting.
        let s = slug(out.name);
        export_csv(
            &format!("fig09_throughput_{s}"),
            "t_ns,ops_per_s",
            &tp.iter()
                .map(|(t, v)| vec![t.to_string(), format!("{v:.1}")])
                .collect::<Vec<_>>(),
        );
        export_csv(
            &format!("fig10_latency_{s}"),
            "t_ns,p50_ns,p999_ns",
            &lat.iter()
                .map(|(t, p50, p999)| vec![t.to_string(), p50.to_string(), p999.to_string()])
                .collect::<Vec<_>>(),
        );
        let mut util_rows = Vec::new();
        for server in [ServerId(0), ServerId(1)] {
            for p in util.by_server[&server]
                .iter()
                .filter(|p| p.at >= from && p.at < to)
            {
                util_rows.push(vec![
                    p.at.to_string(),
                    server.0.to_string(),
                    format!("{:.4}", p.dispatch),
                    format!("{:.4}", p.worker_cores),
                ]);
            }
        }
        export_csv(
            &format!("fig11_util_{s}"),
            "t_ns,server,dispatch,worker_cores",
            &util_rows,
        );
    }

    // ------------------------------------------------------ shape checks --
    let rock = &variants[0];
    let nopp = &variants[1];
    let base = &variants[2];
    let mut ok = true;

    // Figure 9a: throughput recovers to at least the pre-migration level
    // after migration (open load drains its backlog).
    let pre = mean(
        &total_throughput(rock, MIG_AT - 200 * MILLISECOND, MIG_AT)
            .iter()
            .map(|(_, v)| *v)
            .collect::<Vec<_>>(),
    );
    let post_from = rock.mig_window.1 + 100 * MILLISECOND;
    let post = mean(
        &total_throughput(rock, post_from, END)
            .iter()
            .map(|(_, v)| *v)
            .collect::<Vec<_>>(),
    );
    ok &= check(
        post >= 0.9 * pre,
        &format!("Fig 9a: throughput recovers after migration (pre {pre:.0}, post {post:.0})"),
    );

    // Figure 10a: the migration's 99.9th percentile stays within a few
    // hundred microseconds, and the median returns to single-digit us.
    let during = merged_latency(rock, rock.mig_window.0, rock.mig_window.1);
    let worst_p999 = during.iter().map(|(_, _, p)| *p).max().unwrap_or(0);
    ok &= check(
        worst_p999 <= 600_000,
        &format!(
            "Fig 10a: 99.9th during migration bounded (worst {})",
            fmt_nanos(worst_p999)
        ),
    );
    // Steady state well after the migration (give the lazy
    // re-replication burst and the client backlog time to drain).
    let post_lat = merged_latency(rock, END - 300 * MILLISECOND, END);
    let post_p50 = post_lat.iter().map(|(_, p, _)| *p).max().unwrap_or(0);
    ok &= check(
        post_p50 <= 20_000,
        &format!(
            "Fig 10a: median back to microseconds after ({})",
            fmt_nanos(post_p50)
        ),
    );

    // Figure 9b: without PriorityPulls, reads of migrating records
    // cannot complete until the bulk pulls deliver them — compare
    // completions strictly inside the first 20 ms of migration, when
    // both variants are mid-flight.
    let completed = |out: &Out| {
        out.cluster
            .client_stats
            .iter()
            .map(|s| {
                s.borrow()
                    .objects
                    .iter()
                    .filter(|(at, _)| *at >= MIG_AT && *at < MIG_AT + 20 * MILLISECOND)
                    .map(|(_, h)| h.count())
                    .sum::<u64>()
            })
            .sum::<u64>()
    };
    let rock_c = completed(rock);
    let nopp_c = completed(nopp);
    ok &= check(
        (nopp_c as f64) < 0.9 * rock_c as f64,
        &format!(
            "Fig 9b: fewer reads complete mid-migration without PriorityPulls ({nopp_c} vs {rock_c})"
        ),
    );
    // The paper measures +19% migration speed without PriorityPulls; at
    // this scale the retry traffic of the no-PP variant partly offsets
    // that, so the check only requires the two to be comparable.
    let ratio = nopp.rate_mbps / rock.rate_mbps.max(1e-9);
    ok &= check(
        (0.4..=2.5).contains(&ratio),
        &format!(
            "Fig 9b: migration rates comparable without PriorityPulls ({:.0} vs {:.0} MB/s, ratio {ratio:.2}; paper +19%)",
            nopp.rate_mbps, rock.rate_mbps
        ),
    );

    // Figure 9c: the baseline migrates slower than Rocksteady (paper:
    // 549 vs 758 MB/s).
    ok &= check(
        base.rate_mbps < rock.rate_mbps,
        &format!(
            "Fig 9c: source-retains migrates slower ({:.0} vs {:.0} MB/s)",
            base.rate_mbps, rock.rate_mbps
        ),
    );

    // Figure 11a: the target's dispatch engages the moment ownership
    // moves.
    let util = rock.cluster.util.borrow();
    let win = (
        rock.mig_window.0,
        rock.mig_window.1.max(rock.mig_window.0 + 50 * MILLISECOND),
    );
    let avg_dispatch = |s: ServerId| {
        let pts: Vec<f64> = util.by_server[&s]
            .iter()
            .filter(|p| p.at >= win.0 && p.at < win.1)
            .map(|p| p.dispatch)
            .collect();
        mean(&pts)
    };
    let d_src = avg_dispatch(ServerId(0));
    let d_tgt = avg_dispatch(ServerId(1));
    ok &= check(
        d_tgt > 0.25 * d_src,
        &format!("Fig 11a: target dispatch engages immediately (src {d_src:.2}, tgt {d_tgt:.2})"),
    );

    std::process::exit(i32::from(!ok));
}
