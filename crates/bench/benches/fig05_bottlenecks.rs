//! Figure 5: bottlenecks of RAMCloud's pre-existing log-replay
//! migration (§2.3).
//!
//! Reruns the baseline migration five times, each time disabling one
//! more pipeline stage, and reports the effective migration rate:
//!
//! | variant | paper (MB/s, steady state) |
//! |---|---|
//! | Full                 | ~130 |
//! | Skip Re-replication  | ~180 |
//! | Skip Replay on Target| ~600 |
//! | Skip Tx to Target    | ~710 |
//! | Skip Copy for Tx     | ~1150 |

use rocksteady_bench::{check, export_csv, print_table1, standard_setup, TABLE};
use rocksteady_cluster::{ClusterBuilder, ClusterConfig, ControlCmd};
use rocksteady_common::time::mb_per_sec;
use rocksteady_common::{HashRange, ServerId, MILLISECOND, SECOND};
use rocksteady_master::TabletRole;
use rocksteady_proto::msg::BaselineOpts;

const KEYS: u64 = 150_000;

fn run_variant(name: &str, opts: BaselineOpts) -> (f64, Vec<(u64, f64)>) {
    let cfg = ClusterConfig {
        servers: 5,
        workers: 12,
        replicas: 3,
        segment_bytes: 1 << 20,
        sample_interval: 10 * MILLISECOND,
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(cfg);
    b.at(
        10 * MILLISECOND,
        ControlCmd::MigrateBaseline {
            table: TABLE,
            range: HashRange::full(),
            source: ServerId(0),
            target: ServerId(1),
            opts,
        },
    );
    let mut cluster = b.build();
    // The whole table migrates; load it all on the source.
    cluster.create_table(TABLE, &[(HashRange::full(), ServerId(0))]);
    cluster.load_table(TABLE, KEYS, 30, 100);
    cluster.seed_backups();
    // The baseline target pre-registers the receiving tablet (§2.3).
    cluster
        .node(ServerId(1))
        .master
        .add_tablet(TABLE, HashRange::full(), TabletRole::Owner);

    // Run until the source stops making progress.
    let stats = cluster.server_stats[&ServerId(0)].clone();
    let mut last = 0u64;
    let mut stale = 0;
    let mut elapsed_end = 0u64;
    for step in 1..=3_000u64 {
        cluster.run_until(step * 10 * MILLISECOND);
        let out = stats.bytes_migrated_out.get();
        if out == last && out > 0 {
            stale += 1;
            if stale >= 10 {
                break;
            }
        } else {
            if out != last {
                elapsed_end = step * 10 * MILLISECOND;
            }
            stale = 0;
            last = out;
        }
    }
    let start = 10 * MILLISECOND;
    let duration = elapsed_end.saturating_sub(start).max(1);
    let rate = mb_per_sec(last, duration);

    // Rate-over-time series, as Figure 5 plots it.
    let util = cluster.util.borrow();
    let series: Vec<(u64, f64)> = util
        .by_server
        .get(&ServerId(0))
        .map(|points| {
            points
                .iter()
                .filter(|p| p.bytes_out > 0)
                .map(|p| {
                    (
                        p.at.saturating_sub(start) / MILLISECOND,
                        mb_per_sec(p.bytes_out, util.interval),
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    println!(
        "{name:<22} {rate:>8.0} MB/s over {} ms",
        duration / MILLISECOND
    );
    (rate, series)
}

fn main() {
    let cfg = ClusterConfig {
        servers: 5,
        workers: 12,
        replicas: 3,
        ..ClusterConfig::default()
    };
    print_table1(
        "Figure 5: baseline-migration bottleneck breakdown",
        &cfg,
        &format!("{KEYS} records x 100 B payload, whole-table baseline migration"),
    );
    // Exercise the shared setup path once so the helper stays honest.
    {
        let mut b = ClusterBuilder::new(cfg);
        b.at(
            SECOND * 100, // never fires inside this probe
            ControlCmd::MigrateBaseline {
                table: TABLE,
                range: rocksteady_bench::upper(),
                source: ServerId(0),
                target: ServerId(1),
                opts: BaselineOpts::default(),
            },
        );
        let mut probe = b.build();
        standard_setup(&mut probe, 100, 100);
    }

    println!("{:<22} {:>13}", "variant", "steady rate");
    let (full, full_series) = run_variant("Full", BaselineOpts::default());
    let (no_rerepl, _) = run_variant(
        "Skip Re-replication",
        BaselineOpts {
            skip_rereplication: true,
            ..Default::default()
        },
    );
    let (no_replay, _) = run_variant(
        "Skip Replay on Target",
        BaselineOpts {
            skip_replay: true,
            ..Default::default()
        },
    );
    let (no_tx, _) = run_variant(
        "Skip Tx to Target",
        BaselineOpts {
            skip_tx: true,
            ..Default::default()
        },
    );
    let (no_copy, _) = run_variant(
        "Skip Copy for Tx",
        BaselineOpts {
            skip_copy: true,
            ..Default::default()
        },
    );

    println!("\nFull-variant rate over time (Figure 5's x-axis, scaled):");
    for (t_ms, mbps) in full_series.iter().take(30) {
        println!("  t={t_ms:>5} ms  {mbps:>7.0} MB/s");
    }

    export_csv(
        "fig05_steady_rates",
        "variant,mb_per_s",
        &[
            ("full", full),
            ("skip_rereplication", no_rerepl),
            ("skip_replay", no_replay),
            ("skip_tx", no_tx),
            ("skip_copy", no_copy),
        ]
        .iter()
        .map(|(v, r)| vec![v.to_string(), format!("{r:.1}")])
        .collect::<Vec<_>>(),
    );
    export_csv(
        "fig05_rate_over_time_full",
        "t_ms,mb_per_s",
        &full_series
            .iter()
            .map(|(t, r)| vec![t.to_string(), format!("{r:.1}")])
            .collect::<Vec<_>>(),
    );

    println!();
    let mut ok = true;
    ok &= check(
        no_copy > no_tx && no_tx > no_replay && no_replay > no_rerepl && no_rerepl > full,
        "each skipped stage raises the migration rate (ordering matches Figure 5)",
    );
    ok &= check(
        (60.0..=300.0).contains(&full),
        &format!("full baseline lands near the paper's ~130 MB/s (got {full:.0})"),
    );
    ok &= check(
        no_replay / full >= 2.5,
        &format!(
            "skipping target replay+re-replication gives the paper's >3x jump (got {:.1}x)",
            no_replay / full
        ),
    );
    ok &= check(
        no_copy / no_tx >= 1.2,
        &format!(
            "the staging copy costs more than transmission (copy lever {:.2}x)",
            no_copy / no_tx
        ),
    );
    std::process::exit(i32::from(!ok));
}
