//! Figure 5: bottlenecks of RAMCloud's pre-existing log-replay
//! migration (§2.3).
//!
//! Reruns the baseline migration five times, each time disabling one
//! more pipeline stage, and reports the effective migration rate:
//!
//! | variant | paper (MB/s, steady state) |
//! |---|---|
//! | Full                 | ~130 |
//! | Skip Re-replication  | ~180 |
//! | Skip Replay on Target| ~600 |
//! | Skip Tx to Target    | ~710 |
//! | Skip Copy for Tx     | ~1150 |
//!
//! Since PR 5 the decomposition itself is *measured*, not inferred from
//! counters: every run arms the `rocksteady-profiler` activity ledger,
//! so each variant reports exactly where every core's virtual time went
//! (pull gather, replay, hold, dispatch, idle — conserving wall-clock
//! per core) and exports both a per-core CSV and folded flamegraph
//! stacks per variant.

use rocksteady_bench::{check, export_csv, print_table1, standard_setup, FIGURE_DATA_DIR, TABLE};
use rocksteady_cluster::{Activity, ClusterBuilder, ClusterConfig, ControlCmd};
use rocksteady_common::time::mb_per_sec;
use rocksteady_common::{HashRange, ServerId, MILLISECOND, SECOND};
use rocksteady_master::TabletRole;
use rocksteady_proto::msg::BaselineOpts;

const KEYS: u64 = 150_000;

/// Result of one baseline-migration variant, including its measured
/// per-core time decomposition.
struct VariantRun {
    rate: f64,
    series: Vec<(u64, f64)>,
    /// `variant,server,core,activity,ns` rows (source + target cores).
    decomposition: Vec<Vec<String>>,
    folded: String,
    /// Per-core conservation: busy + idle == wall-clock on every core.
    conserved: bool,
    /// Target-side replay ns (summed over cores), for the ledger checks.
    target_replay_ns: u64,
    /// Source-side pull-gather ns (baseline scan steps), ditto.
    source_gather_ns: u64,
}

fn run_variant(name: &str, csv_name: &str, opts: BaselineOpts) -> VariantRun {
    let cfg = ClusterConfig {
        servers: 5,
        workers: 12,
        replicas: 3,
        segment_bytes: 1 << 20,
        sample_interval: 10 * MILLISECOND,
        profiling: true,
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(cfg);
    b.at(
        10 * MILLISECOND,
        ControlCmd::MigrateBaseline {
            table: TABLE,
            range: HashRange::full(),
            source: ServerId(0),
            target: ServerId(1),
            opts,
        },
    );
    let mut cluster = b.build();
    // The whole table migrates; load it all on the source.
    cluster.create_table(TABLE, &[(HashRange::full(), ServerId(0))]);
    cluster.load_table(TABLE, KEYS, 30, 100);
    cluster.seed_backups();
    // The baseline target pre-registers the receiving tablet (§2.3).
    cluster
        .node(ServerId(1))
        .master
        .add_tablet(TABLE, HashRange::full(), TabletRole::Owner);

    // Run until the source stops making progress.
    let stats = cluster.server_stats[&ServerId(0)].clone();
    let mut last = 0u64;
    let mut stale = 0;
    let mut elapsed_end = 0u64;
    for step in 1..=3_000u64 {
        cluster.run_until(step * 10 * MILLISECOND);
        let out = stats.bytes_migrated_out.get();
        if out == last && out > 0 {
            stale += 1;
            if stale >= 10 {
                break;
            }
        } else {
            if out != last {
                elapsed_end = step * 10 * MILLISECOND;
            }
            stale = 0;
            last = out;
        }
    }
    let start = 10 * MILLISECOND;
    let duration = elapsed_end.saturating_sub(start).max(1);
    let rate = mb_per_sec(last, duration);

    // Rate-over-time series, as Figure 5 plots it.
    let series: Vec<(u64, f64)> = {
        let util = cluster.util.borrow();
        util.by_server
            .get(&ServerId(0))
            .map(|points| {
                points
                    .iter()
                    .filter(|p| p.bytes_out > 0)
                    .map(|p| {
                        (
                            p.at.saturating_sub(start) / MILLISECOND,
                            mb_per_sec(p.bytes_out, util.interval),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default()
    };

    // Harvest the activity ledger: the measured decomposition.
    cluster.finalize_profile();
    let summary = cluster
        .profiler
        .validate()
        .expect("ledger conservation violated");
    let mut decomposition = Vec::new();
    let mut conserved = summary.busy_ns + summary.idle_ns > 0;
    let mut target_replay_ns = 0u64;
    let mut source_gather_ns = 0u64;
    for core in cluster.profiler.cores() {
        let bucket_sum: u64 = core.buckets.iter().sum();
        conserved &= bucket_sum == core.wall;
        for (act, ns) in Activity::ALL.iter().zip(core.buckets.iter()) {
            if core.server <= 1 && *ns > 0 {
                decomposition.push(vec![
                    csv_name.to_string(),
                    format!("server{}", core.server),
                    rocksteady_cluster::core_label(core.core),
                    act.label().to_string(),
                    ns.to_string(),
                ]);
            }
            match (core.server, act) {
                (1, Activity::Replay) => target_replay_ns += ns,
                (0, Activity::PullGather) => source_gather_ns += ns,
                _ => {}
            }
        }
    }
    println!(
        "{name:<22} {rate:>8.0} MB/s over {} ms  (replay {:>5} ms, gather {:>5} ms)",
        duration / MILLISECOND,
        target_replay_ns / MILLISECOND,
        source_gather_ns / MILLISECOND,
    );
    VariantRun {
        rate,
        series,
        decomposition,
        folded: cluster.export_folded(),
        conserved,
        target_replay_ns,
        source_gather_ns,
    }
}

fn main() {
    let cfg = ClusterConfig {
        servers: 5,
        workers: 12,
        replicas: 3,
        ..ClusterConfig::default()
    };
    print_table1(
        "Figure 5: baseline-migration bottleneck breakdown",
        &cfg,
        &format!("{KEYS} records x 100 B payload, whole-table baseline migration"),
    );
    // Exercise the shared setup path once so the helper stays honest.
    {
        let mut b = ClusterBuilder::new(cfg);
        b.at(
            SECOND * 100, // never fires inside this probe
            ControlCmd::MigrateBaseline {
                table: TABLE,
                range: rocksteady_bench::upper(),
                source: ServerId(0),
                target: ServerId(1),
                opts: BaselineOpts::default(),
            },
        );
        let mut probe = b.build();
        standard_setup(&mut probe, 100, 100);
    }

    println!("{:<22} {:>13}", "variant", "steady rate");
    let full = run_variant("Full", "full", BaselineOpts::default());
    let no_rerepl = run_variant(
        "Skip Re-replication",
        "skip_rereplication",
        BaselineOpts {
            skip_rereplication: true,
            ..Default::default()
        },
    );
    let no_replay = run_variant(
        "Skip Replay on Target",
        "skip_replay",
        BaselineOpts {
            skip_replay: true,
            ..Default::default()
        },
    );
    let no_tx = run_variant(
        "Skip Tx to Target",
        "skip_tx",
        BaselineOpts {
            skip_tx: true,
            ..Default::default()
        },
    );
    let no_copy = run_variant(
        "Skip Copy for Tx",
        "skip_copy",
        BaselineOpts {
            skip_copy: true,
            ..Default::default()
        },
    );
    let variants = [
        ("full", &full),
        ("skip_rereplication", &no_rerepl),
        ("skip_replay", &no_replay),
        ("skip_tx", &no_tx),
        ("skip_copy", &no_copy),
    ];

    println!("\nFull-variant rate over time (Figure 5's x-axis, scaled):");
    for (t_ms, mbps) in full.series.iter().take(30) {
        println!("  t={t_ms:>5} ms  {mbps:>7.0} MB/s");
    }

    export_csv(
        "fig05_steady_rates",
        "variant,mb_per_s",
        &variants
            .iter()
            .map(|(v, r)| vec![v.to_string(), format!("{:.1}", r.rate)])
            .collect::<Vec<_>>(),
    );
    export_csv(
        "fig05_rate_over_time_full",
        "t_ms,mb_per_s",
        &full
            .series
            .iter()
            .map(|(t, r)| vec![t.to_string(), format!("{r:.1}")])
            .collect::<Vec<_>>(),
    );
    // The measured decomposition: per-core activity ledger of the
    // source and target, all variants in one CSV, plus per-variant
    // folded stacks for flamegraph.pl.
    export_csv(
        "fig05_core_decomposition",
        "variant,server,core,activity,ns",
        &variants
            .iter()
            .flat_map(|(_, r)| r.decomposition.iter().cloned())
            .collect::<Vec<_>>(),
    );
    std::fs::create_dir_all(FIGURE_DATA_DIR).expect("create figure dir");
    for (csv_name, run) in &variants {
        let path = format!("{FIGURE_DATA_DIR}/fig05_profile_{csv_name}.folded");
        std::fs::write(&path, &run.folded).expect("write folded stacks");
    }
    println!("\nwrote fig05_core_decomposition.csv + per-variant .folded stacks");

    println!();
    let mut ok = true;
    ok &= check(
        no_copy.rate > no_tx.rate
            && no_tx.rate > no_replay.rate
            && no_replay.rate > no_rerepl.rate
            && no_rerepl.rate > full.rate,
        "each skipped stage raises the migration rate (ordering matches Figure 5)",
    );
    ok &= check(
        (60.0..=300.0).contains(&full.rate),
        &format!(
            "full baseline lands near the paper's ~130 MB/s (got {:.0})",
            full.rate
        ),
    );
    ok &= check(
        no_replay.rate / full.rate >= 2.5,
        &format!(
            "skipping target replay+re-replication gives the paper's >3x jump (got {:.1}x)",
            no_replay.rate / full.rate
        ),
    );
    ok &= check(
        no_copy.rate / no_tx.rate >= 1.2,
        &format!(
            "the staging copy costs more than transmission (copy lever {:.2}x)",
            no_copy.rate / no_tx.rate
        ),
    );
    // Ledger-level checks: the decomposition is measured, conserving,
    // and tracks what each variant actually disabled.
    ok &= check(
        variants.iter().all(|(_, r)| r.conserved),
        "busy + idle sums exactly to wall-clock on every core, every variant",
    );
    ok &= check(
        full.target_replay_ns > 0 && full.source_gather_ns > 0,
        "full variant charges both target replay and source gather time",
    );
    ok &= check(
        no_replay.target_replay_ns == 0,
        &format!(
            "skip_replay variant charges no target replay time (got {} ns)",
            no_replay.target_replay_ns
        ),
    );
    std::process::exit(i32::from(!ok));
}
