//! Criterion micro-benchmarks of the real (thread-safe) storage
//! substrate: the structures the simulator drives under virtual time,
//! exercised here with real CPU time.
//!
//! These complement Figure 15: the simulated scalability numbers come
//! from the cost model, while these measure the actual Rust data
//! structures (log append, hash-table probes, record replay, workload
//! generation) on the host.
//!
//! After the groups run, the main pits the measurements against
//! published RAMCloud/Storm-class reference numbers and exports the
//! comparison as `target/figures/micro_industry.csv`. The references
//! are whole-system figures (they include network round trips and
//! replication our structure-level measurements skip), so ratios well
//! above 1 are expected — the point of the table is to show the
//! in-memory substrate is nowhere near the bottleneck relative to the
//! systems the paper compares against, not to claim an apples-to-apples
//! win. Each row carries its citation.
//!
//! `ROCKSTEADY_BENCH_SMOKE=1` shrinks sampling so `ci.sh` can smoke the
//! whole bench (including the CSV export) in well under a second.

use criterion::{BatchSize, Criterion, Throughput};
use rocksteady_bench::export_csv;
use rocksteady_common::rng::Prng;
use rocksteady_common::zipf::{KeyDist, KeySampler};
use rocksteady_common::{key_hash, HashRange, TableId};
use rocksteady_hashtable::HashTable;
use rocksteady_logstore::crc::crc32c;
use rocksteady_logstore::{EntryKind, Log, LogConfig, LogRef};
use rocksteady_master::{MasterConfig, MasterService, ReplayDest, TabletRole, Work};
use rocksteady_proto::Record;

fn bench_log_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("logstore");
    g.throughput(Throughput::Bytes(135));
    g.bench_function("append_100B_entry", |b| {
        let log = Log::new(LogConfig {
            segment_bytes: 1 << 20,
            max_segments: None,
        });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            log.append(EntryKind::Object, 1, i, i, b"0123456789", &[0u8; 90])
                .unwrap()
        });
    });
    g.bench_function("crc32c_1KB", |b| {
        let data = vec![0xa5u8; 1024];
        b.iter(|| crc32c(&data));
    });
    g.finish();
}

fn bench_hashtable(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashtable");
    let ht = HashTable::new(1 << 16, 256);
    let t = TableId(1);
    for i in 0..100_000u64 {
        ht.upsert(
            t,
            key_hash(&i.to_le_bytes()),
            LogRef {
                segment: i,
                offset: 0,
            },
            |_| true,
        );
    }
    g.bench_function("lookup_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 100_000;
            ht.lookup(t, key_hash(&i.to_le_bytes()), |_| true)
        });
    });
    g.bench_function("scan_range_1k_entries", |b| {
        let range = HashRange::full().split(100)[0];
        b.iter(|| {
            let mut n = 0u32;
            ht.for_each_in_range(t, range, |_| n += 1);
            n
        });
    });
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("migration");
    g.throughput(Throughput::Bytes(129));
    g.bench_function("replay_record_128B", |b| {
        b.iter_batched(
            || {
                let mut m = MasterService::new(MasterConfig::default());
                m.add_tablet(TableId(1), HashRange::full(), TabletRole::Owner);
                let records: Vec<Record> = (0..1_000u64)
                    .map(|i| Record {
                        table: TableId(1),
                        key_hash: key_hash(&i.to_le_bytes()),
                        version: 1,
                        key: bytes::Bytes::copy_from_slice(&i.to_le_bytes()),
                        value: bytes::Bytes::from(vec![0u8; 92]),
                        tombstone: false,
                    })
                    .collect();
                (m, records)
            },
            |(mut m, records)| {
                let mut work = Work::default();
                for r in &records {
                    m.replay_record(r, ReplayDest::MainLog, &mut work);
                }
                m
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    let sampler = KeySampler::new(1_000_000, KeyDist::Zipfian { theta: 0.99 }, true);
    g.bench_function("zipfian_sample_theta099", |b| {
        let mut rng = Prng::new(1);
        b.iter(|| sampler.sample(&mut rng));
    });
    g.bench_function("key_hash_30B", |b| {
        let key = b"user00000000000000000000012345";
        b.iter(|| key_hash(key));
    });
    g.finish();
}

fn config() -> Criterion {
    if std::env::var_os("ROCKSTEADY_BENCH_SMOKE").is_some() {
        Criterion::default()
            .sample_size(2)
            .measurement_time(std::time::Duration::from_millis(10))
            .warm_up_time(std::time::Duration::from_millis(1))
    } else {
        Criterion::default()
            .sample_size(20)
            .measurement_time(std::time::Duration::from_secs(3))
            .warm_up_time(std::time::Duration::from_secs(1))
    }
}

/// One published reference point to pit a measurement against.
///
/// `ours` converts the bench's median ns/iter into the reference's
/// unit, so each comparison can account for how much work one iteration
/// actually does (e.g. the replay bench applies 1 000 records per
/// iteration; the scan bench visits ~1 000 entries).
struct IndustryRef {
    bench: &'static str,
    ours: fn(f64) -> f64,
    unit: &'static str,
    reference: f64,
    source: &'static str,
}

const INDUSTRY: &[IndustryRef] = &[
    IndustryRef {
        bench: "logstore/append_100B_entry",
        ours: |ns| 1e3 / ns, // Mops/s for one append per iteration
        unit: "Mops/s",
        reference: 0.41,
        source: "RAMCloud durable 100B writes with 3x replication; Rumble et al. FAST'14",
    },
    IndustryRef {
        bench: "logstore/crc32c_1KB",
        ours: |ns| 1024.0 / ns, // bytes/ns == GB/s
        unit: "GB/s",
        reference: 8.0,
        source: "Intel SSE4.2 CRC32C per-core peak; Gopal et al. Intel whitepaper 2011",
    },
    IndustryRef {
        bench: "hashtable/lookup_hit",
        ours: |ns| 1e3 / ns,
        unit: "Mops/s",
        reference: 0.21,
        source: "RAMCloud 4.7us end-to-end read RPC (incl. kernel-bypass RTT); Ousterhout et al. TOCS'15",
    },
    IndustryRef {
        bench: "hashtable/scan_range_1k_entries",
        ours: |ns| 1e6 / ns, // ~1 000 entries visited per iteration
        unit: "Mitems/s",
        reference: 1.0,
        source: "Apache Storm-class streaming node at ~1M tuples/s/node; storm.apache.org benchmark",
    },
    IndustryRef {
        bench: "migration/replay_record_128B",
        ours: |ns| 1.29e8 / ns, // 1 000 records x 129 B per iteration, in MB/s
        unit: "MB/s",
        reference: 758.0,
        source: "Rocksteady migration incl. network + re-replication; Kulkarni et al. SOSP'17",
    },
];

/// Joins the drained criterion measurements against [`INDUSTRY`] and
/// writes the comparison table. Benches without a reference row are
/// still exported (blank reference cells) so the CSV is a complete
/// record of the run.
fn industry_csv(results: &[criterion::Measurement]) {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for m in results {
        match INDUSTRY.iter().find(|r| r.bench == m.id) {
            Some(r) => {
                let ours = (r.ours)(m.ns_per_iter);
                rows.push(vec![
                    m.id.clone(),
                    format!("{:.1}", m.ns_per_iter),
                    format!("{ours:.3}"),
                    r.unit.to_string(),
                    format!("{:.3}", r.reference),
                    format!("{:.2}", ours / r.reference),
                    r.source.to_string(),
                ]);
            }
            None => rows.push(vec![
                m.id.clone(),
                format!("{:.1}", m.ns_per_iter),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]),
        }
    }
    assert!(
        rows.len() >= INDUSTRY.len(),
        "industry comparison lost benches: {} rows for {} references",
        rows.len(),
        INDUSTRY.len()
    );
    export_csv(
        "micro_industry",
        "bench,ns_per_iter,ours,unit,industry,ours_over_industry,source",
        &rows,
    );
}

fn main() {
    let mut c = config().configure_from_args();
    bench_log_append(&mut c);
    bench_hashtable(&mut c);
    bench_replay(&mut c);
    bench_workload(&mut c);
    industry_csv(&criterion::take_results());
}
