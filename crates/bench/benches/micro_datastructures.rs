//! Criterion micro-benchmarks of the real (thread-safe) storage
//! substrate: the structures the simulator drives under virtual time,
//! exercised here with real CPU time.
//!
//! These complement Figure 15: the simulated scalability numbers come
//! from the cost model, while these measure the actual Rust data
//! structures (log append, hash-table probes, record replay, workload
//! generation) on the host.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rocksteady_common::rng::Prng;
use rocksteady_common::zipf::{KeyDist, KeySampler};
use rocksteady_common::{key_hash, HashRange, TableId};
use rocksteady_hashtable::HashTable;
use rocksteady_logstore::crc::crc32c;
use rocksteady_logstore::{EntryKind, Log, LogConfig, LogRef};
use rocksteady_master::{MasterConfig, MasterService, ReplayDest, TabletRole, Work};
use rocksteady_proto::Record;

fn bench_log_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("logstore");
    g.throughput(Throughput::Bytes(135));
    g.bench_function("append_100B_entry", |b| {
        let log = Log::new(LogConfig {
            segment_bytes: 1 << 20,
            max_segments: None,
        });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            log.append(EntryKind::Object, 1, i, i, b"0123456789", &[0u8; 90])
                .unwrap()
        });
    });
    g.bench_function("crc32c_1KB", |b| {
        let data = vec![0xa5u8; 1024];
        b.iter(|| crc32c(&data));
    });
    g.finish();
}

fn bench_hashtable(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashtable");
    let ht = HashTable::new(1 << 16, 256);
    let t = TableId(1);
    for i in 0..100_000u64 {
        ht.upsert(
            t,
            key_hash(&i.to_le_bytes()),
            LogRef {
                segment: i,
                offset: 0,
            },
            |_| true,
        );
    }
    g.bench_function("lookup_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 100_000;
            ht.lookup(t, key_hash(&i.to_le_bytes()), |_| true)
        });
    });
    g.bench_function("scan_range_1k_entries", |b| {
        let range = HashRange::full().split(100)[0];
        b.iter(|| {
            let mut n = 0u32;
            ht.for_each_in_range(t, range, |_| n += 1);
            n
        });
    });
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("migration");
    g.throughput(Throughput::Bytes(129));
    g.bench_function("replay_record_128B", |b| {
        b.iter_batched(
            || {
                let mut m = MasterService::new(MasterConfig::default());
                m.add_tablet(TableId(1), HashRange::full(), TabletRole::Owner);
                let records: Vec<Record> = (0..1_000u64)
                    .map(|i| Record {
                        table: TableId(1),
                        key_hash: key_hash(&i.to_le_bytes()),
                        version: 1,
                        key: bytes::Bytes::copy_from_slice(&i.to_le_bytes()),
                        value: bytes::Bytes::from(vec![0u8; 92]),
                        tombstone: false,
                    })
                    .collect();
                (m, records)
            },
            |(mut m, records)| {
                let mut work = Work::default();
                for r in &records {
                    m.replay_record(r, ReplayDest::MainLog, &mut work);
                }
                m
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    let sampler = KeySampler::new(1_000_000, KeyDist::Zipfian { theta: 0.99 }, true);
    g.bench_function("zipfian_sample_theta099", |b| {
        let mut rng = Prng::new(1);
        b.iter(|| sampler.sample(&mut rng));
    });
    g.bench_function("key_hash_30B", |b| {
        let key = b"user00000000000000000000012345";
        b.iter(|| key_hash(key));
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_log_append, bench_hashtable, bench_replay, bench_workload
}
criterion_main!(benches);
