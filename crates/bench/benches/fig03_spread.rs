//! Figure 3: throughput and CPU-load impact of multiget access locality
//! (§2.1).
//!
//! 7 servers, 14 clients issuing back-to-back 7-key multigets. `spread`
//! is the number of servers each multiget touches: at spread 1 the whole
//! cluster is worker-bound and throughput is high; every extra server
//! per multiget multiplies the *dispatch* work for the same object count
//! until the dispatch cores saturate and throughput collapses toward a
//! single server's.

use rocksteady_bench::{check, mean, print_table1, TABLE};
use rocksteady_cluster::{ClusterBuilder, ClusterConfig};
use rocksteady_common::time::fmt_nanos;
use rocksteady_common::{CostModel, HashRange, ServerId, MILLISECOND, SECOND};
use rocksteady_workload::SpreadConfig;

const SERVERS: usize = 7;
const CLIENTS: usize = 14;
const CONCURRENCY: usize = 12;
const KEYS: u64 = 70_000;
const WARMUP: u64 = 50 * MILLISECOND;
const END: u64 = 200 * MILLISECOND;

struct Row {
    spread: usize,
    objects_per_sec: f64,
    p50: u64,
    p999: u64,
    dispatch: f64,
    worker_cores: f64,
}

fn run(spread: usize) -> Row {
    // Multi-read handlers on real RAMCloud cost ~2.3 us per object
    // (Figure 3 shows ~0.8 worker utilization at ~600k multigets/s per
    // server); the default model's leaner read path is tuned for
    // single-object RPCs, so this experiment carries its own
    // calibration.
    let cost = CostModel {
        read_per_object_ns: 2_300,
        ..CostModel::default()
    };
    let cfg = ClusterConfig {
        servers: SERVERS,
        workers: 12,
        replicas: 0,
        cost,
        sample_interval: 10 * MILLISECOND,
        series_interval: 10 * MILLISECOND,
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    // Tablet split: one range per server; key ranks classified below.
    let mut cluster_keys: Vec<(ServerId, Vec<u64>)> = (0..SERVERS)
        .map(|i| (ServerId(i as u32), Vec::new()))
        .collect();
    let ranges = HashRange::full().split(SERVERS);
    for rank in 0..KEYS {
        let hash = rocksteady_workload::core::primary_hash(rank, 30);
        let idx = ranges.iter().position(|r| r.contains(hash)).unwrap();
        cluster_keys[idx].1.push(rank);
    }
    for i in 0..CLIENTS {
        b.add_spread(SpreadConfig {
            dir: dir.clone(),
            table: TABLE,
            key_len: 30,
            keys_by_server: cluster_keys.clone(),
            spread,
            keys_per_op: 7,
            concurrency: CONCURRENCY,
            seed: 1_000 + i as u64,
        });
    }
    let mut cluster = b.build();
    let tablets: Vec<_> = ranges
        .iter()
        .enumerate()
        .map(|(i, r)| (*r, ServerId(i as u32)))
        .collect();
    cluster.create_table(TABLE, &tablets);
    cluster.load_table(TABLE, KEYS, 30, 100);
    cluster.run_until(END);

    // Client-side: objects/s and latency over the measurement window.
    let mut objects = 0u64;
    let mut lat = rocksteady_common::Histogram::new();
    for stats in &cluster.client_stats {
        let s = stats.borrow();
        for (at, h) in s.objects.iter() {
            if at >= WARMUP {
                objects += h.count();
            }
        }
        for (at, h) in s.read_latency.iter() {
            if at >= WARMUP {
                lat.merge(h);
            }
        }
    }
    let secs = (END - WARMUP) as f64 / SECOND as f64;

    // Server-side: mean utilization over the window.
    let util = cluster.util.borrow();
    let mut dispatch = Vec::new();
    let mut workers = Vec::new();
    for points in util.by_server.values() {
        for p in points.iter().filter(|p| p.at >= WARMUP) {
            dispatch.push(p.dispatch);
            workers.push(p.worker_cores);
        }
    }
    Row {
        spread,
        objects_per_sec: objects as f64 / secs,
        p50: lat.percentile(0.5),
        p999: lat.percentile(0.999),
        dispatch: mean(&dispatch),
        worker_cores: mean(&workers),
    }
}

fn main() {
    let cfg = ClusterConfig {
        servers: SERVERS,
        workers: 12,
        replicas: 0,
        ..ClusterConfig::default()
    };
    print_table1(
        "Figure 3: multiget spread",
        &cfg,
        &format!("{CLIENTS} clients x {CONCURRENCY} back-to-back 7-key multigets, {KEYS} keys"),
    );

    println!(
        "{:>7} {:>16} {:>10} {:>10} {:>10} {:>12}",
        "spread", "objects/s (M)", "median", "99.9th", "dispatch", "workers busy"
    );
    let rows: Vec<Row> = (1..=7).map(run).collect();
    for r in &rows {
        println!(
            "{:>7} {:>16.2} {:>10} {:>10} {:>10.2} {:>12.1}",
            r.spread,
            r.objects_per_sec / 1e6,
            fmt_nanos(r.p50),
            fmt_nanos(r.p999),
            r.dispatch,
            r.worker_cores,
        );
    }
    println!();

    let mut ok = true;
    ok &= check(
        rows[1].objects_per_sec < 0.92 * rows[0].objects_per_sec,
        &format!(
            "spread 2 drops cluster throughput (paper: -23%; got {:+.0}%)",
            100.0 * (rows[1].objects_per_sec / rows[0].objects_per_sec - 1.0)
        ),
    );
    ok &= check(
        rows[0].objects_per_sec / rows[6].objects_per_sec >= 2.0,
        &format!(
            "locality is worth a large factor end to end (paper: 4.3x; got {:.1}x)",
            rows[0].objects_per_sec / rows[6].objects_per_sec
        ),
    );
    ok &= check(
        rows[6].dispatch > rows[0].dispatch + 0.2,
        &format!(
            "dispatch load rises with spread ({:.2} -> {:.2})",
            rows[0].dispatch, rows[6].dispatch
        ),
    );
    ok &= check(
        rows[6].worker_cores < rows[0].worker_cores,
        &format!(
            "workers idle out as dispatch saturates ({:.1} -> {:.1} cores)",
            rows[0].worker_cores, rows[6].worker_cores
        ),
    );
    ok &= check(
        rows[6].p999 > rows[0].p999,
        "tail latency grows with spread",
    );
    std::process::exit(i32::from(!ok));
}
