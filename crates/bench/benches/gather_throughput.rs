//! Gather-path throughput: how fast the source side of a Pull can
//! assemble `Record` batches from the hash table + log (§3.1.1).
//!
//! Measures `MasterService::gather_range` over a fully loaded master at
//! two value sizes (128 B — the paper's YCSB-B object size regime — and
//! 1 KB), reporting records/s and bytes/s. Results are appended to
//! `BENCH_micro.json` so before/after deltas of the zero-copy pull path
//! are machine-checkable.

use criterion::{criterion_group, Criterion, Throughput};
use rocksteady_common::{HashRange, ScanCursor, TableId};
use rocksteady_master::{MasterConfig, MasterService, TabletRole, Work};

const T: TableId = TableId(7);
const KEYS: u64 = 20_000;
/// Per-pull byte budget, matching the protocol's default Pull sizing.
const BUDGET: u64 = 20_000;

fn loaded_master(value_len: usize) -> MasterService {
    let mut m = MasterService::new(MasterConfig {
        hash_buckets: 1 << 15,
        hash_stripes: 64,
        ..MasterConfig::default()
    });
    m.add_tablet(T, HashRange::full(), TabletRole::Owner);
    let value = vec![0xabu8; value_len];
    for i in 0..KEYS {
        let key = format!("user{i:012}");
        m.load_object(T, key.as_bytes(), &value);
    }
    m
}

/// Drives `gather_range` across the whole hash space once, returning the
/// record and byte totals (used both for the timed loop and to size the
/// throughput annotation).
fn gather_all(m: &MasterService) -> (u64, u64) {
    let mut records = 0u64;
    let mut bytes = 0u64;
    let mut work = Work::default();
    let mut cursor = ScanCursor::default();
    loop {
        let (batch, next) = m.gather_range(T, HashRange::full(), cursor, BUDGET, &mut work);
        records += batch.len() as u64;
        bytes += batch.iter().map(|r| r.wire_size()).sum::<u64>();
        match next {
            Some(c) => cursor = c,
            None => break,
        }
    }
    (records, bytes)
}

fn bench_gather(c: &mut Criterion) {
    for (label, value_len) in [("value128", 128), ("value1k", 1024)] {
        let m = loaded_master(value_len);
        let (records, bytes) = gather_all(&m);
        assert_eq!(records, KEYS, "gather must visit every record");

        let mut g = c.benchmark_group("gather");
        g.throughput(Throughput::Elements(records));
        g.bench_function(&format!("{label}/records"), |b| b.iter(|| gather_all(&m)));
        g.finish();

        let mut g = c.benchmark_group("gather");
        g.throughput(Throughput::Bytes(bytes));
        g.bench_function(&format!("{label}/bytes"), |b| b.iter(|| gather_all(&m)));
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_gather
}

/// Seed-commit numbers (copying gather + Vec-of-Vec hash table),
/// measured on this machine with the same config, kept for the
/// before/after delta of the zero-copy pull path.
const SEED_BASELINE: &str = r#"  "seed_baseline": [
    {"id": "gather/value128/records", "ns_per_iter": 14579257.4, "records_per_sec": 1371812.0},
    {"id": "gather/value128/bytes", "ns_per_iter": 14949435.9, "bytes_per_sec": 231446860.5},
    {"id": "gather/value1k/records", "ns_per_iter": 69729524.8, "records_per_sec": 286822.5},
    {"id": "gather/value1k/bytes", "ns_per_iter": 68747596.8, "bytes_per_sec": 310992689.1}
  ],
"#;

fn emit_json() {
    let results = criterion::take_results();
    let mut out = String::from("{\n  \"bench\": \"gather_throughput\",\n");
    out.push_str(SEED_BASELINE);
    out.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let per_sec = match m.throughput {
            Some(Throughput::Elements(n)) => n as f64 * m.iters_per_sec(),
            Some(Throughput::Bytes(n)) => n as f64 * m.iters_per_sec(),
            None => m.iters_per_sec(),
        };
        let unit = match m.throughput {
            Some(Throughput::Elements(_)) => "records_per_sec",
            Some(Throughput::Bytes(_)) => "bytes_per_sec",
            None => "iters_per_sec",
        };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"{}\": {:.1}}}{}\n",
            m.id,
            m.ns_per_iter,
            unit,
            per_sec,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_micro.json");
    std::fs::write(path, &out).expect("write BENCH_micro.json");
    println!("wrote {path}");
}

// A custom main instead of criterion_main! so results can be persisted
// to BENCH_micro.json after the groups run.
fn main() {
    benches();
    emit_json();
}
