//! A day in the life of a rebalanced cluster.
//!
//! The paper's closing argument (§5) is that once migration is fast and
//! tail-safe, it stops being an emergency tool and becomes routine load
//! management. This scenario plays that out: a compressed "day" of
//! drifting demand — a hot working set that wanders across the key
//! space and flips abruptly mid-run — offered to a 4-server cluster
//! whose table is partitioned into 16 tablets. We run the day twice
//! from the same seed: once with static placement, once with the
//! autonomous rebalancer (greedy load-delta policy under admission
//! caps) armed.
//!
//! Headline metric: **SLO breach-minutes** — virtual minutes of
//! sampling windows whose p99.9 read latency exceeded the SLA. The
//! rebalancer must cut breach-minutes versus static placement, must
//! drive at least two *concurrent* admission-controlled migrations
//! while doing so, and the whole day must be byte-deterministic per
//! seed.

use rocksteady_bench::{check, export_csv, merged_latency_rows, print_table1, TABLE};
use rocksteady_cluster::{
    AdmissionCaps, Cluster, ClusterBuilder, ClusterConfig, GreedyLoadDelta, RebalancerConfig,
};
use rocksteady_common::{CostModel, HashRange, Nanos, ServerId, MILLISECOND, SECOND};
use rocksteady_workload::{LoadShape, YcsbConfig};

const SERVERS: usize = 4;
const TABLETS: u32 = 16;
const KEYS: u64 = 120_000;
const CLIENTS: usize = 6;

struct Scale {
    rate_per_client: f64,
    day: Nanos,
    dwell: Nanos,
    flip_at: Nanos,
}

fn scale() -> Scale {
    if std::env::var("ROCKSTEADY_BENCH_SMOKE").is_ok() {
        Scale {
            rate_per_client: 60_000.0,
            day: 2_500 * MILLISECOND,
            dwell: 500 * MILLISECOND,
            flip_at: 1_500 * MILLISECOND,
        }
    } else {
        Scale {
            rate_per_client: 60_000.0,
            day: 8 * SECOND,
            dwell: 1_500 * MILLISECOND,
            flip_at: 5 * SECOND,
        }
    }
}

/// The initial placement: 16 equal hash-range tablets, dealt four per
/// server in bucket order, so the drifting hot region maps onto whole
/// tablets (the granularity the rebalancer can move).
fn tablet_layout() -> Vec<(HashRange, ServerId)> {
    let width = (1u128 << 64) / u128::from(TABLETS);
    (0..TABLETS)
        .map(|b| {
            let start = (u128::from(b) * width) as u64;
            let end = if b == TABLETS - 1 {
                u64::MAX
            } else {
                ((u128::from(b) + 1) * width - 1) as u64
            };
            (
                HashRange { start, end },
                ServerId(b / (TABLETS / SERVERS as u32)),
            )
        })
        .collect()
}

fn base_config() -> ClusterConfig {
    // Timeline-figure scaling (see rocksteady_bench docs): dispatch
    // costs x10 so one hot server saturates at a simulable event rate.
    let mut cost = CostModel::default();
    cost.dispatch_per_msg_ns *= 10;
    cost.dispatch_tx_per_msg_ns *= 10;
    cost.migration_mgr_check_ns *= 10;
    ClusterConfig {
        servers: SERVERS,
        workers: 12,
        cost,
        replicas: 2,
        segment_bytes: 1 << 20,
        sample_interval: 50 * MILLISECOND,
        series_interval: 100 * MILLISECOND,
        sla: Some(400_000),
        seed: 42,
        ..ClusterConfig::default()
    }
}

fn rebalancer_config() -> RebalancerConfig {
    RebalancerConfig {
        interval: 100 * MILLISECOND,
        // Two sources / two targets at once, four cluster-wide: enough
        // concurrency to shed a hotspot quickly, still bounded so the
        // migration traffic cannot swamp any one participant.
        caps: AdmissionCaps {
            per_source: 2,
            per_target: 2,
            cluster: 4,
        },
        // The cooldown keeps the (indistinguishable-under-uniform-
        // attribution) hot tablet from ping-ponging every interval.
        policy: Box::new(GreedyLoadDelta::new(0.12, 4).with_cooldown(800 * MILLISECOND)),
    }
}

fn run_day(rebalance: bool, s: &Scale) -> Cluster {
    let mut cfg = base_config();
    if rebalance {
        cfg.rebalancer = Some(rebalancer_config());
    }
    // The protocol auditor rides along on every run: arming it is
    // guaranteed non-perturbing, and the day must end with zero
    // invariant violations (checked below).
    cfg.audit = true;
    // So does the flight recorder: its watchdog evaluates the anomaly
    // detectors on every sampling interval, and a healthy day — even a
    // rebalanced one full of migrations — must trip none of them. The
    // SLO-burn detector is deliberately left out: this scenario runs
    // the cluster at the edge of its SLA on purpose (breach-minutes is
    // the headline metric), so a burn alert would be a true positive,
    // not a watchdog bug. The four progress/health detectors must stay
    // silent through nine admission-controlled migrations.
    let mut fr = rocksteady_cluster::FlightRecorderConfig::default();
    fr.detectors.slo_burn = None;
    cfg.flight_recorder = Some(fr);
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    for i in 0..CLIENTS {
        let mut y = YcsbConfig::ycsb_b(dir.clone(), TABLE, KEYS, s.rate_per_client);
        y.max_outstanding = 128;
        y.seed = 700 + i as u64;
        // Morning-to-evening drift for most clients; the last flips its
        // working set abruptly mid-day (the reactive worst case).
        y.shape = if i == CLIENTS - 1 {
            LoadShape::SkewFlip {
                at: s.flip_at,
                buckets: TABLETS,
                hot_weight: 0.7,
            }
        } else {
            LoadShape::DiurnalDrift {
                dwell: s.dwell,
                buckets: TABLETS,
                hot_weight: 0.7,
            }
        };
        b.add_ycsb(y);
    }
    let mut cluster = b.build();
    cluster.create_table(TABLE, &tablet_layout());
    cluster.load_table(TABLE, KEYS, 30, 100);
    cluster.seed_backups();
    cluster.run_until(s.day);
    cluster
}

fn breach_minutes(cluster: &Cluster) -> f64 {
    let slo = cluster.slo_report();
    (slo.breach_intervals * cluster.cfg.sample_interval) as f64 / 60e9
}

fn main() {
    let s = scale();
    let cfg = base_config();
    print_table1(
        "Day in the life: autonomous rebalancing vs static placement",
        &cfg,
        &format!(
            "{KEYS} records x 100 B in {TABLETS} tablets, {CLIENTS} clients x {:.0} ops/s, \
             drifting hotspot (dwell {} ms) + skew flip at {} ms, day = {} ms",
            s.rate_per_client,
            s.dwell / MILLISECOND,
            s.flip_at / MILLISECOND,
            s.day / MILLISECOND
        ),
    );

    let off = run_day(false, &s);
    let on = run_day(true, &s);

    let report = on.rebalancer.borrow().clone();
    let peak = on.peak_concurrent_migrations();
    let (bm_off, bm_on) = (breach_minutes(&off), breach_minutes(&on));

    println!(
        "{:>24} {:>16} {:>16}",
        "", "static placement", "rebalancer on"
    );
    println!(
        "{:>24} {:>16.3} {:>16.3}",
        "SLO breach-minutes", bm_off, bm_on
    );
    println!(
        "{:>24} {:>16} {:>16}",
        "breach intervals",
        off.slo_report().breach_intervals,
        on.slo_report().breach_intervals
    );
    println!("{:>24} {:>16} {:>16}", "moves admitted", 0, report.admitted);
    println!(
        "{:>24} {:>16} {:>16}",
        "moves completed", 0, report.completed
    );
    println!("{:>24} {:>16} {:>16}", "peak concurrent", 0, peak);
    println!();
    for mv in &report.moves {
        println!(
            "  t={:>6} ms  migration {:>12}: tablet [{:#018x}..] {} -> {}",
            mv.at / MILLISECOND,
            mv.id.0,
            mv.proposal.range.start,
            mv.proposal.source,
            mv.proposal.target
        );
    }
    println!();

    // Determinism: the whole day — rebalancer decisions included — must
    // replay bit-identically from the same seed.
    let on2 = run_day(true, &s);
    let deterministic = on.sim.events_processed() == on2.sim.events_processed()
        && report.moves == on2.rebalancer.borrow().moves;

    let mut rows = Vec::new();
    for (mode, cluster) in [("static", &off), ("rebalanced", &on)] {
        for (t, p50, p999) in merged_latency_rows(cluster, 0, s.day) {
            rows.push(vec![
                mode.to_string(),
                t.to_string(),
                p50.to_string(),
                p999.to_string(),
            ]);
        }
    }
    export_csv("day_in_the_life_latency", "mode,t_ns,p50_ns,p999_ns", &rows);
    // The placement decisions themselves, next to the latency series
    // they explain: one row per admitted move, in issue order.
    export_csv(
        "day_in_the_life_moves",
        "t_ns,migration_id,table,range_start,range_end,source,target",
        &report
            .moves
            .iter()
            .map(|mv| {
                vec![
                    mv.at.to_string(),
                    mv.id.0.to_string(),
                    mv.proposal.table.0.to_string(),
                    format!("{:#018x}", mv.proposal.range.start),
                    format!("{:#018x}", mv.proposal.range.end),
                    mv.proposal.source.0.to_string(),
                    mv.proposal.target.0.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    export_csv(
        "day_in_the_life_summary",
        "mode,breach_intervals,breach_minutes,moves_admitted,moves_completed,peak_concurrent",
        &[
            vec![
                "static".into(),
                off.slo_report().breach_intervals.to_string(),
                format!("{bm_off:.4}"),
                "0".into(),
                "0".into(),
                "0".into(),
            ],
            vec![
                "rebalanced".into(),
                on.slo_report().breach_intervals.to_string(),
                format!("{bm_on:.4}"),
                report.admitted.to_string(),
                report.completed.to_string(),
                peak.to_string(),
            ],
        ],
    );

    let mut ok = true;
    ok &= check(
        report.completed >= 2,
        &format!(
            "rebalancer completed >= 2 migrations ({})",
            report.completed
        ),
    );
    ok &= check(
        peak >= 2,
        &format!("at least 2 migrations ran concurrently (peak {peak})"),
    );
    ok &= check(
        bm_on < bm_off,
        &format!("rebalancer cut SLO breach-minutes ({bm_off:.3} -> {bm_on:.3})"),
    );
    ok &= check(deterministic, "same seed replays the day byte-identically");
    // The auditor's verdict on the whole day, both placements: every
    // ownership transfer single-owner-clean, every completed migration
    // conservation-verified, nothing leaked at any point.
    for (mode, cluster) in [("static", &off), ("rebalanced", &on)] {
        let audit = cluster.audit_report();
        ok &= check(
            audit.violations == 0,
            &format!(
                "auditor found zero violations over the {mode} day \
                 ({} events checked)",
                audit.events
            ),
        );
    }
    // The flight recorder watched both days too: routine migration under
    // drifting load is exactly the anomaly-free regime, so any incident
    // bundle here is a false positive.
    for (mode, cluster) in [("static", &off), ("rebalanced", &on)] {
        let triggers: Vec<&str> = cluster.incident_log().iter().map(|i| i.trigger).collect();
        ok &= check(
            triggers.is_empty(),
            &format!(
                "flight recorder stayed quiet over the {mode} day \
                 ({} incidents{}{})",
                triggers.len(),
                if triggers.is_empty() { "" } else { ": " },
                triggers.join(", "),
            ),
        );
    }
    // `report.completed` counts moves the target *accepted* (it answers
    // at registration), so late admissions can still be mid-flight when
    // the day ends; conservation is judged against runs that finished.
    let finished = on
        .migration_runs()
        .iter()
        .filter(|(_, _, st)| st.finished_at.is_some())
        .count() as u64;
    ok &= check(
        finished >= 2 && on.audit_report().migrations_verified == finished,
        &format!(
            "every finished move conservation-verified ({} verified of {} finished)",
            on.audit_report().migrations_verified,
            finished
        ),
    );
    std::process::exit(i32::from(!ok));
}
