//! Figures 13 and 14: asynchronous batched PriorityPulls vs the naïve
//! synchronous approach, with background Pulls disabled (§4.4).
//!
//! With no bulk Pulls, the only way records reach the target is
//! on-demand. The paper's findings:
//!
//! - async + batched restores the *median* almost immediately (clients
//!   get "retry later" and the de-duplicated batch fetches hot records
//!   once each);
//! - synchronous single-key PriorityPulls stall target worker cores for
//!   a full round trip per miss, raising target worker utilization and
//!   adding median jitter — but answer waiting clients directly, so
//!   their 99.9th can be lower.

use rocksteady_bench::{
    check, export_csv, mean, merged_latency_rows, print_table1, standard_setup, upper, TABLE,
};
use rocksteady_cluster::{Cluster, ClusterBuilder, ClusterConfig, ControlCmd};
use rocksteady_common::time::fmt_nanos;
use rocksteady_common::{Histogram, MigrationId, Nanos, ServerId, MILLISECOND, SECOND};
use rocksteady_workload::YcsbConfig;
use std::collections::HashSet;

const KEYS: u64 = 300_000;
const CLIENTS: usize = 8;
const RATE_PER_CLIENT: f64 = 60_000.0;
const MIG_AT: Nanos = 300 * MILLISECOND;
const TRACE_WINDOW: Nanos = 300 * MILLISECOND;
const END: Nanos = SECOND;

struct Out {
    name: &'static str,
    cluster: Cluster,
}

fn run(sync: bool) -> Out {
    let mut cfg = ClusterConfig {
        servers: 4,
        workers: 12,
        replicas: 2,
        sample_interval: 10 * MILLISECOND,
        series_interval: 20 * MILLISECOND,
        tracing: true,
        ..ClusterConfig::default()
    };
    cfg.migration.background_pulls = false; // the §4.4 isolation
    cfg.migration.sync_priority_pulls = sync;
    let mut b = ClusterBuilder::new(cfg);
    let dir = b.directory();
    for i in 0..CLIENTS {
        let mut y = YcsbConfig::ycsb_b(dir.clone(), TABLE, KEYS, RATE_PER_CLIENT);
        y.max_outstanding = 64;
        y.seed = 500 + i as u64;
        b.add_ycsb(y);
    }
    b.at(
        MIG_AT,
        ControlCmd::Migrate {
            id: MigrationId(1),
            table: TABLE,
            range: upper(),
            source: ServerId(0),
            target: ServerId(1),
        },
    );
    let mut cluster = b.build();
    standard_setup(&mut cluster, KEYS, 100);
    // Record the trace only around the migration window (first 300 ms
    // after the start command) to bound memory; muting the recorder
    // never perturbs the simulation itself.
    cluster.set_tracing(false);
    cluster.run_until(MIG_AT - MILLISECOND);
    cluster.set_tracing(true);
    cluster.run_until(MIG_AT + TRACE_WINDOW);
    cluster.set_tracing(false);
    cluster.run_until(END);
    Out {
        name: if sync {
            "Sync and Single (b)"
        } else {
            "Async and Batched (a)"
        },
        cluster,
    }
}

fn latency_series(out: &Out) -> Vec<(Nanos, u64, u64)> {
    merged_latency_rows(&out.cluster, 0, Nanos::MAX)
}

fn target_worker_util(out: &Out, from: Nanos, to: Nanos) -> f64 {
    let util = out.cluster.util.borrow();
    mean(
        &util.by_server[&ServerId(1)]
            .iter()
            .filter(|p| p.at >= from && p.at < to)
            .map(|p| p.worker_cores)
            .collect::<Vec<_>>(),
    )
}

/// Peak simultaneous worker occupancy on the target: synchronous
/// PriorityPulls stall many cores at once right after migration starts.
fn target_worker_peak(out: &Out, from: Nanos, to: Nanos) -> f64 {
    let util = out.cluster.util.borrow();
    util.by_server[&ServerId(1)]
        .iter()
        .filter(|p| p.at >= from && p.at < to)
        .map(|p| p.worker_cores)
        .fold(0.0, f64::max)
}

/// Did this run's trace window capture any reads?
fn out_traced(out: &Out) -> bool {
    out.cluster
        .trace
        .instant_arg_histogram("read", "queue")
        .count()
        > 0
}

/// One decomposition series: label, reads, queue/service/hold.
type DecompSeries = (&'static str, u64, Histogram, Histogram, Histogram);

/// Splits the server-side read decomposition by whether the read's
/// journey crossed the live migration (needed retries, or had a
/// PriorityPull issued on its behalf). The split shows where the
/// post-flip tail actually comes from: clean reads keep their
/// pre-migration profile while crossing reads absorb the queue/hold
/// cost of the miss path.
fn decomp_split(out: &Out) -> Vec<DecompSeries> {
    let crossed: HashSet<u64> = out
        .cluster
        .journeys()
        .iter()
        .filter(|j| j.crossed_migration())
        .map(|j| j.trace)
        .collect();
    out.cluster.trace.with_events(|events| {
        let mut series: Vec<DecompSeries> = vec![
            (
                "clean",
                0,
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ),
            (
                "crossed_migration",
                0,
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ),
        ];
        for ev in events {
            if ev.name != "read" || ev.cat != "rpc" {
                continue;
            }
            let (Some(trace), Some(q), Some(sv), Some(h)) = (
                ev.arg("trace"),
                ev.arg("queue"),
                ev.arg("service"),
                ev.arg("hold"),
            ) else {
                continue;
            };
            let row = &mut series[usize::from(crossed.contains(&trace))];
            row.1 += 1;
            row.2.record(q);
            row.3.record(sv);
            row.4.record(h);
        }
        series
    })
}

/// Median-latency jitter: buckets whose median exceeds 1.5x the
/// pre-migration median (Figure 13b's visual signature).
fn median_jitter(out: &Out, pre_median: u64) -> usize {
    latency_series(out)
        .iter()
        .filter(|(t, p50, _)| *t >= MIG_AT && *p50 > pre_median + pre_median / 2)
        .count()
}

fn main() {
    let cfg = ClusterConfig {
        servers: 4,
        workers: 12,
        replicas: 2,
        ..ClusterConfig::default()
    };
    print_table1(
        "Figures 13/14: PriorityPulls without background Pulls",
        &cfg,
        &format!("{KEYS} records x 100 B, {CLIENTS} clients x {RATE_PER_CLIENT:.0} ops/s, bulk Pulls disabled"),
    );

    let asynchronous = run(false);
    let synchronous = run(true);

    for out in [&asynchronous, &synchronous] {
        println!("--- {} ---", out.name);
        println!("Fig 13 (read latency, 20 ms buckets):");
        println!("  {:>8} {:>10} {:>10}", "t", "median", "99.9th");
        for (t, p50, p999) in latency_series(out)
            .iter()
            .filter(|(t, _, _)| *t >= MIG_AT - 60 * MILLISECOND)
        {
            println!(
                "  {:>8} {:>10} {:>10}",
                format!("{}ms", t / MILLISECOND),
                fmt_nanos(*p50),
                fmt_nanos(*p999)
            );
        }
        println!(
            "Fig 14: target worker cores busy during migration window: {:.2}",
            target_worker_util(out, MIG_AT, END)
        );
        // Trace-derived decomposition (first 300 ms of migration): where
        // the read latency actually goes on the server. Synchronous
        // pulls show up as worker *hold* time — the core is pinned for a
        // full PriorityPull round trip per miss.
        let t = &out.cluster.trace;
        let queue = t.instant_arg_histogram("read", "queue");
        let service = t.instant_arg_histogram("read", "service");
        let hold = t.instant_arg_histogram("read", "hold");
        println!(
            "trace: {} reads — median queue {} / service {} / hold {} (99.9th hold {})",
            queue.count(),
            fmt_nanos(queue.percentile(0.5)),
            fmt_nanos(service.percentile(0.5)),
            fmt_nanos(hold.percentile(0.5)),
            fmt_nanos(hold.percentile(0.999)),
        );
        let pp_rpc = t.instant_arg_histogram("priority-pull", "service");
        let pp_batch = t.span_histogram("mig:priority-pull");
        println!(
            "trace: {} PriorityPull RPCs reached the source; {} batched round trips, median {}",
            pp_rpc.count(),
            pp_batch.count(),
            fmt_nanos(pp_batch.percentile(0.5)),
        );
        // Journey-derived split: the same three segments, separated by
        // whether the read crossed the live migration.
        let split = decomp_split(out);
        for (label, reads, q, sv, h) in &split {
            println!(
                "trace[{label}]: {reads} reads — median queue {} / service {} / hold {} (99.9th hold {})",
                fmt_nanos(q.percentile(0.5)),
                fmt_nanos(sv.percentile(0.5)),
                fmt_nanos(h.percentile(0.5)),
                fmt_nanos(h.percentile(0.999)),
            );
        }
        println!();

        // Machine-readable series for re-plotting.
        let s = if out.name.starts_with("Sync") {
            "sync_single"
        } else {
            "async_batched"
        };
        export_csv(
            &format!("fig13_decomp_{s}"),
            "series,reads,queue_p50_ns,service_p50_ns,hold_p50_ns,hold_p999_ns",
            &split
                .iter()
                .map(|(label, reads, q, sv, h)| {
                    vec![
                        (*label).to_string(),
                        reads.to_string(),
                        q.percentile(0.5).to_string(),
                        sv.percentile(0.5).to_string(),
                        h.percentile(0.5).to_string(),
                        h.percentile(0.999).to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        export_csv(
            &format!("fig13_latency_{s}"),
            "t_ns,p50_ns,p999_ns",
            &latency_series(out)
                .iter()
                .map(|(t, p50, p999)| vec![t.to_string(), p50.to_string(), p999.to_string()])
                .collect::<Vec<_>>(),
        );
        let util = out.cluster.util.borrow();
        export_csv(
            &format!("fig14_target_workers_{s}"),
            "t_ns,worker_cores",
            &util.by_server[&ServerId(1)]
                .iter()
                .map(|p| vec![p.at.to_string(), format!("{:.4}", p.worker_cores)])
                .collect::<Vec<_>>(),
        );
    }

    let mut ok = true;
    // Fig 13a: the async median recovers almost immediately — within
    // 100 ms of migration start it is back near the pre-migration value.
    let pre_median = latency_series(&asynchronous)
        .iter()
        .filter(|(t, _, _)| *t < MIG_AT)
        .map(|(_, p50, _)| *p50)
        .max()
        .unwrap_or(0);
    let async_after: Vec<u64> = latency_series(&asynchronous)
        .iter()
        .filter(|(t, _, _)| *t >= MIG_AT + 100 * MILLISECOND)
        .map(|(_, p50, _)| *p50)
        .collect();
    let async_median_after = async_after.iter().copied().max().unwrap_or(0);
    ok &= check(
        async_median_after <= pre_median.saturating_mul(3),
        &format!(
            "Fig 13a: async median recovers quickly (pre {}, after {})",
            fmt_nanos(pre_median),
            fmt_nanos(async_median_after)
        ),
    );
    // Fig 13b: synchronous single-key pulls cause median jitter that the
    // async batched mode does not exhibit (§4.4).
    let async_jitter = median_jitter(&asynchronous, pre_median);
    let sync_jitter = median_jitter(&synchronous, pre_median);
    ok &= check(
        sync_jitter >= async_jitter,
        &format!("Fig 13b: sync mode shows at least as much median jitter ({sync_jitter} vs {async_jitter} buckets)"),
    );
    // Fig 14 / §4.4: "synchronous priority pulls would increase both
    // dispatch and worker load during migration due to the increased
    // number of RPCs to the source" — without batching and
    // de-duplication, the source serves far more PriorityPull RPCs.
    let a_mean = target_worker_util(&asynchronous, MIG_AT, END);
    let s_mean = target_worker_util(&synchronous, MIG_AT, END);
    let a_peak = target_worker_peak(&asynchronous, MIG_AT, MIG_AT + 100 * MILLISECOND);
    let s_peak = target_worker_peak(&synchronous, MIG_AT, MIG_AT + 100 * MILLISECOND);
    println!(
        "Fig 14 detail: worker cores busy — async mean {a_mean:.2} peak {a_peak:.1}, sync mean {s_mean:.2} peak {s_peak:.1}"
    );
    let pp = |out: &Out| {
        out.cluster.server_stats[&ServerId(0)]
            .priority_pulls_served
            .get()
    };
    println!(
        "PriorityPull RPCs served by the source: async {} vs sync {}",
        pp(&asynchronous),
        pp(&synchronous)
    );
    // §4.4's latency trade-off, directly: the sync approach answers the
    // waiting client the moment the pull returns, so its 99.9th is no
    // worse than async's; async's median is no worse than sync's.
    let during = |out: &Out| {
        let mut h = rocksteady_common::Histogram::new();
        for stats in &out.cluster.client_stats {
            let s = stats.borrow();
            for (at, b) in s.read_latency.iter() {
                if (MIG_AT..MIG_AT + 300 * MILLISECOND).contains(&at) {
                    h.merge(b);
                }
            }
        }
        (h.percentile(0.5), h.percentile(0.999))
    };
    let (a_p50, a_p999) = during(&asynchronous);
    let (s_p50, s_p999) = during(&synchronous);
    ok &= check(
        s_p999 <= a_p999.saturating_mul(13) / 10,
        &format!(
            "Fig 13: sync 99.9th no worse than async (sync {} vs async {})",
            fmt_nanos(s_p999),
            fmt_nanos(a_p999)
        ),
    );
    ok &= check(
        a_p50 <= s_p50.saturating_mul(13) / 10,
        &format!(
            "Fig 13: async median no worse than sync (async {} vs sync {})",
            fmt_nanos(a_p50),
            fmt_nanos(s_p50)
        ),
    );
    // The trace window captured the migration in both modes, and the
    // async mode's PriorityPulls really are batched: fewer RPCs reach
    // the source than in the single-key-per-miss mode.
    let pp_rpcs = |out: &Out| {
        out.cluster
            .trace
            .instant_arg_histogram("priority-pull", "service")
            .count()
    };
    ok &= check(
        out_traced(&asynchronous) && out_traced(&synchronous),
        "traces captured reads during the migration window",
    );
    let crossed_reads = |out: &Out| decomp_split(out)[1].1;
    ok &= check(
        crossed_reads(&asynchronous) > 0 && crossed_reads(&synchronous) > 0,
        &format!(
            "journey split captured migration-crossing reads (async {}, sync {})",
            crossed_reads(&asynchronous),
            crossed_reads(&synchronous)
        ),
    );
    ok &= check(
        pp_rpcs(&synchronous) >= pp_rpcs(&asynchronous),
        &format!(
            "Fig 14: batching sends no more PP RPCs than sync ({} vs {})",
            pp_rpcs(&asynchronous),
            pp_rpcs(&synchronous)
        ),
    );
    // Both variants keep serving: no starvation in either mode.
    for out in [&asynchronous, &synchronous] {
        let served: u64 = out
            .cluster
            .client_stats
            .iter()
            .map(|c| c.borrow().objects.merged().count())
            .sum();
        ok &= check(
            served > 100_000,
            &format!(
                "{}: clients keep completing operations ({served})",
                out.name
            ),
        );
    }
    std::process::exit(i32::from(!ok));
}
