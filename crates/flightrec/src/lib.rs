//! Always-on flight recorder: anomaly detectors and incident plumbing.
//!
//! Rocksteady's observability layers (trace/metrics/profiler/audit) are
//! post-hoc: they record everything and answer questions after the run.
//! At the scale the roadmap targets (tens of servers, hundreds of
//! millions of records) nothing can record everything, and nobody is
//! watching live. Production in-memory stores solve this with a
//! *black-box flight recorder*: bounded ring buffers that are always
//! on, plus watchdogs that detect anomalies online and dump one
//! correlated forensic bundle only when something goes wrong.
//!
//! This crate is the storage-independent half of that recorder:
//!
//! - [`FlightRecorderConfig`]: ring capacities, bundle window, and the
//!   detector catalog with thresholds;
//! - [`Detector`]: the pluggable anomaly-detector interface, evaluated
//!   once per sampling interval on a [`WatchdogSample`] assembled by
//!   the cluster watchdog actor (virtual clock only — detectors never
//!   read wall time);
//! - the five built-in detectors: multi-window SLO burn rate
//!   ([`SloBurnDetector`]), migration-progress stall
//!   ([`MigrationStallDetector`]), replay-backlog watermark
//!   ([`ReplayBacklogDetector`]), dispatch overcommit
//!   ([`DispatchOvercommitDetector`]), and lineage-dependency age
//!   ([`LineageAgeDetector`]);
//! - [`CooldownTracker`]: per-detector and global incident cooldowns so
//!   one anomaly episode produces exactly one bundle.
//!
//! The cluster harness (`rocksteady-cluster::watchdog`) owns the other
//! half: assembling samples from live handles and exporting the
//! `rocksteady-incident-v1` JSON bundle when a detector fires.
//!
//! Everything here is deterministic: detectors are pure functions of
//! the sample stream plus their own integer state, so the same seed
//! produces byte-identical incident bundles.

#![deny(missing_docs)]

use std::collections::BTreeMap;

use rocksteady_common::{Nanos, SECOND};

// ------------------------------------------------------------ config --

/// Threshold configuration for [`SloBurnDetector`]: fire when *both*
/// the fast and the slow window burn rates exceed their thresholds
/// (the SRE multi-window pattern — the fast window catches the onset,
/// the slow window suppresses blips).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloBurnConfig {
    /// Minimum fast-window (1 s) burn rate, in permille of intervals
    /// breaching.
    pub fast_threshold_permille: u64,
    /// Minimum slow-window (10 s) burn rate, in permille.
    pub slow_threshold_permille: u64,
}

impl Default for SloBurnConfig {
    fn default() -> Self {
        SloBurnConfig {
            fast_threshold_permille: 500,
            slow_threshold_permille: 200,
        }
    }
}

/// Threshold configuration for [`MigrationStallDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationStallConfig {
    /// Consecutive sampling intervals an in-flight migration may show no
    /// gather/replay advance before the detector fires.
    pub stall_intervals: u64,
}

impl Default for MigrationStallConfig {
    fn default() -> Self {
        MigrationStallConfig {
            stall_intervals: 20,
        }
    }
}

/// Threshold configuration for [`ReplayBacklogDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayBacklogConfig {
    /// Records gathered but not yet fed through replay (received −
    /// applied at the replay boundary) above which a run is backlogged.
    pub watermark_records: u64,
    /// Consecutive intervals the watermark must be exceeded.
    pub sustain_intervals: u64,
}

impl Default for ReplayBacklogConfig {
    fn default() -> Self {
        ReplayBacklogConfig {
            watermark_records: 50_000,
            sustain_intervals: 3,
        }
    }
}

/// Threshold configuration for [`DispatchOvercommitDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchOvercommitConfig {
    /// Sliding window length, in sampling intervals.
    pub window_intervals: u64,
    /// Overcommitted dispatch windows within the sliding window above
    /// which the detector fires.
    pub threshold_windows: u64,
}

impl Default for DispatchOvercommitConfig {
    fn default() -> Self {
        DispatchOvercommitConfig {
            window_intervals: 10,
            threshold_windows: 8,
        }
    }
}

/// Threshold configuration for [`LineageAgeDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineageAgeConfig {
    /// Maximum age of a coordinator lineage dependency before the
    /// detector fires (a dependency that old means a migration is not
    /// completing and crash recovery of the source is held hostage).
    pub max_age_ns: Nanos,
}

impl Default for LineageAgeConfig {
    fn default() -> Self {
        LineageAgeConfig {
            max_age_ns: 5 * SECOND,
        }
    }
}

/// Which detectors run, with their thresholds. `None` disables one.
///
/// Evaluation (and hence trigger priority when several fire on the same
/// tick) is catalog order: stall, backlog, SLO burn, overcommit,
/// lineage age — progress anomalies outrank their latency symptoms, so
/// the bundle's trigger names the most causal firing detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Migration-progress stall detector.
    pub migration_stall: Option<MigrationStallConfig>,
    /// Replay-backlog watermark detector.
    pub replay_backlog: Option<ReplayBacklogConfig>,
    /// Multi-window SLO burn-rate detector.
    pub slo_burn: Option<SloBurnConfig>,
    /// Dispatch-overcommit detector.
    pub dispatch_overcommit: Option<DispatchOvercommitConfig>,
    /// Lineage-dependency age detector.
    pub lineage_age: Option<LineageAgeConfig>,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            migration_stall: Some(MigrationStallConfig::default()),
            replay_backlog: Some(ReplayBacklogConfig::default()),
            slo_burn: Some(SloBurnConfig::default()),
            dispatch_overcommit: Some(DispatchOvercommitConfig::default()),
            lineage_age: Some(LineageAgeConfig::default()),
        }
    }
}

/// Configuration of the cluster flight recorder.
///
/// Arming the recorder (`ClusterConfig::flight_recorder = Some(..)`)
/// never perturbs the event schedule: the watchdog actor is installed
/// at a fixed cadence either way (like the sampler and SLO monitor),
/// and detector evaluation is pure state mutation on the virtual
/// clock. With both capacities `None` the trace and profile exports of
/// an armed run are byte-identical to a disarmed one.
#[derive(Debug, Clone)]
pub struct FlightRecorderConfig {
    /// Ring capacity (events) for the trace buffer; `None` leaves the
    /// buffer unbounded (exactly the pre-recorder behavior).
    pub trace_capacity: Option<usize>,
    /// Ring capacity (events) for the audit buffer; `None` leaves it
    /// unbounded.
    pub audit_capacity: Option<usize>,
    /// How far back the incident bundle's trace slice reaches (events
    /// completing within `bundle_trace_window_ns` of the trigger).
    pub bundle_trace_window_ns: Nanos,
    /// How many trailing audit events the bundle embeds.
    pub audit_tail_events: usize,
    /// How many of the trigger window's slowest request journeys the
    /// bundle embeds (full cross-node causal chains, slowest first).
    pub bundle_journeys: usize,
    /// Global incident cooldown: after a bundle is exported, no further
    /// bundle (from any detector) until this much virtual time passes —
    /// one incident produces one bundle.
    pub incident_cooldown_ns: Nanos,
    /// Per-detector cooldown, measured from the *last tick the
    /// condition held*: a continuously-firing detector produces one
    /// bundle per episode, not one per tick, and must go quiet for this
    /// long before it can trigger again.
    pub detector_cooldown_ns: Nanos,
    /// The detector catalog.
    pub detectors: DetectorConfig,
}

impl Default for FlightRecorderConfig {
    fn default() -> Self {
        FlightRecorderConfig {
            trace_capacity: None,
            audit_capacity: None,
            bundle_trace_window_ns: 50 * rocksteady_common::MILLISECOND,
            audit_tail_events: 64,
            bundle_journeys: 3,
            incident_cooldown_ns: SECOND,
            detector_cooldown_ns: SECOND,
            detectors: DetectorConfig::default(),
        }
    }
}

// ------------------------------------------------------------ sample --

/// Progress counters of one migration run, as seen from its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationSample {
    /// Migration id.
    pub id: u64,
    /// Target server id.
    pub target: u32,
    /// Whether the run is still in flight (begun, neither finished nor
    /// abandoned).
    pub in_flight: bool,
    /// Records gathered over the wire (bulk pulls + priority pulls).
    pub gathered: u64,
    /// Records received by replay (handed to a replay batch).
    pub replay_received: u64,
    /// Records actually applied by replay (version-max survivors).
    pub replay_applied: u64,
}

/// One coordinator lineage dependency and how long it has existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineageSample {
    /// The owning migration id.
    pub id: u64,
    /// Virtual time since the dependency was first observed.
    pub age_ns: Nanos,
}

/// Everything the detectors see on one watchdog tick. Assembled by the
/// cluster watchdog from live handles; all integers, all virtual time.
#[derive(Debug, Clone, Default)]
pub struct WatchdogSample {
    /// Tick time (virtual).
    pub at: Nanos,
    /// Sampling interval.
    pub interval_ns: Nanos,
    /// Fast-window (1 s) SLO burn rate in permille of intervals
    /// breaching.
    pub burn_fast_permille: u64,
    /// Slow-window (10 s) SLO burn rate in permille.
    pub burn_slow_permille: u64,
    /// Per-run migration progress, in migration-id order.
    pub migrations: Vec<MigrationSample>,
    /// Cumulative `node_dispatch_overcommit_total` across all servers.
    pub dispatch_overcommit_total: u64,
    /// Cumulative `client_retries` across all clients (context for burn
    /// incidents: retry storms are the client-visible symptom).
    pub client_retries_total: u64,
    /// Outstanding lineage dependencies with ages, in id order.
    pub lineage: Vec<LineageSample>,
}

// ----------------------------------------------------------- readings --

/// What a firing detector observed: the value that crossed the
/// threshold plus a human-readable detail line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorReading {
    /// Detector name (stable, kebab-case; the bundle's trigger name).
    pub detector: &'static str,
    /// The observed value that crossed the threshold.
    pub value: u64,
    /// The configured threshold it crossed.
    pub threshold: u64,
    /// The migration id the reading is about, when the anomaly is
    /// attributable to one run (stall, backlog, lineage age) — the
    /// bundle uses it to attach the right `explain_migration` story.
    pub subject: Option<u64>,
    /// One-line explanation with the key numbers.
    pub detail: String,
}

impl DetectorReading {
    /// Deterministic JSON (`{"name":...,"value":...,"threshold":...,
    /// "detail":...}`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"name\":\"");
        out.push_str(self.detector);
        out.push_str("\",\"value\":");
        out.push_str(&self.value.to_string());
        out.push_str(",\"threshold\":");
        out.push_str(&self.threshold.to_string());
        if let Some(id) = self.subject {
            out.push_str(",\"subject\":");
            out.push_str(&id.to_string());
        }
        out.push_str(",\"detail\":\"");
        push_escaped(&mut out, &self.detail);
        out.push_str("\"}");
        out
    }
}

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// and control characters; details are ASCII by construction).
pub fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

// ---------------------------------------------------------- detectors --

/// A pluggable anomaly detector, evaluated once per watchdog tick.
///
/// Detectors keep their own integer state (previous counters, stagnant
/// tick counts) and must be deterministic functions of the sample
/// stream — no wall clocks, no randomness.
pub trait Detector {
    /// Stable detector name (the bundle trigger name when this detector
    /// fires first).
    fn name(&self) -> &'static str;
    /// Evaluates one tick; `Some` when the anomaly condition holds.
    fn evaluate(&mut self, sample: &WatchdogSample) -> Option<DetectorReading>;
}

/// Multi-window SLO burn rate: fires when both the fast (1 s) and the
/// slow (10 s) windows burn above their thresholds.
#[derive(Debug)]
pub struct SloBurnDetector {
    cfg: SloBurnConfig,
}

impl SloBurnDetector {
    /// Creates the detector with `cfg` thresholds.
    pub fn new(cfg: SloBurnConfig) -> Self {
        SloBurnDetector { cfg }
    }
}

impl Detector for SloBurnDetector {
    fn name(&self) -> &'static str {
        "slo-burn"
    }

    fn evaluate(&mut self, s: &WatchdogSample) -> Option<DetectorReading> {
        if s.burn_fast_permille >= self.cfg.fast_threshold_permille
            && s.burn_slow_permille >= self.cfg.slow_threshold_permille
        {
            return Some(DetectorReading {
                detector: self.name(),
                value: s.burn_fast_permille,
                threshold: self.cfg.fast_threshold_permille,
                subject: None,
                detail: format!(
                    "SLO burn rate {} permille over 1s and {} permille over 10s \
                     (thresholds {}/{}); {} client retries so far",
                    s.burn_fast_permille,
                    s.burn_slow_permille,
                    self.cfg.fast_threshold_permille,
                    self.cfg.slow_threshold_permille,
                    s.client_retries_total,
                ),
            });
        }
        None
    }
}

/// Migration-progress stall: an in-flight migration whose gather and
/// replay counters have not advanced for N consecutive intervals.
#[derive(Debug)]
pub struct MigrationStallDetector {
    cfg: MigrationStallConfig,
    /// id → (last observed progress sum, consecutive stagnant ticks).
    seen: BTreeMap<u64, (u64, u64)>,
}

impl MigrationStallDetector {
    /// Creates the detector with `cfg` thresholds.
    pub fn new(cfg: MigrationStallConfig) -> Self {
        MigrationStallDetector {
            cfg,
            seen: BTreeMap::new(),
        }
    }
}

impl Detector for MigrationStallDetector {
    fn name(&self) -> &'static str {
        "migration-stall"
    }

    fn evaluate(&mut self, s: &WatchdogSample) -> Option<DetectorReading> {
        // Drop state for runs that are no longer in flight.
        let live: Vec<u64> = s
            .migrations
            .iter()
            .filter(|m| m.in_flight)
            .map(|m| m.id)
            .collect();
        self.seen.retain(|id, _| live.contains(id));

        let mut worst: Option<(u64, u64, &MigrationSample)> = None;
        for m in s.migrations.iter().filter(|m| m.in_flight) {
            let progress = m.gathered + m.replay_received + m.replay_applied;
            let stagnant = match self.seen.entry(m.id) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    // First sight establishes the baseline, not a stall.
                    v.insert((progress, 0));
                    0
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let e = o.get_mut();
                    if progress == e.0 {
                        e.1 += 1;
                    } else {
                        *e = (progress, 0);
                    }
                    e.1
                }
            };
            if stagnant >= self.cfg.stall_intervals && worst.is_none_or(|(_, w, _)| stagnant > w) {
                worst = Some((m.id, stagnant, m));
            }
        }
        worst.map(|(id, stagnant, m)| DetectorReading {
            detector: self.name(),
            value: stagnant,
            threshold: self.cfg.stall_intervals,
            subject: Some(id),
            detail: format!(
                "migration {} on server {} made no gather/replay advance for {} \
                 intervals (gathered={} received={} applied={})",
                id, m.target, stagnant, m.gathered, m.replay_received, m.replay_applied,
            ),
        })
    }
}

/// Replay-backlog watermark: records gathered over the wire but not yet
/// fed through replay (received − applied at the replay boundary, the
/// same counters the audit conservation invariant checks).
#[derive(Debug)]
pub struct ReplayBacklogDetector {
    cfg: ReplayBacklogConfig,
    sustained: u64,
}

impl ReplayBacklogDetector {
    /// Creates the detector with `cfg` thresholds.
    pub fn new(cfg: ReplayBacklogConfig) -> Self {
        ReplayBacklogDetector { cfg, sustained: 0 }
    }
}

impl Detector for ReplayBacklogDetector {
    fn name(&self) -> &'static str {
        "replay-backlog"
    }

    fn evaluate(&mut self, s: &WatchdogSample) -> Option<DetectorReading> {
        let worst = s
            .migrations
            .iter()
            .filter(|m| m.in_flight)
            .map(|m| (m.gathered.saturating_sub(m.replay_received), m))
            .max_by_key(|(b, m)| (*b, std::cmp::Reverse(m.id)));
        let Some((backlog, m)) = worst else {
            self.sustained = 0;
            return None;
        };
        if backlog >= self.cfg.watermark_records {
            self.sustained += 1;
        } else {
            self.sustained = 0;
        }
        if self.sustained >= self.cfg.sustain_intervals {
            return Some(DetectorReading {
                detector: self.name(),
                value: backlog,
                threshold: self.cfg.watermark_records,
                subject: Some(m.id),
                detail: format!(
                    "migration {} on server {} has {} records gathered but not \
                     replayed (gathered={} received={} applied={}) for {} intervals",
                    m.id,
                    m.target,
                    backlog,
                    m.gathered,
                    m.replay_received,
                    m.replay_applied,
                    self.sustained,
                ),
            });
        }
        None
    }
}

/// Dispatch overcommit: too many sampling windows in which a dispatch
/// core was double-booked, within a sliding window of intervals.
#[derive(Debug)]
pub struct DispatchOvercommitDetector {
    cfg: DispatchOvercommitConfig,
    prev_total: u64,
    /// Per-tick overcommit deltas, most recent last.
    deltas: Vec<u64>,
}

impl DispatchOvercommitDetector {
    /// Creates the detector with `cfg` thresholds.
    pub fn new(cfg: DispatchOvercommitConfig) -> Self {
        DispatchOvercommitDetector {
            cfg,
            prev_total: 0,
            deltas: Vec::new(),
        }
    }
}

impl Detector for DispatchOvercommitDetector {
    fn name(&self) -> &'static str {
        "dispatch-overcommit"
    }

    fn evaluate(&mut self, s: &WatchdogSample) -> Option<DetectorReading> {
        let delta = s.dispatch_overcommit_total.saturating_sub(self.prev_total);
        self.prev_total = s.dispatch_overcommit_total;
        self.deltas.push(delta);
        let w = self.cfg.window_intervals.max(1) as usize;
        if self.deltas.len() > w {
            let excess = self.deltas.len() - w;
            self.deltas.drain(..excess);
        }
        let windowed: u64 = self.deltas.iter().sum();
        if windowed >= self.cfg.threshold_windows {
            return Some(DetectorReading {
                detector: self.name(),
                value: windowed,
                threshold: self.cfg.threshold_windows,
                subject: None,
                detail: format!(
                    "{} overcommitted dispatch windows in the last {} intervals \
                     ({} total since start)",
                    windowed, w, s.dispatch_overcommit_total,
                ),
            });
        }
        None
    }
}

/// Lineage-dependency age: a migration's lineage dependency outliving
/// its threshold means the run is wedged and the source's crash
/// recovery is held hostage on the target's log tail (§3.4).
#[derive(Debug)]
pub struct LineageAgeDetector {
    cfg: LineageAgeConfig,
}

impl LineageAgeDetector {
    /// Creates the detector with `cfg` thresholds.
    pub fn new(cfg: LineageAgeConfig) -> Self {
        LineageAgeDetector { cfg }
    }
}

impl Detector for LineageAgeDetector {
    fn name(&self) -> &'static str {
        "lineage-age"
    }

    fn evaluate(&mut self, s: &WatchdogSample) -> Option<DetectorReading> {
        let oldest = s
            .lineage
            .iter()
            .max_by_key(|d| (d.age_ns, std::cmp::Reverse(d.id)))?;
        if oldest.age_ns >= self.cfg.max_age_ns {
            return Some(DetectorReading {
                detector: self.name(),
                value: oldest.age_ns,
                threshold: self.cfg.max_age_ns,
                subject: Some(oldest.id),
                detail: format!(
                    "lineage dependency of migration {} is {} ns old \
                     ({} dependencies outstanding)",
                    oldest.id,
                    oldest.age_ns,
                    s.lineage.len(),
                ),
            });
        }
        None
    }
}

/// Builds the detector catalog from `cfg`, in evaluation (= trigger
/// priority) order: stall, backlog, SLO burn, overcommit, lineage age.
pub fn build_detectors(cfg: &DetectorConfig) -> Vec<Box<dyn Detector>> {
    let mut out: Vec<Box<dyn Detector>> = Vec::new();
    if let Some(c) = cfg.migration_stall {
        out.push(Box::new(MigrationStallDetector::new(c)));
    }
    if let Some(c) = cfg.replay_backlog {
        out.push(Box::new(ReplayBacklogDetector::new(c)));
    }
    if let Some(c) = cfg.slo_burn {
        out.push(Box::new(SloBurnDetector::new(c)));
    }
    if let Some(c) = cfg.dispatch_overcommit {
        out.push(Box::new(DispatchOvercommitDetector::new(c)));
    }
    if let Some(c) = cfg.lineage_age {
        out.push(Box::new(LineageAgeDetector::new(c)));
    }
    out
}

// ---------------------------------------------------------- cooldowns --

/// Per-detector and global cooldowns so one anomaly episode produces
/// exactly one incident bundle.
///
/// Per-detector cooldowns are measured from the *last tick the firing
/// condition held*: a condition that keeps holding keeps refreshing its
/// own cooldown, so a continuous episode fires once, and the detector
/// must go quiet for the full cooldown before it can trigger again.
/// The global incident cooldown additionally suppresses bundles from
/// *other* detectors right after one fired — a cascade (stall → burn →
/// lineage age) is one incident.
#[derive(Debug)]
pub struct CooldownTracker {
    incident_cooldown_ns: Nanos,
    detector_cooldown_ns: Nanos,
    last_incident: Option<Nanos>,
    /// Detector → last tick its condition held.
    last_hold: BTreeMap<&'static str, Nanos>,
}

impl CooldownTracker {
    /// Creates a tracker with the given cooldowns.
    pub fn new(incident_cooldown_ns: Nanos, detector_cooldown_ns: Nanos) -> Self {
        CooldownTracker {
            incident_cooldown_ns,
            detector_cooldown_ns,
            last_incident: None,
            last_hold: BTreeMap::new(),
        }
    }

    /// Records this tick's firing detectors and decides whether a new
    /// incident may be opened. Returns the index (into `firing`) of the
    /// trigger — the first detector that is out of cooldown — or `None`
    /// when every firing detector is cooling down or the global
    /// incident cooldown is active.
    pub fn admit(&mut self, at: Nanos, firing: &[DetectorReading]) -> Option<usize> {
        let mut trigger = None;
        for (i, r) in firing.iter().enumerate() {
            let cooled = match self.last_hold.get(r.detector) {
                Some(&held) => at.saturating_sub(held) >= self.detector_cooldown_ns,
                None => true,
            };
            if trigger.is_none() && cooled {
                trigger = Some(i);
            }
        }
        // Refresh every firing detector's hold time, whether or not a
        // bundle opens: a continuing condition keeps its own cooldown
        // alive.
        for r in firing {
            self.last_hold.insert(r.detector, at);
        }
        let globally_open = match self.last_incident {
            Some(t) => at.saturating_sub(t) >= self.incident_cooldown_ns,
            None => true,
        };
        let admitted = trigger.filter(|_| globally_open);
        if admitted.is_some() {
            self.last_incident = Some(at);
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocksteady_common::MILLISECOND;

    fn sample(at: Nanos) -> WatchdogSample {
        WatchdogSample {
            at,
            interval_ns: 10 * MILLISECOND,
            ..WatchdogSample::default()
        }
    }

    fn mig(id: u64, gathered: u64, received: u64, applied: u64) -> MigrationSample {
        MigrationSample {
            id,
            target: 1,
            in_flight: true,
            gathered,
            replay_received: received,
            replay_applied: applied,
        }
    }

    #[test]
    fn slo_burn_requires_both_windows() {
        let mut d = SloBurnDetector::new(SloBurnConfig::default());
        let mut s = sample(0);
        s.burn_fast_permille = 900;
        s.burn_slow_permille = 100; // slow window quiet: a blip, not a burn
        assert!(d.evaluate(&s).is_none());
        s.burn_slow_permille = 300;
        let r = d.evaluate(&s).expect("both windows burning");
        assert_eq!(r.detector, "slo-burn");
        assert_eq!(r.value, 900);
    }

    #[test]
    fn stall_counts_consecutive_stagnant_intervals() {
        let mut d = MigrationStallDetector::new(MigrationStallConfig { stall_intervals: 3 });
        let mut s = sample(0);
        s.migrations = vec![mig(7, 100, 50, 50)];
        assert!(d.evaluate(&s).is_none(), "first sight establishes baseline");
        assert!(d.evaluate(&s).is_none());
        assert!(d.evaluate(&s).is_none());
        let r = d.evaluate(&s).expect("3 stagnant intervals");
        assert_eq!(r.detector, "migration-stall");
        assert!(r.detail.contains("migration 7"), "{}", r.detail);
        // Any advance resets the count.
        s.migrations = vec![mig(7, 101, 50, 50)];
        assert!(d.evaluate(&s).is_none());
        // A finished run stops being tracked entirely.
        s.migrations[0].in_flight = false;
        assert!(d.evaluate(&s).is_none());
        assert!(d.evaluate(&s).is_none());
    }

    #[test]
    fn backlog_needs_sustained_watermark() {
        let mut d = ReplayBacklogDetector::new(ReplayBacklogConfig {
            watermark_records: 1_000,
            sustain_intervals: 2,
        });
        let mut s = sample(0);
        s.migrations = vec![mig(3, 5_000, 100, 100)];
        assert!(d.evaluate(&s).is_none(), "one interval is not sustained");
        let r = d.evaluate(&s).expect("two intervals over watermark");
        assert_eq!(r.detector, "replay-backlog");
        assert_eq!(r.value, 4_900);
        // Replay catching up clears the streak.
        s.migrations = vec![mig(3, 5_000, 4_800, 4_700)];
        assert!(d.evaluate(&s).is_none());
    }

    #[test]
    fn overcommit_windows_slide() {
        let mut d = DispatchOvercommitDetector::new(DispatchOvercommitConfig {
            window_intervals: 3,
            threshold_windows: 5,
        });
        let mut s = sample(0);
        for total in [2u64, 4, 5] {
            s.dispatch_overcommit_total = total;
            if total < 5 {
                assert!(d.evaluate(&s).is_none());
            } else {
                assert!(d.evaluate(&s).is_some(), "5 overcommits in 3 ticks");
            }
        }
        // The early burst slides out of the window.
        for _ in 0..3 {
            let r = d.evaluate(&s);
            let _ = r;
        }
        assert!(d.evaluate(&s).is_none(), "no new overcommits");
    }

    #[test]
    fn lineage_age_fires_on_oldest() {
        let mut d = LineageAgeDetector::new(LineageAgeConfig { max_age_ns: SECOND });
        let mut s = sample(0);
        s.lineage = vec![
            LineageSample { id: 1, age_ns: 100 },
            LineageSample {
                id: 2,
                age_ns: 2 * SECOND,
            },
        ];
        let r = d.evaluate(&s).expect("dep 2 is too old");
        assert!(r.detail.contains("migration 2"), "{}", r.detail);
        s.lineage.pop();
        assert!(d.evaluate(&s).is_none());
    }

    #[test]
    fn cooldown_one_bundle_per_episode() {
        let mut t = CooldownTracker::new(SECOND, SECOND);
        let r = DetectorReading {
            detector: "migration-stall",
            value: 5,
            threshold: 3,
            subject: Some(7),
            detail: String::new(),
        };
        assert_eq!(t.admit(0, std::slice::from_ref(&r)), Some(0));
        // Condition keeps holding every 10 ms: the hold refresh keeps
        // the detector cooling and no second bundle opens.
        for i in 1..=200u64 {
            assert_eq!(
                t.admit(i * 10 * MILLISECOND, std::slice::from_ref(&r)),
                None
            );
        }
        // After the condition clears for a full cooldown, it may fire
        // again.
        assert_eq!(t.admit(200 * 10 * MILLISECOND + 2 * SECOND, &[r]), Some(0));
    }

    #[test]
    fn global_cooldown_merges_cascades() {
        let mut t = CooldownTracker::new(SECOND, SECOND);
        let stall = DetectorReading {
            detector: "migration-stall",
            value: 5,
            threshold: 3,
            subject: Some(7),
            detail: String::new(),
        };
        let burn = DetectorReading {
            detector: "slo-burn",
            value: 900,
            threshold: 500,
            subject: None,
            detail: String::new(),
        };
        // Stall fires and opens the incident.
        assert_eq!(t.admit(0, &[stall]), Some(0));
        // 100 ms later the latency symptom fires: same incident, no
        // second bundle.
        assert_eq!(
            t.admit(100 * MILLISECOND, std::slice::from_ref(&burn)),
            None
        );
        // Long after the incident window, a fresh burn fires on its own.
        assert_eq!(t.admit(10 * SECOND, &[burn]), Some(0));
    }

    #[test]
    fn trigger_priority_is_catalog_order() {
        let detectors = build_detectors(&DetectorConfig::default());
        let names: Vec<&str> = detectors.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec![
                "migration-stall",
                "replay-backlog",
                "slo-burn",
                "dispatch-overcommit",
                "lineage-age",
            ]
        );
    }

    #[test]
    fn reading_json_escapes_details() {
        let r = DetectorReading {
            detector: "slo-burn",
            value: 1,
            threshold: 2,
            subject: None,
            detail: "a \"quoted\" \\ line".into(),
        };
        assert_eq!(
            r.to_json(),
            "{\"name\":\"slo-burn\",\"value\":1,\"threshold\":2,\
             \"detail\":\"a \\\"quoted\\\" \\\\ line\"}"
        );
    }
}
