//! The backup service: replicated segment storage.
//!
//! Every RAMCloud server runs a backup beside its master (Figure 1). A
//! master's log segments are replicated to `R` backups as they are
//! written (the write path waits for these acks — that is why durable
//! writes take 15 µs, §2), and crash recovery reads the segment images
//! back to reconstruct the dead master's tablets (§2, §3.4).
//!
//! Rocksteady's lineage design leans on this component twice: the target
//! defers re-replication of migrated data (its side-log segments are
//! replicated lazily at commit), and if a migration participant crashes,
//! recovery replays the *union* of the source's replicated log and the
//! target's replicated log tail (§3.4).
//!
//! The store holds real bytes; recovery integration tests parse them back
//! with full checksum verification.

use std::collections::HashMap;

use bytes::Bytes;
use parking_lot::Mutex;
use rocksteady_common::ServerId;
use rocksteady_proto::msg::SegmentImage;

/// One backup's replica store.
///
/// Keyed by `(owning master, segment id)`; each replica is a byte image
/// that grows by in-order appends (RAMCloud replicates the open head
/// incrementally) and is sealed by a close.
pub struct BackupService {
    /// This backup's server id (for reporting only).
    pub id: ServerId,
    replicas: Mutex<HashMap<(ServerId, u64), Replica>>,
}

/// A replica holds the appended frames as-is (reference-counted slices
/// of the replication RPCs) rather than memcpy'ing them into one flat
/// buffer: the write path replicates every log append `R` times, and the
/// flat image is only ever needed at recovery, where [`BackupService::fetch`]
/// materializes it.
#[derive(Debug, Default)]
struct Replica {
    chunks: Vec<Bytes>,
    len: usize,
    closed: bool,
}

/// Outcome of an append to a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// Bytes stored.
    Ok,
    /// The chunk's offset did not line up with the bytes already held
    /// (lost or reordered replication traffic); the append is ignored and
    /// the caller should re-send from the replica's length.
    OffsetMismatch {
        /// Bytes currently held for this replica.
        have: u64,
    },
    /// The replica was already closed.
    Closed,
}

impl BackupService {
    /// Creates an empty backup.
    pub fn new(id: ServerId) -> Self {
        BackupService {
            id,
            replicas: Mutex::new(HashMap::new()),
        }
    }

    /// Appends `data` at `offset` of `(owner, segment)`.
    ///
    /// Appends must be in order; a mismatched offset is rejected so the
    /// image never has holes (recovery replays it sequentially).
    pub fn append(&self, owner: ServerId, segment: u64, offset: u32, data: Bytes) -> AppendOutcome {
        let mut replicas = self.replicas.lock();
        let replica = replicas.entry((owner, segment)).or_default();
        if replica.closed {
            return AppendOutcome::Closed;
        }
        if replica.len != offset as usize {
            return AppendOutcome::OffsetMismatch {
                have: replica.len as u64,
            };
        }
        replica.len += data.len();
        replica.chunks.push(data);
        AppendOutcome::Ok
    }

    /// Seals `(owner, segment)`; later appends fail.
    pub fn close(&self, owner: ServerId, segment: u64) {
        let mut replicas = self.replicas.lock();
        replicas.entry((owner, segment)).or_default().closed = true;
    }

    /// Returns images of every segment of `owner`'s log with id ≥
    /// `min_segment`, in segment-id order — the recovery read path.
    ///
    /// `min_segment > 0` is the lineage optimization: recovering a
    /// migration source only needs the target's log *tail* (§3.4).
    pub fn fetch(&self, owner: ServerId, min_segment: u64) -> Vec<SegmentImage> {
        let replicas = self.replicas.lock();
        let mut images: Vec<SegmentImage> = replicas
            .iter()
            .filter(|((o, seg), r)| *o == owner && *seg >= min_segment && r.len > 0)
            .map(|((_, seg), r)| {
                let mut flat = Vec::with_capacity(r.len);
                for chunk in &r.chunks {
                    flat.extend_from_slice(chunk);
                }
                SegmentImage {
                    id: *seg,
                    data: Bytes::from(flat),
                }
            })
            .collect();
        images.sort_by_key(|img| img.id);
        images
    }

    /// Bytes stored for `owner` (all segments), for load accounting.
    pub fn bytes_for(&self, owner: ServerId) -> u64 {
        let replicas = self.replicas.lock();
        replicas
            .iter()
            .filter(|((o, _), _)| *o == owner)
            .map(|(_, r)| r.len as u64)
            .sum()
    }

    /// Total bytes stored on this backup.
    pub fn total_bytes(&self) -> u64 {
        self.replicas.lock().values().map(|r| r.len as u64).sum()
    }

    /// Drops all replicas belonging to `owner` (after a successful
    /// recovery the dead master's log is garbage).
    pub fn free_owner(&self, owner: ServerId) {
        self.replicas.lock().retain(|(o, _), _| *o != owner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: ServerId = ServerId(1);

    #[test]
    fn append_in_order_builds_image() {
        let b = BackupService::new(ServerId(9));
        assert_eq!(
            b.append(M, 0, 0, Bytes::copy_from_slice(b"abc")),
            AppendOutcome::Ok
        );
        assert_eq!(
            b.append(M, 0, 3, Bytes::copy_from_slice(b"def")),
            AppendOutcome::Ok
        );
        let images = b.fetch(M, 0);
        assert_eq!(images.len(), 1);
        assert_eq!(&images[0].data[..], b"abcdef");
    }

    #[test]
    fn out_of_order_append_rejected() {
        let b = BackupService::new(ServerId(9));
        b.append(M, 0, 0, Bytes::copy_from_slice(b"abc"));
        assert_eq!(
            b.append(M, 0, 7, Bytes::copy_from_slice(b"xyz")),
            AppendOutcome::OffsetMismatch { have: 3 }
        );
        // Image unchanged.
        assert_eq!(&b.fetch(M, 0)[0].data[..], b"abc");
    }

    #[test]
    fn closed_replica_rejects_appends() {
        let b = BackupService::new(ServerId(9));
        b.append(M, 0, 0, Bytes::copy_from_slice(b"abc"));
        b.close(M, 0);
        assert_eq!(
            b.append(M, 0, 3, Bytes::copy_from_slice(b"d")),
            AppendOutcome::Closed
        );
    }

    #[test]
    fn fetch_filters_by_owner_and_min_segment() {
        let b = BackupService::new(ServerId(9));
        b.append(M, 0, 0, Bytes::copy_from_slice(b"s0"));
        b.append(M, 5, 0, Bytes::copy_from_slice(b"s5"));
        b.append(M, 9, 0, Bytes::copy_from_slice(b"s9"));
        b.append(ServerId(2), 1, 0, Bytes::copy_from_slice(b"other"));
        let all = b.fetch(M, 0);
        assert_eq!(all.iter().map(|i| i.id).collect::<Vec<_>>(), vec![0, 5, 9]);
        // Lineage tail: only segments >= 5.
        let tail = b.fetch(M, 5);
        assert_eq!(tail.iter().map(|i| i.id).collect::<Vec<_>>(), vec![5, 9]);
        assert_eq!(b.fetch(ServerId(2), 0).len(), 1);
    }

    #[test]
    fn accounting_and_free() {
        let b = BackupService::new(ServerId(9));
        b.append(M, 0, 0, Bytes::copy_from_slice(b"0123456789"));
        b.append(ServerId(2), 0, 0, Bytes::copy_from_slice(b"xy"));
        assert_eq!(b.bytes_for(M), 10);
        assert_eq!(b.total_bytes(), 12);
        b.free_owner(M);
        assert_eq!(b.bytes_for(M), 0);
        assert_eq!(b.total_bytes(), 2);
    }
}
