//! Cluster construction and experiment driving.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;
use rocksteady::MigrationConfig;
use rocksteady_audit::{AuditKind, AuditReport, AuditSink};
use rocksteady_common::{
    key_hash, CostModel, HashRange, KeyHash, MigrationId, Nanos, ServerId, TableId, SECOND,
};
use rocksteady_coordinator::Coordinator;
use rocksteady_logstore::LogConfig;
use rocksteady_master::{MasterConfig, TabletRole};
use rocksteady_metrics::Registry;
use rocksteady_profiler::{
    critical_path, tail_blame, CriticalPathReport, Profiler, TailBlameReport,
};
use rocksteady_proto::Envelope;
use rocksteady_server::stats::{registered_stats, StatsHandle};
use rocksteady_server::{MigrationRunStamps, ServerConfig, ServerNode};
use rocksteady_simnet::{Directory, NicConfig, SchedulerKind, Simulation};
use rocksteady_trace::journey::{self, Journey};
use rocksteady_trace::Tracer;
use rocksteady_workload::stats::registered_client_stats;
use rocksteady_workload::{
    ClientStatsHandle, ScanClient, ScanConfig, SpreadClient, SpreadConfig, YcsbClient, YcsbConfig,
};

use rocksteady_flightrec::FlightRecorderConfig;

use crate::control::{ControlActor, ControlEvent};
use crate::coordinator_actor::{CoordHandle, CoordinatorActor};
use crate::incident::{incidents_to_json, Incident};
use crate::rebalancer::{RebalancerActor, RebalancerConfig, RebalancerHandle, RebalancerReport};
use crate::sampler::{SamplerActor, SnapshotLogHandle, UtilSeries, UtilSeriesHandle};
use crate::slo::{SloHandle, SloMonitor, SloReport};
use crate::watchdog::{IncidentLogHandle, WatchdogActor, WatchdogWiring};

/// Topology + hardware parameters for one simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of servers.
    pub servers: usize,
    /// Worker cores per server (the paper's rig uses 12).
    pub workers: usize,
    /// Calibrated cost model.
    pub cost: CostModel,
    /// Network parameters.
    pub nic: NicConfig,
    /// Log segment size in bytes.
    pub segment_bytes: usize,
    /// Hash-table buckets per master.
    pub hash_buckets: usize,
    /// Backups per master (0 disables replication; capped at servers-1).
    pub replicas: usize,
    /// Migration protocol knobs.
    pub migration: MigrationConfig,
    /// Utilization sampling interval.
    pub sample_interval: Nanos,
    /// Client latency-series interval.
    pub series_interval: Nanos,
    /// Master seed for all deterministic randomness.
    pub seed: u64,
    /// Log-cleaner pass interval per server (`None` disables cleaning).
    pub cleaner_interval: Option<Nanos>,
    /// Per-server worker-count overrides (defaults to `workers`); used by
    /// experiments that size the source and target differently (Fig 15).
    pub workers_by_server: Vec<(ServerId, usize)>,
    /// Arm the deterministic trace layer: servers and clients record
    /// RPC/migration spans into one shared buffer, exportable as
    /// chrome://tracing JSON. Off by default — a disarmed tracer costs
    /// one branch per would-be event.
    pub tracing: bool,
    /// Arm periodic full-registry snapshot capture (one [`rocksteady_metrics::Snapshot`]
    /// per sampling interval, exportable as JSON/Prometheus series).
    /// Instruments always record and on-demand exports always work; this
    /// only gates the per-interval buffer, and the sampler's cadence is
    /// fixed either way, so arming cannot perturb the event schedule.
    pub metrics: bool,
    /// 99.9th-percentile read-latency SLA for the live SLO monitor
    /// (`None` still runs the monitor but never counts breaches).
    pub sla: Option<Nanos>,
    /// Arm the exact per-core activity ledger (`rocksteady-profiler`):
    /// every dispatch/worker core charges elapsed virtual time to an
    /// activity bucket. Off by default; charging is pure state mutation
    /// so arming never perturbs the event schedule.
    pub profiling: bool,
    /// Which event-queue implementation the kernel runs on. Both pop
    /// in identical `(time, sequence)` order, so this never changes a
    /// trace — the determinism suite swaps it and asserts exactly that.
    pub scheduler: SchedulerKind,
    /// Arm the autonomous rebalancer: a placement loop that scrapes
    /// per-server load each interval and issues admission-controlled
    /// `MigrateTablet` RPCs (see [`crate::rebalancer`]). `None` (the
    /// default) installs no actor at all, so a disarmed cluster's event
    /// schedule — and `events_processed()` — is byte-identical to a
    /// build predating the rebalancer.
    pub rebalancer: Option<RebalancerConfig>,
    /// Arm the cluster-wide protocol auditor (`rocksteady-audit`): the
    /// coordinator, every server, the rebalancer, and YCSB clients emit
    /// ownership/lineage/migration/version-floor events into one shared
    /// stream, checked online against the Rocksteady invariants and
    /// exportable as a causal "explain" report. Off by default; armed,
    /// every emission is pure state mutation (no timers, no clock
    /// perturbation), so `events_processed()` and all existing exports
    /// stay byte-identical.
    pub audit: bool,
    /// Arm the always-on flight recorder (`rocksteady-flightrec`): ring
    /// capacities for the trace/audit buffers, a watchdog detector
    /// catalog evaluated every sampling interval, and triggered
    /// incident-bundle export (see [`crate::watchdog`]). The watchdog
    /// actor itself is *always* installed on the sampling cadence —
    /// like the sampler and SLO monitor — so arming only swaps pure
    /// state mutation into its ticks: `events_processed()` is
    /// byte-identical armed or disarmed. With the default
    /// [`FlightRecorderConfig`] (no ring capacities), the trace and
    /// profiler exports are byte-identical too.
    pub flight_recorder: Option<FlightRecorderConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            servers: 4,
            workers: 4,
            cost: CostModel::default(),
            nic: NicConfig::default(),
            segment_bytes: 1 << 18,
            hash_buckets: 1 << 14,
            replicas: 3,
            migration: MigrationConfig::default(),
            sample_interval: SECOND / 10,
            series_interval: SECOND,
            seed: 42,
            cleaner_interval: None,
            workers_by_server: Vec::new(),
            tracing: false,
            metrics: false,
            sla: None,
            profiling: false,
            scheduler: SchedulerKind::default(),
            rebalancer: None,
            audit: false,
            flight_recorder: None,
        }
    }
}

enum ClientSpec {
    Ycsb(YcsbConfig),
    Spread(SpreadConfig),
    Scan(ScanConfig),
}

/// Declares a cluster: topology, clients, and the control script.
pub struct ClusterBuilder {
    cfg: ClusterConfig,
    dir: Directory,
    clients: Vec<ClientSpec>,
    script: Vec<ControlEvent>,
}

impl ClusterBuilder {
    /// Starts building; actor ids are assigned deterministically
    /// (coordinator, then servers, control, sampler, then clients), so
    /// the [`Directory`] is available immediately for client configs.
    pub fn new(cfg: ClusterConfig) -> Self {
        let mut dir = Directory {
            coordinator: 0,
            servers: HashMap::new(),
        };
        for i in 0..cfg.servers {
            dir.servers.insert(ServerId(i as u32), 1 + i);
        }
        ClusterBuilder {
            cfg,
            dir,
            clients: Vec::new(),
            script: Vec::new(),
        }
    }

    /// The cluster's wiring, for building client configs.
    pub fn directory(&self) -> Directory {
        self.dir.clone()
    }

    /// Adds a YCSB client.
    pub fn add_ycsb(&mut self, cfg: YcsbConfig) -> &mut Self {
        self.clients.push(ClientSpec::Ycsb(cfg));
        self
    }

    /// Adds a multiget-spread client (Figure 3).
    pub fn add_spread(&mut self, cfg: SpreadConfig) -> &mut Self {
        self.clients.push(ClientSpec::Spread(cfg));
        self
    }

    /// Adds an index-scan client (Figure 4).
    pub fn add_scan(&mut self, cfg: ScanConfig) -> &mut Self {
        self.clients.push(ClientSpec::Scan(cfg));
        self
    }

    /// Schedules a control command.
    pub fn at(&mut self, time: Nanos, cmd: crate::control::ControlCmd) -> &mut Self {
        self.script.push(ControlEvent { at: time, cmd });
        self
    }

    /// Builds the simulation.
    pub fn build(self) -> Cluster {
        let cfg = self.cfg;
        let mut sim = Simulation::with_scheduler(cfg.nic, cfg.seed, cfg.scheduler);
        let coord: CoordHandle = Rc::new(RefCell::new(Coordinator::new()));
        let util: UtilSeriesHandle = Rc::new(RefCell::new(UtilSeries::default()));
        let metrics = Registry::new();
        let snapshots: SnapshotLogHandle = Rc::new(RefCell::new(Vec::new()));
        let slo: SloHandle = Rc::new(RefCell::new(SloReport::default()));
        // Ring capacities from the flight recorder (when armed) bound
        // the trace/audit buffers; without them the armed recorder
        // reads whatever `tracing`/`audit` produced, so its presence
        // never changes an existing export.
        let fr_trace_cap = cfg.flight_recorder.as_ref().and_then(|f| f.trace_capacity);
        let fr_audit_cap = cfg.flight_recorder.as_ref().and_then(|f| f.audit_capacity);
        let trace = match fr_trace_cap {
            Some(capacity) => Tracer::with_capacity(capacity),
            None if cfg.tracing => Tracer::armed(),
            None => Tracer::off(),
        };
        let profiler = if cfg.profiling {
            Profiler::armed()
        } else {
            Profiler::off()
        };
        let audit = match fr_audit_cap {
            Some(capacity) => {
                let a = AuditSink::with_capacity(capacity);
                a.register_metrics(&metrics);
                a
            }
            None if cfg.audit => {
                let a = AuditSink::armed();
                a.register_metrics(&metrics);
                a
            }
            None => AuditSink::off(),
        };

        // Actor 0: coordinator.
        let coordinator_actor = sim.add_actor(Box::new(CoordinatorActor::new(
            Rc::clone(&coord),
            self.dir.clone(),
            audit.clone(),
        )));
        debug_assert_eq!(coordinator_actor, 0);

        // Actors 1..=S: servers, each replicating to the next `replicas`
        // servers in the ring (master + backup co-residency, Figure 1).
        let replicas = cfg.replicas.min(cfg.servers.saturating_sub(1));
        let mut server_stats = HashMap::new();
        let mut backups_of = HashMap::new();
        for i in 0..cfg.servers {
            let id = ServerId(i as u32);
            coord.borrow_mut().register_server(id);
            let backup_ids: Vec<ServerId> = (1..=replicas)
                .map(|k| ServerId(((i + k) % cfg.servers) as u32))
                .collect();
            let backup_actors = backup_ids.iter().map(|b| self.dir.actor_of(*b)).collect();
            backups_of.insert(id, backup_ids);
            let stats = registered_stats(&metrics, id);
            server_stats.insert(id, Rc::clone(&stats));
            let workers = cfg
                .workers_by_server
                .iter()
                .find(|(s, _)| *s == id)
                .map(|(_, w)| *w)
                .unwrap_or(cfg.workers);
            let server_cfg = ServerConfig {
                id,
                workers,
                cost: cfg.cost.clone(),
                master: MasterConfig {
                    id,
                    log: LogConfig {
                        segment_bytes: cfg.segment_bytes,
                        max_segments: None,
                    },
                    hash_buckets: cfg.hash_buckets,
                    hash_stripes: 256,
                },
                backup_actors,
                migration: cfg.migration.clone(),
                cleaner_interval: cfg.cleaner_interval,
            };
            let actor = sim.add_actor(Box::new(ServerNode::new(
                server_cfg,
                self.dir.clone(),
                stats,
                trace.clone(),
                profiler.clone(),
                audit.clone(),
            )));
            debug_assert_eq!(actor, 1 + i);
        }

        // Control + sampler + SLO monitor. The latter two are always
        // installed on fixed cadences: config flags change what they
        // record, never the event schedule.
        sim.add_actor(Box::new(ControlActor::new(self.dir.clone(), self.script)));
        sim.add_actor(Box::new(SamplerActor::new(
            cfg.sample_interval,
            metrics.clone(),
            cfg.metrics,
            Rc::clone(&util),
            Rc::clone(&snapshots),
        )));
        sim.add_actor(Box::new(SloMonitor::new(
            cfg.sample_interval,
            metrics.clone(),
            cfg.sla,
            Rc::clone(&slo),
        )));

        // Flight-recorder watchdog: always installed on the sampling
        // cadence so arming cannot shift the event schedule; the armed
        // core only adds pure state mutation per tick.
        let incidents: IncidentLogHandle = Rc::new(RefCell::new(Vec::new()));
        let watchdog = match cfg.flight_recorder.clone() {
            Some(fr) => WatchdogActor::armed(
                cfg.sample_interval,
                fr,
                WatchdogWiring {
                    slo: Rc::clone(&slo),
                    server_stats: server_stats
                        .iter()
                        .map(|(id, h)| (*id, Rc::clone(h)))
                        .collect(),
                    coord: Rc::clone(&coord),
                    registry: metrics.clone(),
                    trace: trace.clone(),
                    profiler: profiler.clone(),
                    audit: audit.clone(),
                    incidents: Rc::clone(&incidents),
                },
            ),
            None => WatchdogActor::disarmed(cfg.sample_interval),
        };
        sim.add_actor(Box::new(watchdog));

        // Autonomous rebalancer, only when armed: installing an actor —
        // even an idle one — would shift actor ids and the event
        // schedule, and the disarmed harness must stay byte-identical
        // to the no-rebalancer baseline.
        let rebalancer: RebalancerHandle = Rc::new(RefCell::new(RebalancerReport::default()));
        if let Some(rb) = cfg.rebalancer.clone() {
            let stats_list = server_stats
                .iter()
                .map(|(id, h)| (*id, Rc::clone(h)))
                .collect();
            sim.add_actor(Box::new(RebalancerActor::new(
                rb,
                Rc::clone(&coord),
                self.dir.clone(),
                stats_list,
                Rc::clone(&slo),
                Rc::clone(&rebalancer),
                audit.clone(),
            )));
        }

        // Clients. Each client's seed is folded together with the
        // cluster seed and its index, so changing the cluster seed
        // perturbs every random stream while same-seed runs stay
        // bit-identical.
        let mut client_stats_handles = Vec::new();
        for (idx, spec) in self.clients.into_iter().enumerate() {
            let stats = registered_client_stats(&metrics, idx, cfg.series_interval);
            client_stats_handles.push(Rc::clone(&stats));
            let derived = cfg
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(idx as u32 + 1)
                ^ (idx as u64 + 1);
            match spec {
                ClientSpec::Ycsb(mut c) => {
                    c.seed ^= derived;
                    sim.add_actor(Box::new(
                        YcsbClient::new(c, stats)
                            .with_trace(trace.clone())
                            .with_audit(audit.clone()),
                    ));
                }
                ClientSpec::Spread(mut c) => {
                    c.seed ^= derived;
                    sim.add_actor(Box::new(SpreadClient::new(c, stats)));
                }
                ClientSpec::Scan(mut c) => {
                    c.seed ^= derived;
                    sim.add_actor(Box::new(ScanClient::new(c, stats)));
                }
            }
        }

        Cluster {
            sim,
            dir: self.dir,
            coord,
            server_stats,
            client_stats: client_stats_handles,
            util,
            metrics,
            snapshots,
            slo,
            rebalancer,
            backups_of,
            trace,
            profiler,
            audit,
            incidents,
            cfg,
        }
    }
}

/// A built cluster, ready to preload and run.
pub struct Cluster {
    /// The simulation (exposed for advanced scripting, e.g. killing
    /// servers from the harness between run segments).
    pub sim: Simulation<Envelope>,
    /// Wiring.
    pub dir: Directory,
    /// Shared coordinator state (tablet map, lineage deps).
    pub coord: CoordHandle,
    /// Per-server monotonic counters.
    pub server_stats: HashMap<ServerId, StatsHandle>,
    /// Per-client series, in `add_*` order.
    pub client_stats: Vec<ClientStatsHandle>,
    /// Sampled utilization/migration series.
    pub util: UtilSeriesHandle,
    /// The unified metrics registry (servers, clients, SLO monitor).
    pub metrics: Registry,
    /// Per-interval full-registry snapshots (empty unless built with
    /// `metrics: true`).
    pub snapshots: SnapshotLogHandle,
    /// Latest SLO window, updated once per sampling interval.
    pub slo: SloHandle,
    /// What the autonomous rebalancer has done (all-zero unless the
    /// cluster was built with `cfg.rebalancer` set).
    pub rebalancer: RebalancerHandle,
    /// Backup ring: which servers hold each master's replicas.
    pub backups_of: HashMap<ServerId, Vec<ServerId>>,
    /// The shared trace buffer (disarmed unless `cfg.tracing`).
    pub trace: Tracer,
    /// The shared per-core activity ledger (disarmed unless
    /// `cfg.profiling`).
    pub profiler: Profiler,
    /// The shared protocol-audit stream (disarmed unless `cfg.audit`).
    pub audit: AuditSink,
    /// Incident bundles exported by the flight-recorder watchdog
    /// (always empty unless `cfg.flight_recorder` is armed).
    pub incidents: IncidentLogHandle,
    /// The configuration the cluster was built with.
    pub cfg: ClusterConfig,
}

impl Cluster {
    /// Typed access to a server node.
    pub fn node(&mut self, id: ServerId) -> &mut ServerNode {
        let actor = self.dir.actor_of(id);
        self.sim.actor_as::<ServerNode>(actor)
    }

    /// Creates a table from `(range, owner)` tablets: installs the map at
    /// the coordinator and registers each tablet on its master.
    pub fn create_table(&mut self, table: TableId, tablets: &[(HashRange, ServerId)]) {
        for (range, owner) in tablets {
            self.coord.borrow_mut().create_tablet(table, *range, *owner);
            self.node(*owner)
                .master
                .add_tablet(table, *range, TabletRole::Owner);
            if self.audit.is_on() {
                self.audit.emit(
                    self.now(),
                    AuditKind::TabletCreated {
                        table,
                        range: *range,
                        owner: *owner,
                    },
                );
            }
        }
    }

    /// Loads `num_keys` records of `value_len` bytes into `table`,
    /// routing each key to its owner per the coordinator map. Returns
    /// per-server key-rank lists (useful for the spread workload).
    pub fn load_table(
        &mut self,
        table: TableId,
        num_keys: u64,
        key_len: usize,
        value_len: usize,
    ) -> HashMap<ServerId, Vec<u64>> {
        let map = self.coord.borrow().tablet_map();
        let value = vec![0xcdu8; value_len];
        let mut by_owner: HashMap<ServerId, Vec<u64>> = HashMap::new();
        // Single pass: each key is formatted (into a reused buffer) and
        // hashed exactly once, then loaded directly on its owner. Every
        // master still receives its records in rank order, so versions
        // and log contents are identical to the two-pass loader this
        // replaces — only the host-side cost per record changed.
        let mut key = Vec::with_capacity(key_len);
        for rank in 0..num_keys {
            rocksteady_workload::core::write_primary_key(rank, key_len, &mut key);
            let hash = key_hash(&key);
            let owner = map
                .iter()
                .find(|t| t.covers(table, hash))
                .map(|t| t.owner)
                .expect("load_table: key not covered by any tablet");
            by_owner.entry(owner).or_default().push(rank);
            self.node(owner)
                .master
                .load_object_hashed(table, hash, &key, &value);
        }
        by_owner
    }

    /// Copies every server's current log image onto its backups and
    /// marks the bytes durable, so preloaded data behaves as if it had
    /// been written through the replicated write path.
    pub fn seed_backups(&mut self) {
        let owners: Vec<ServerId> = self.backups_of.keys().copied().collect();
        for owner in owners {
            let images: Vec<(u64, Bytes)> = {
                let node = self.node(owner);
                let images = node
                    .master
                    .log
                    .segments_snapshot()
                    .iter()
                    .filter(|s| s.committed() > 0)
                    .map(|s| (s.id(), s.committed_as_bytes()))
                    .collect();
                node.mark_log_durable();
                images
            };
            let backups = self.backups_of[&owner].clone();
            for b in backups {
                let node = self.node(b);
                for (id, data) in &images {
                    let outcome = node.backup.append(owner, *id, 0, data.clone());
                    debug_assert!(matches!(outcome, rocksteady_backup::AppendOutcome::Ok));
                }
            }
        }
    }

    /// Splits the tablet containing `at` on both the coordinator and the
    /// owning master (the metadata-only split that precedes migration,
    /// §3).
    pub fn split_tablet(&mut self, table: TableId, at: KeyHash) {
        let owner = self
            .coord
            .borrow()
            .tablet_for(table, at)
            .map(|t| t.owner)
            .expect("split: no tablet covers the split point");
        assert!(self.coord.borrow_mut().split_tablet(table, at));
        assert!(self.node(owner).master.split_tablet(table, at).is_some());
        if self.audit.is_on() {
            self.audit
                .emit(self.now(), AuditKind::TabletSplit { table, at });
        }
    }

    /// Runs until virtual time `t`.
    pub fn run_until(&mut self, t: Nanos) {
        self.sim.run_until(t);
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.sim.now()
    }

    /// When migration `id` on `target` completed, if it has.
    ///
    /// Keyed by migration id, not by "the" migration: a target can host
    /// several overlapping runs and each keeps its own stamps.
    pub fn migration_finished(&self, target: ServerId, id: MigrationId) -> Option<Nanos> {
        self.server_stats[&target]
            .migration_run(id)
            .and_then(|r| r.finished_at)
    }

    /// When migration `id` on `target` was abandoned (source died, a
    /// recovery plan superseded the run, or the coordinator rejected the
    /// start), if it was.
    pub fn migration_abandoned(&self, target: ServerId, id: MigrationId) -> Option<Nanos> {
        self.server_stats[&target]
            .migration_run(id)
            .and_then(|r| r.abandoned_at)
    }

    /// Runs until migration `id` targeting `target` finishes or
    /// `deadline` passes; returns the finish time if it completed.
    /// Returns `None` as soon as that run is abandoned rather than
    /// spinning to the deadline. Other in-flight migrations neither
    /// satisfy nor disturb the wait.
    pub fn run_until_migrated(
        &mut self,
        target: ServerId,
        id: MigrationId,
        deadline: Nanos,
    ) -> Option<Nanos> {
        let step = self.cfg.sample_interval.max(1_000_000);
        while self.now() < deadline {
            if let Some(t) = self.migration_finished(target, id) {
                return Some(t);
            }
            if self.migration_abandoned(target, id).is_some() {
                return None;
            }
            let next = (self.now() + step).min(deadline);
            self.run_until(next);
        }
        self.migration_finished(target, id)
    }

    /// Every migration run recorded anywhere in the cluster, as
    /// `(target, id, stamps)` sorted by id then target — the raw
    /// material for concurrency analysis.
    pub fn migration_runs(&self) -> Vec<(ServerId, MigrationId, MigrationRunStamps)> {
        let mut out: Vec<_> = self
            .server_stats
            .iter()
            .flat_map(|(server, stats)| {
                stats
                    .migration_runs_snapshot()
                    .into_iter()
                    .map(|(id, st)| (*server, id, st))
            })
            .collect();
        out.sort_by_key(|(server, id, _)| (*id, *server));
        out
    }

    /// The largest number of migrations that were ever in flight at the
    /// same instant, computed from the per-run stamps. Runs that never
    /// ended count as open until the current virtual time.
    pub fn peak_concurrent_migrations(&self) -> usize {
        let now = self.now();
        let mut edges: Vec<(Nanos, i64)> = Vec::new();
        for (_, _, st) in self.migration_runs() {
            let end = st.finished_at.or(st.abandoned_at).unwrap_or(now);
            edges.push((st.started_at, 1));
            edges.push((end, -1));
        }
        // Close-before-open at equal times: back-to-back runs don't count
        // as concurrent.
        edges.sort_by_key(|(t, delta)| (*t, *delta));
        let mut open = 0i64;
        let mut peak = 0i64;
        for (_, delta) in edges {
            open += delta;
            peak = peak.max(open);
        }
        peak as usize
    }

    /// Toggles trace recording (no-op when the cluster was built with
    /// `tracing: false`). Lets benches record only a window of interest.
    pub fn set_tracing(&self, on: bool) {
        self.trace.set_recording(on);
    }

    /// Exports everything recorded so far as chrome://tracing JSON.
    /// Byte-identical across same-seed runs.
    pub fn export_trace_json(&self) -> String {
        self.trace.export_chrome_json()
    }

    /// Serializes the full registry (servers, clients, SLO monitor) as
    /// deterministic JSON at the current virtual time. Byte-identical
    /// across same-seed runs.
    pub fn export_metrics_json(&self) -> String {
        self.metrics.snapshot(self.now()).to_json()
    }

    /// Serializes the full registry in Prometheus text exposition
    /// format at the current virtual time.
    pub fn export_metrics_prometheus(&self) -> String {
        self.metrics.snapshot(self.now()).to_prometheus()
    }

    /// The periodic snapshot series captured under `metrics: true`, as
    /// one JSON array (one element per sampling interval).
    pub fn export_metrics_series_json(&self) -> String {
        let snaps = self.snapshots.borrow();
        let mut out = String::from("[");
        for (i, s) in snaps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push(']');
        out
    }

    /// The latest SLO window (updated once per sampling interval).
    pub fn slo_report(&self) -> SloReport {
        *self.slo.borrow()
    }

    /// Finalizes the per-core activity ledger at the current virtual
    /// time (fills trailing idle so busy + idle tiles wall-clock per
    /// core) and publishes per-core `profiler_activity_ns` gauges into
    /// the metrics registry. Call once the run is over, before
    /// validating or exporting; no-op when profiling is off.
    pub fn finalize_profile(&self) {
        self.profiler.finalize(self.now());
        self.profiler.publish(&self.metrics);
    }

    /// The per-core activity ledger as Brendan-Gregg folded stacks
    /// (`server;core;activity N_ns`), ready for `flamegraph.pl`.
    /// Byte-identical across same-seed runs; empty when profiling is
    /// off. Call [`Cluster::finalize_profile`] first.
    pub fn export_folded(&self) -> String {
        self.profiler.export_folded()
    }

    /// Walks the trace buffer and ranks the components that bounded the
    /// most recent completed migration (replay service, pull RTT split
    /// into NIC serialization vs. the rest, priority pulls, control
    /// phases, dispatch queueing). `None` when tracing is off or no
    /// migration completed. Byte-identical across same-seed runs.
    pub fn critical_path_report(&self) -> Option<CriticalPathReport> {
        self.trace.with_events(critical_path)
    }

    /// [`Cluster::critical_path_report`] as deterministic JSON.
    pub fn export_critical_path_json(&self) -> Option<String> {
        self.critical_path_report().map(|r| r.to_json())
    }

    /// Post-hoc companion to the live SLO monitor: aggregates the
    /// per-RPC net/queue/service/hold trace instants into a blame
    /// histogram over requests that exceeded `cfg.sla`. `None` without
    /// an SLA; empty (but `Some`) when tracing is off.
    pub fn tail_blame_report(&self) -> Option<TailBlameReport> {
        let sla = self.cfg.sla?;
        Some(self.trace.with_events(|events| tail_blame(events, sla)))
    }

    /// Reconstructs every cross-node request journey recorded so far:
    /// one [`Journey`] per trace id, its client attempts matched to the
    /// per-server latency-decomposition instants they caused (including
    /// the off-path PriorityPull a waiting read spawned). Empty when
    /// tracing is off. Sorted by trace id; byte-stable per seed.
    pub fn journeys(&self) -> Vec<Journey> {
        let dropped = self.trace.dropped();
        self.trace
            .with_events(|events| journey::reconstruct(events, dropped))
    }

    /// The journey of one specific operation, by trace id. `None` when
    /// tracing is off or no attempt of that operation was recorded.
    pub fn request_journey(&self, trace: rocksteady_common::TraceId) -> Option<Journey> {
        let dropped = self.trace.dropped();
        self.trace
            .with_events(|events| journey::find(events, dropped, trace.0))
    }

    /// Every reconstructed journey as the deterministic
    /// `rocksteady-journeys-v1` JSON document. Byte-identical across
    /// same-seed runs and across the scheduler swap.
    pub fn export_journeys_json(&self) -> String {
        journey::export_json(&self.journeys(), self.trace.dropped())
    }

    /// The `k` slowest journeys that breached `cfg.sla` — the tail's
    /// full causal chains, not just its segment histogram. Slowest
    /// first; ties broken by trace id (a deterministic reservoir, no
    /// RNG). `None` without an SLA; empty when tracing is off.
    pub fn tail_blame_chains(&self, k: usize) -> Option<Vec<String>> {
        let sla = self.cfg.sla?;
        let journeys = self.journeys();
        let slow: Vec<Journey> = journeys.into_iter().filter(|j| j.e2e > sla).collect();
        Some(
            journey::slowest(&slow, k)
                .iter()
                .map(|j| format!("e2e={}ns attempts={} {}", j.e2e, j.attempts, j.chain()))
                .collect(),
        )
    }

    /// The auditor's verdict over everything emitted so far: event and
    /// per-invariant check/violation counts, migration outcomes, and
    /// every violation with its causal chain. Empty when the cluster
    /// was built with `audit: false`.
    pub fn audit_report(&self) -> AuditReport {
        self.audit.report()
    }

    /// The full audit stream — summary, per-invariant verdicts,
    /// per-migration accounting, ownership timelines, and violations
    /// with causal chains — as deterministic JSON (schema
    /// `rocksteady-audit-v1`). Byte-identical across same-seed runs.
    pub fn export_audit_json(&self) -> String {
        self.audit.export_json(self.now())
    }

    /// The ownership-transfer graph (which tablets moved between which
    /// servers, and how) as Graphviz DOT. Byte-identical across
    /// same-seed runs.
    pub fn export_audit_dot(&self) -> String {
        self.audit.export_dot()
    }

    /// Ranks the audited causes most likely responsible for an SLO
    /// breach observed in `[from, to]` (virtual nanoseconds): crashes
    /// and migrations whose replay/pull pressure overlapped the window,
    /// each with its causal chain. `None` when auditing is off or
    /// nothing overlapped the window.
    pub fn explain_slo_breach(&self, from: Nanos, to: Nanos) -> Option<String> {
        self.audit.explain_slo_breach(from, to)
    }

    /// The causal story of one migration — origin (scripted vs
    /// rebalancer), decision → admission → pulls/replay → outcome —
    /// as deterministic JSON. `None` when auditing is off or the id
    /// was never seen.
    pub fn explain_migration(&self, id: MigrationId) -> Option<String> {
        self.audit.explain_migration(id)
    }

    /// Number of incident bundles the flight-recorder watchdog has
    /// exported (always 0 unless `cfg.flight_recorder` is armed).
    pub fn incident_count(&self) -> usize {
        self.incidents.borrow().len()
    }

    /// A snapshot of the exported incidents (time, trigger, bundle).
    pub fn incident_log(&self) -> Vec<Incident> {
        self.incidents.borrow().clone()
    }

    /// Every exported incident bundle as one JSON array (schema
    /// `rocksteady-incident-v1` per element; `[]` when nothing fired).
    /// Byte-identical across same-seed runs.
    pub fn export_incidents_json(&self) -> String {
        incidents_to_json(&self.incidents.borrow())
    }

    /// Reads a key directly from whichever master currently owns it
    /// (bypassing the simulated network) — verification helper for
    /// integration tests.
    pub fn read_direct(&mut self, table: TableId, key: &[u8]) -> Option<(Vec<u8>, u64)> {
        let hash = key_hash(key);
        let owner = self.coord.borrow().tablet_for(table, hash)?.owner;
        let node = self.node(owner);
        let mut work = rocksteady_master::Work::default();
        node.master
            .read(table, hash, Some(key), &mut work)
            .ok()
            .map(|(v, version)| (v.to_vec(), version))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::ControlCmd;
    use rocksteady_common::zipf::KeyDist;
    use rocksteady_common::MILLISECOND;
    use rocksteady_workload::core::primary_key;

    const T: TableId = TableId(1);

    fn small_cfg() -> ClusterConfig {
        ClusterConfig {
            servers: 3,
            workers: 4,
            replicas: 2,
            sample_interval: MILLISECOND,
            series_interval: 10 * MILLISECOND,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn reads_and_writes_flow_through_the_cluster() {
        let cfg = small_cfg();
        let mut b = ClusterBuilder::new(cfg);
        let dir = b.directory();
        let mut ycsb = YcsbConfig::ycsb_b(dir, T, 1_000, 20_000.0);
        ycsb.dist = KeyDist::Uniform;
        b.add_ycsb(ycsb);
        let mut cluster = b.build();
        cluster.create_table(T, &[(HashRange::full(), ServerId(0))]);
        cluster.load_table(T, 1_000, 30, 100);
        cluster.seed_backups();
        cluster.run_until(50 * MILLISECOND);

        let stats = cluster.client_stats[0].borrow();
        let reads = stats.read_latency.merged();
        let writes = stats.write_latency.merged();
        assert!(
            reads.count() > 300,
            "only {} reads completed",
            reads.count()
        );
        assert!(
            writes.count() > 5,
            "only {} writes completed",
            writes.count()
        );
        assert_eq!(stats.not_found.get(), 0);
        // Calibration anchors (§2): ~6 us reads, ~15 us durable writes.
        let p50r = reads.percentile(0.5);
        let p50w = writes.percentile(0.5);
        assert!((4_000..10_000).contains(&p50r), "median read {p50r} ns");
        assert!((10_000..25_000).contains(&p50w), "median write {p50w} ns");
    }

    #[test]
    fn rocksteady_migration_moves_half_the_table() {
        let cfg = small_cfg();
        let mid = u64::MAX / 2 + 1;
        let upper = HashRange {
            start: mid,
            end: u64::MAX,
        };
        let mut b = ClusterBuilder::new(cfg);
        b.at(
            5 * MILLISECOND,
            ControlCmd::Migrate {
                id: MigrationId(1),
                table: T,
                range: upper,
                source: ServerId(0),
                target: ServerId(1),
            },
        );
        let mut cluster = b.build();
        cluster.create_table(T, &[(HashRange::full(), ServerId(0))]);
        cluster.load_table(T, 3_000, 30, 100);
        cluster.seed_backups();
        cluster.split_tablet(T, mid);

        let done =
            cluster.run_until_migrated(ServerId(1), MigrationId(1), 5 * rocksteady_common::SECOND);
        assert!(done.is_some(), "migration never finished");

        // Ownership moved and the lineage dependency was dropped.
        assert_eq!(
            cluster
                .coord
                .borrow()
                .tablet_for(T, u64::MAX)
                .unwrap()
                .owner,
            ServerId(1)
        );
        assert!(cluster.coord.borrow().lineage_deps().is_empty());

        // Every record is still readable through its current owner with
        // intact bytes.
        let mut upper_count = 0;
        for rank in 0..3_000u64 {
            let key = primary_key(rank, 30);
            let (value, _) = cluster
                .read_direct(T, &key)
                .unwrap_or_else(|| panic!("rank {rank} lost"));
            assert_eq!(value, vec![0xcdu8; 100]);
            if upper.contains(key_hash(&key)) {
                upper_count += 1;
            }
        }
        assert!(upper_count > 1_000, "split was not roughly half");
        // The data really moved through pulls.
        let tgt = cluster.server_stats[&ServerId(1)].view();
        assert!(
            tgt.records_replayed >= upper_count,
            "replayed {} < upper {}",
            tgt.records_replayed,
            upper_count
        );
        assert!(tgt.bytes_migrated_in > 100_000);
    }

    #[test]
    fn baseline_migration_moves_half_the_table() {
        let cfg = small_cfg();
        let mid = u64::MAX / 2 + 1;
        let upper = HashRange {
            start: mid,
            end: u64::MAX,
        };
        let mut b = ClusterBuilder::new(cfg);
        b.at(
            5 * MILLISECOND,
            ControlCmd::MigrateBaseline {
                table: T,
                range: upper,
                source: ServerId(0),
                target: ServerId(1),
                opts: Default::default(),
            },
        );
        let mut cluster = b.build();
        cluster.create_table(T, &[(HashRange::full(), ServerId(0))]);
        // The baseline target must own the range when records arrive:
        // PushRecords replays into the target master directly; ownership
        // in the *map* moves only at the end (§2.3). Pre-register the
        // receiving tablet as RAMCloud's migration does.
        cluster.load_table(T, 2_000, 30, 100);
        cluster.seed_backups();
        cluster.split_tablet(T, mid);
        cluster
            .node(ServerId(1))
            .master
            .add_tablet(T, upper, TabletRole::Owner);

        for step in 1..=400u64 {
            cluster.run_until(step * 10 * MILLISECOND);
            if cluster
                .coord
                .borrow()
                .tablet_for(T, u64::MAX)
                .map(|t| t.owner)
                == Some(ServerId(1))
            {
                break;
            }
        }
        assert_eq!(
            cluster
                .coord
                .borrow()
                .tablet_for(T, u64::MAX)
                .unwrap()
                .owner,
            ServerId(1),
            "baseline never transferred ownership"
        );
        for rank in 0..2_000u64 {
            let key = primary_key(rank, 30);
            assert!(cluster.read_direct(T, &key).is_some(), "rank {rank} lost");
        }
    }

    #[test]
    fn deterministic_replay_same_seed() {
        let run = |seed| {
            let mut cfg = small_cfg();
            cfg.seed = seed;
            let mut b = ClusterBuilder::new(cfg);
            let dir = b.directory();
            b.add_ycsb(YcsbConfig::ycsb_b(dir, T, 500, 50_000.0));
            let mut cluster = b.build();
            cluster.create_table(T, &[(HashRange::full(), ServerId(0))]);
            cluster.load_table(T, 500, 30, 100);
            cluster.seed_backups();
            cluster.run_until(20 * MILLISECOND);
            let reads = cluster.client_stats[0]
                .borrow()
                .read_latency
                .merged()
                .count();
            (cluster.sim.events_processed(), reads)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "seed should perturb the trace");
    }
}
