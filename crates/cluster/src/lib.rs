//! The cluster harness: wires coordinator, servers, and clients into one
//! deterministic simulation and drives experiments.
//!
//! Reproduces the paper's experimental rig (§4.1): one coordinator, `N`
//! servers each running a master and a backup behind one dispatch core
//! and `W` workers, clients offering load, a control actor that fires
//! scripted events (start a migration at t=10s, kill the target at
//! t=15s), and a sampler that snapshots per-server utilization and
//! migration progress every interval — the raw series behind Figures 5
//! and 9–14.
//!
//! Everything is driven through [`ClusterBuilder`] (declare topology,
//! clients, script) and [`Cluster`] (preload data, run, harvest series).

pub mod control;
pub mod coordinator_actor;
pub mod harness;
pub mod incident;
pub mod rebalancer;
pub mod sampler;
pub mod slo;
pub mod watchdog;

pub use control::{ControlCmd, ControlEvent};
pub use coordinator_actor::CoordinatorActor;
pub use harness::{Cluster, ClusterBuilder, ClusterConfig};
pub use incident::{incidents_to_json, summarize, Incident, INCIDENT_SCHEMA};
pub use rebalancer::{
    IssuedMove, RebalancerActor, RebalancerConfig, RebalancerHandle, RebalancerReport,
    REBALANCER_MIG_BASE,
};
pub use rocksteady_flightrec::{
    DetectorConfig, DetectorReading, DispatchOvercommitConfig, FlightRecorderConfig,
    LineageAgeConfig, MigrationStallConfig, ReplayBacklogConfig, SloBurnConfig,
};
pub use rocksteady_profiler::{
    core_label, critical_path, tail_blame, Activity, CoreLedger, CoreProfile,
    CriticalPathComponent, CriticalPathReport, ProfileSummary, Profiler, TailBlameReport,
};
pub use rocksteady_rebalancer::{
    AdmissionCaps, ClusterView, GreedyLoadDelta, HeadroomAware, MoveInFlight, MoveProposal,
    PlacementPolicy, ServerLoad, TabletInfo,
};
pub use rocksteady_simnet::SchedulerKind;
pub use rocksteady_trace::journey::{Hop, Journey, JOURNEYS_SCHEMA};
pub use sampler::{SnapshotLogHandle, UtilPoint, UtilSeries, UtilSeriesHandle};
pub use slo::{SloHandle, SloMonitor, SloReport};
pub use watchdog::{IncidentLogHandle, WatchdogActor, WatchdogWiring, TRACE_DROPPED_FAMILY};
