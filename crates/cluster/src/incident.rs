//! Incident bundles: the flight recorder's forensic export.
//!
//! When a watchdog detector fires, the recorder freezes a correlated
//! slice of every observability layer into one deterministic JSON
//! document (schema `rocksteady-incident-v1`): the trigger and every
//! firing detector's reading, the last-N-ms trace ring, a metrics
//! delta-scrape, the per-core profiler ledger, the audit tail, and the
//! relevant causal explain (`explain_migration` for progress anomalies,
//! `explain_slo_breach` for latency ones). Integers only — same-seed
//! runs export byte-identical bundles.

use rocksteady_audit::AuditSink;
use rocksteady_common::Nanos;
use rocksteady_flightrec::{push_escaped, DetectorReading, FlightRecorderConfig};
use rocksteady_metrics::{deltas_to_json, CounterDelta};
use rocksteady_profiler::{core_label, Activity, Profiler};
use rocksteady_trace::{journey, Tracer};

/// Schema tag stamped into every bundle.
pub const INCIDENT_SCHEMA: &str = "rocksteady-incident-v1";

/// One exported incident: when it fired, which detector triggered it,
/// and the full forensic bundle.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Virtual time of the triggering watchdog tick.
    pub at: Nanos,
    /// Name of the triggering detector (first firing detector out of
    /// cooldown, in catalog order).
    pub trigger: &'static str,
    /// The `rocksteady-incident-v1` JSON document.
    pub bundle: String,
}

/// Everything the bundle builder freezes, borrowed from the watchdog's
/// live handles at trigger time.
pub struct BundleInputs<'a> {
    /// Trigger tick time.
    pub at: Nanos,
    /// Name of the triggering detector.
    pub trigger: &'static str,
    /// Every firing detector's reading this tick, catalog order.
    pub readings: &'a [DetectorReading],
    /// Fast/slow SLO burn rates at trigger time, permille.
    pub burn: (u64, u64),
    /// The shared trace buffer.
    pub trace: &'a Tracer,
    /// The most recent metrics delta-scrape pass.
    pub metrics: &'a [CounterDelta],
    /// The shared per-core activity ledger.
    pub profiler: &'a Profiler,
    /// The shared audit stream.
    pub audit: &'a AuditSink,
    /// The relevant explain output (`explain_migration` /
    /// `explain_slo_breach`), already-serialized JSON, if available.
    pub explain: Option<String>,
}

/// Renders one incident bundle. Deterministic: virtual clock only,
/// integer values, fixed key order.
pub fn build_bundle(cfg: &FlightRecorderConfig, inp: &BundleInputs<'_>) -> String {
    let mut out = String::with_capacity(8192);
    out.push_str("{\"schema\":\"");
    out.push_str(INCIDENT_SCHEMA);
    out.push_str("\",\"at\":");
    out.push_str(&inp.at.to_string());
    out.push_str(",\"trigger\":\"");
    out.push_str(inp.trigger);
    out.push_str("\",\"readings\":[");
    for (i, r) in inp.readings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.to_json());
    }
    out.push_str("],\"burn\":{\"fast_permille\":");
    out.push_str(&inp.burn.0.to_string());
    out.push_str(",\"slow_permille\":");
    out.push_str(&inp.burn.1.to_string());
    out.push('}');

    // Trace slice: the last `bundle_trace_window_ns` of completed
    // events, plus ring drop accounting.
    let since = inp.at.saturating_sub(cfg.bundle_trace_window_ns);
    out.push_str(",\"trace\":{\"window_ns\":");
    out.push_str(&cfg.bundle_trace_window_ns.to_string());
    out.push_str(",\"dropped\":");
    out.push_str(&inp.trace.dropped().to_string());
    out.push_str(",\"chrome\":");
    out.push_str(&inp.trace.export_chrome_json_since(since));
    out.push('}');

    // Metrics: the watchdog's own per-interval delta scrape.
    out.push_str(",\"metrics\":");
    out.push_str(&deltas_to_json(inp.metrics));

    // Profiler ledger slice: per-core cumulative activity buckets.
    out.push_str(",\"profiler\":[");
    for (i, core) in inp.profiler.cores().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"server\":");
        out.push_str(&core.server.to_string());
        out.push_str(",\"core\":\"");
        out.push_str(&core_label(core.core));
        out.push_str("\",\"wall\":");
        out.push_str(&core.wall.to_string());
        out.push_str(",\"overcommit_ns\":");
        out.push_str(&core.overcommit_ns.to_string());
        out.push_str(",\"buckets\":{");
        for (j, act) in Activity::ALL.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(act.label());
            out.push_str("\":");
            out.push_str(&core.buckets[j].to_string());
        }
        out.push_str("}}");
    }
    out.push(']');

    // Audit tail: the trailing events of the (possibly ring-bounded)
    // audit stream.
    out.push_str(",\"audit\":{\"dropped\":");
    out.push_str(&inp.audit.dropped().to_string());
    out.push_str(",\"tail\":[");
    if let Some(tail) = inp.audit.with_events(|events| {
        let start = events.len().saturating_sub(cfg.audit_tail_events);
        let mut t = String::new();
        for (i, ev) in events[start..].iter().enumerate() {
            if i > 0 {
                t.push(',');
            }
            t.push_str("{\"seq\":");
            t.push_str(&ev.seq.to_string());
            t.push_str(",\"at\":");
            t.push_str(&ev.at.to_string());
            t.push_str(",\"event\":\"");
            t.push_str(ev.kind.label());
            t.push_str("\"}");
        }
        t
    }) {
        out.push_str(&tail);
    }
    out.push_str("]}");

    // The trigger window's slowest request journeys: the cross-node
    // causal chains of the requests this incident actually hurt. The
    // trace ring is completion-ordered, so the window is a suffix.
    out.push_str(",\"journeys\":");
    let journeys_json = inp.trace.with_events(|events| {
        let from = events.partition_point(|e| e.ts + e.dur < since);
        let all = journey::reconstruct(&events[from..], inp.trace.dropped());
        journey::export_json(
            &journey::slowest(&all, cfg.bundle_journeys),
            inp.trace.dropped(),
        )
    });
    out.push_str(&journeys_json);

    // Causal explain, when the audit layer could produce one. The
    // explain output is itself JSON; embed verbatim.
    match &inp.explain {
        Some(e) => {
            out.push_str(",\"explain\":");
            out.push_str(e);
        }
        None => out.push_str(",\"explain\":null"),
    }
    out.push('}');
    out
}

/// Renders the incident log as a JSON array of bundles (empty array
/// when nothing fired).
pub fn incidents_to_json(incidents: &[Incident]) -> String {
    let mut out = String::from("[");
    for (i, inc) in incidents.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&inc.bundle);
    }
    out.push(']');
    out
}

/// A one-line human summary of an incident (for example binaries and
/// logs — the bundle itself stays machine-readable).
pub fn summarize(inc: &Incident) -> String {
    let mut out = String::new();
    out.push_str("incident at ");
    out.push_str(&inc.at.to_string());
    out.push_str("ns: ");
    push_escaped(&mut out, inc.trigger);
    out
}
