//! The coordinator as a simulation actor.
//!
//! Wraps the pure [`Coordinator`] state machine in the RPC surface the
//! rest of the cluster speaks. The state lives behind a shared handle so
//! the harness can install tables/splits at setup time and inspect the
//! map (and lineage dependencies) during a run without extra RPCs.
//!
//! The real coordinator is quorum-replicated and off the data path (§2);
//! its request handling is modeled as instantaneous — coordinator load
//! is not part of any figure, and every coordinator interaction already
//! pays two network hops.

use std::cell::RefCell;
use std::rc::Rc;

use rocksteady_audit::{AuditKind, AuditSink, DropCause};
use rocksteady_common::RpcId;
use rocksteady_coordinator::Coordinator;
use rocksteady_proto::{Body, Envelope, Request, Response};
use rocksteady_simnet::{Actor, ActorId, Ctx, Directory, Event};

/// Shared handle to the coordinator state.
pub type CoordHandle = Rc<RefCell<Coordinator>>;

/// The coordinator actor.
pub struct CoordinatorActor {
    state: CoordHandle,
    dir: Directory,
    next_rpc: u64,
    /// Recoveries in flight: our RecoverTablet rpc ids.
    pending_recoveries: Vec<RpcId>,
    /// Protocol auditing (zero-cost when disarmed).
    audit: AuditSink,
}

impl CoordinatorActor {
    /// Creates the actor around shared state; `audit` receives every
    /// tablet-map edit, lineage add/drop, and migration start/commit.
    pub fn new(state: CoordHandle, dir: Directory, audit: AuditSink) -> Self {
        CoordinatorActor {
            state,
            dir,
            next_rpc: 1,
            pending_recoveries: Vec::new(),
            audit,
        }
    }

    fn handle(&mut self, ctx: &mut Ctx<'_, Envelope>, src: ActorId, rpc: RpcId, req: Request) {
        let resp = match req {
            Request::GetTabletMap => Response::TabletMapOk {
                tablets: self.state.borrow().tablet_map(),
            },
            Request::MigrationStarting {
                id,
                table,
                range,
                source,
                target,
                lineage_from_segment,
            } => {
                let ok = self.state.borrow_mut().migration_starting(
                    id,
                    table,
                    range,
                    source,
                    target,
                    lineage_from_segment,
                );
                if self.audit.is_on() {
                    if ok {
                        self.audit.emit(
                            ctx.now(),
                            AuditKind::LineageAdded {
                                id,
                                source,
                                target,
                                from_segment: lineage_from_segment,
                            },
                        );
                        self.audit.emit(
                            ctx.now(),
                            AuditKind::MigrationStart {
                                id,
                                table,
                                range,
                                source,
                                target,
                            },
                        );
                    } else {
                        self.audit
                            .emit(ctx.now(), AuditKind::MigrationRejected { id });
                    }
                }
                if ok {
                    Response::Ok
                } else {
                    Response::Err(rocksteady_proto::Status::UnknownTablet)
                }
            }
            Request::MigrationComplete {
                id,
                table,
                range,
                source,
                target,
            } => {
                let ok = self
                    .state
                    .borrow_mut()
                    .migration_complete(id, table, range, source, target);
                if ok && self.audit.is_on() {
                    self.audit
                        .emit(ctx.now(), AuditKind::MigrationCommit { id, table, range });
                    self.audit.emit(
                        ctx.now(),
                        AuditKind::LineageDropped {
                            id,
                            cause: DropCause::Commit,
                        },
                    );
                }
                Response::Ok
            }
            Request::BaselineOwnershipTransfer {
                table,
                range,
                source,
                target,
            } => {
                let flipped = {
                    let mut state = self.state.borrow_mut();
                    // Mark + complete: the baseline transfers ownership in
                    // one step at the end (§2.3).
                    state.baseline_starting(table, range, source, target);
                    state.baseline_complete(table, range, source, target)
                };
                if flipped && self.audit.is_on() {
                    self.audit.emit(
                        ctx.now(),
                        AuditKind::BaselineFlip {
                            table,
                            range,
                            source,
                            target,
                        },
                    );
                }
                Response::Ok
            }
            Request::ReportCrash { server } => {
                let deps_before: Vec<rocksteady_common::MigrationId> = if self.audit.is_on() {
                    self.state
                        .borrow()
                        .lineage_deps()
                        .iter()
                        .map(|d| d.id)
                        .collect()
                } else {
                    Vec::new()
                };
                let assignments = self.state.borrow_mut().handle_crash(server);
                if self.audit.is_on() {
                    // The crash plan drops every dep involving the dead
                    // server; the auditor checks exactly that, so the
                    // drops must land before the crash event itself.
                    let deps_after: Vec<rocksteady_common::MigrationId> = self
                        .state
                        .borrow()
                        .lineage_deps()
                        .iter()
                        .map(|d| d.id)
                        .collect();
                    for id in deps_before {
                        if !deps_after.contains(&id) {
                            self.audit.emit(
                                ctx.now(),
                                AuditKind::LineageDropped {
                                    id,
                                    cause: DropCause::Crash,
                                },
                            );
                        }
                    }
                    self.audit
                        .emit(ctx.now(), AuditKind::ServerCrashed { server });
                    for a in &assignments {
                        self.audit.emit(
                            ctx.now(),
                            AuditKind::RecoveryPlanned {
                                table: a.table,
                                range: a.range,
                                crashed: a.crashed,
                                recovery_master: a.recovery_master,
                                merge: a.merge,
                            },
                        );
                    }
                }
                let backups: Vec<_> = self.state.borrow().alive_servers();
                // Membership update: every surviving server must stop
                // waiting on the dead one (replication acks, pulls).
                for alive in &backups {
                    let id = RpcId(self.next_rpc);
                    self.next_rpc += 1;
                    ctx.send(
                        self.dir.actor_of(*alive),
                        Envelope::req(id, Request::NotifyServerDown { server }),
                    );
                }
                for a in assignments {
                    let id = RpcId(self.next_rpc);
                    self.next_rpc += 1;
                    self.pending_recoveries.push(id);
                    let dst = self.dir.actor_of(a.recovery_master);
                    ctx.send(
                        dst,
                        Envelope::req(
                            id,
                            Request::RecoverTablet {
                                table: a.table,
                                range: a.range,
                                crashed: a.crashed,
                                backups: backups.clone(),
                                from_segment: a.from_segment,
                                merge: a.merge,
                            },
                        ),
                    );
                }
                Response::Ok
            }
            _ => Response::Err(rocksteady_proto::Status::UnknownTablet),
        };
        ctx.send(src, Envelope::resp(rpc, resp));
    }
}

impl Actor<Envelope> for CoordinatorActor {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Envelope>, event: Event<Envelope>) {
        if let Event::Message { src, payload } = event {
            match payload.body {
                Body::Req(req) => self.handle(ctx, src, payload.rpc, req),
                Body::Resp(Response::RecoverTabletOk { .. }) => {
                    self.pending_recoveries.retain(|r| *r != payload.rpc);
                }
                Body::Resp(_) => {}
            }
        }
    }
}
