//! Periodic utilization and migration-progress sampling.
//!
//! Figures 5, 9, 11, 12 and 14 are time series of per-server quantities:
//! dispatch utilization, active worker cores, and migration MB/s. The
//! sampler is a generic scraper over the metrics [`Registry`]: once per
//! interval of virtual time it differences every `node_*` counter
//! (through [`DeltaScraper`], which tolerates counter resets and picks
//! up servers registered mid-run) and derives the per-server
//! [`UtilPoint`] series the figures plot. When metrics capture is armed
//! it also appends one full registry snapshot per interval to a shared
//! buffer for the JSON/Prometheus export path.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use rocksteady_common::{Nanos, ServerId};
use rocksteady_metrics::{DeltaScraper, Registry, Snapshot};
use rocksteady_proto::Envelope;
use rocksteady_server::stats::{DISPATCH_OVERCOMMIT_FAMILY, DISPATCH_OVERCOMMIT_HELP};
use rocksteady_simnet::{Actor, Ctx, Event};

/// One sample of one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilPoint {
    /// Interval start (virtual time).
    pub at: Nanos,
    /// Dispatch-core utilization in `[0, 1]`.
    pub dispatch: f64,
    /// Mean active worker cores over the interval (0 ..= W).
    pub worker_cores: f64,
    /// Record bytes received by migration during the interval.
    pub bytes_in: u64,
    /// Record bytes sent by migration during the interval.
    pub bytes_out: u64,
}

/// Per-server series of samples.
#[derive(Debug, Default)]
pub struct UtilSeries {
    /// Samples by server, in time order.
    pub by_server: HashMap<ServerId, Vec<UtilPoint>>,
    /// Sampling interval.
    pub interval: Nanos,
    /// Windows in which a server's dispatch busy-time delta exceeded
    /// the interval and was clamped: `(server, window start, excess
    /// ns)`, in sample order (servers sorted within a tick).
    pub overcommit: Vec<(ServerId, Nanos, Nanos)>,
}

impl UtilSeries {
    /// Migration rate series (MB/s of records received) for one server.
    pub fn migration_rate_mbps(&self, server: ServerId) -> Vec<(Nanos, f64)> {
        let Some(points) = self.by_server.get(&server) else {
            return Vec::new();
        };
        points
            .iter()
            .map(|p| {
                (
                    p.at,
                    rocksteady_common::time::mb_per_sec(p.bytes_in, self.interval),
                )
            })
            .collect()
    }

    /// Warnings about anomalies in the collected series — one per
    /// clamped (overcommitted) dispatch window. Empty means clean;
    /// non-empty means dispatch utilization of those windows reads 1.0
    /// but the core was double-charged (see
    /// `node_dispatch_overcommit_total` for the same signal as a
    /// counter).
    pub fn validate(&self) -> Vec<String> {
        self.overcommit
            .iter()
            .map(|(server, at, excess)| {
                format!(
                    "dispatch overcommitted by {excess} ns on server {}                      in the window starting at {at} (clamped to 1.0)",
                    server.0
                )
            })
            .collect()
    }
}

/// Shared handle to the collected series.
pub type UtilSeriesHandle = Rc<RefCell<UtilSeries>>;

/// Shared buffer of periodic full-registry snapshots (empty unless the
/// cluster was built with `metrics: true`).
pub type SnapshotLogHandle = Rc<RefCell<Vec<Snapshot>>>;

/// The sampler actor: a registry scraper on a fixed virtual-time cadence.
pub struct SamplerActor {
    interval: Nanos,
    registry: Registry,
    scraper: DeltaScraper,
    /// Whether to append full snapshots to `snapshots` each tick. The
    /// timer cadence is identical either way, so arming capture cannot
    /// perturb the event schedule.
    capture: bool,
    out: UtilSeriesHandle,
    snapshots: SnapshotLogHandle,
}

impl SamplerActor {
    /// Creates a sampler scraping `registry` every `interval` of
    /// virtual time, deriving utilization into `out` and (when
    /// `capture`) appending registry snapshots to `snapshots`.
    pub fn new(
        interval: Nanos,
        registry: Registry,
        capture: bool,
        out: UtilSeriesHandle,
        snapshots: SnapshotLogHandle,
    ) -> Self {
        out.borrow_mut().interval = interval;
        SamplerActor {
            interval,
            registry,
            scraper: DeltaScraper::default(),
            capture,
            out,
            snapshots,
        }
    }

    fn sample(&mut self, now: Nanos) {
        let interval_start = now.saturating_sub(self.interval);
        #[derive(Default, Clone, Copy)]
        struct Win {
            dispatch: u64,
            worker: u64,
            bytes_in: u64,
            bytes_out: u64,
        }
        // Scraped in deterministic (name, labels) order; collect into a
        // small sorted vec rather than a hash map so the tick stays
        // allocation-light (one vec of a handful of servers).
        let mut windows: Vec<(ServerId, Win)> = Vec::new();
        self.scraper
            .scrape_with(&self.registry, |name, labels, _total, delta| {
                let server = labels
                    .iter()
                    .find(|(k, _)| *k == "server")
                    .and_then(|(_, v)| v.parse().ok())
                    .map(ServerId);
                let Some(server) = server else { return };
                let w = match windows.binary_search_by_key(&server.0, |(s, _)| s.0) {
                    Ok(i) => &mut windows[i].1,
                    Err(i) => {
                        windows.insert(i, (server, Win::default()));
                        &mut windows[i].1
                    }
                };
                match name {
                    "node_dispatch_busy_ns" => w.dispatch = delta,
                    "node_worker_busy_ns" => w.worker = delta,
                    "node_bytes_migrated_in" => w.bytes_in = delta,
                    "node_bytes_migrated_out" => w.bytes_out = delta,
                    _ => {}
                }
            });
        let dt = self.interval as f64;
        let mut out = self.out.borrow_mut();
        for (server, w) in windows {
            // A dispatch core is one core: busy time can exceed the
            // interval both benignly (a charge posted at the tick
            // boundary lands in the next window) and structurally (the
            // model double-books the core). Clamp to [0, 1] for the
            // figures, but surface every clamped window as a counter
            // bump and a validate() warning instead of hiding it.
            let dispatch = if w.dispatch > self.interval {
                self.registry
                    .counter(
                        DISPATCH_OVERCOMMIT_FAMILY,
                        DISPATCH_OVERCOMMIT_HELP,
                        &[("server", server.0.to_string())],
                    )
                    .inc();
                out.overcommit
                    .push((server, interval_start, w.dispatch - self.interval));
                1.0
            } else {
                w.dispatch as f64 / dt
            };
            out.by_server.entry(server).or_default().push(UtilPoint {
                at: interval_start,
                dispatch,
                worker_cores: w.worker as f64 / dt,
                bytes_in: w.bytes_in,
                bytes_out: w.bytes_out,
            });
        }
        if self.capture {
            self.snapshots
                .borrow_mut()
                .push(self.registry.snapshot(now));
        }
    }
}

impl Actor<Envelope> for SamplerActor {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        ctx.timer(self.interval, 0);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Envelope>, event: Event<Envelope>) {
        if let Event::Timer { .. } = event {
            self.sample(ctx.now());
            ctx.timer(self.interval, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocksteady_common::MILLISECOND;
    use rocksteady_server::stats::registered_stats;

    fn sampler(
        reg: &Registry,
        capture: bool,
    ) -> (SamplerActor, UtilSeriesHandle, SnapshotLogHandle) {
        let out: UtilSeriesHandle = Rc::new(RefCell::new(UtilSeries::default()));
        let snaps: SnapshotLogHandle = Rc::new(RefCell::new(Vec::new()));
        let s = SamplerActor::new(
            MILLISECOND,
            reg.clone(),
            capture,
            Rc::clone(&out),
            Rc::clone(&snaps),
        );
        (s, out, snaps)
    }

    /// Intervals with no activity still produce a point (with zero
    /// deltas) — the figures rely on a gap-free time axis.
    #[test]
    fn empty_intervals_sample_as_zero_points() {
        let reg = Registry::new();
        let stats = registered_stats(&reg, ServerId(0));
        let (mut s, out, _) = sampler(&reg, false);
        stats.dispatch_busy_ns.add(MILLISECOND / 2);
        s.sample(MILLISECOND);
        s.sample(2 * MILLISECOND); // nothing happened in this window
        let util = out.borrow();
        let points = &util.by_server[&ServerId(0)];
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].at, 0, "points are stamped at interval start");
        assert!((points[0].dispatch - 0.5).abs() < 1e-9);
        assert_eq!(points[1].at, MILLISECOND);
        assert_eq!(points[1].dispatch, 0.0);
        assert_eq!(points[1].bytes_in, 0);
        assert_eq!(points[1].bytes_out, 0);
    }

    /// A server registered after sampling began (a node joining
    /// mid-run) appears on its next scrape, with its full total as the
    /// first delta — no underflow against a missing baseline.
    #[test]
    fn server_joining_mid_run_is_picked_up() {
        let reg = Registry::new();
        let _s0 = registered_stats(&reg, ServerId(0));
        let (mut s, out, _) = sampler(&reg, false);
        s.sample(MILLISECOND);
        assert!(!out.borrow().by_server.contains_key(&ServerId(7)));

        let late = registered_stats(&reg, ServerId(7));
        late.bytes_migrated_in.add(4_096);
        s.sample(2 * MILLISECOND);
        let util = out.borrow();
        let points = &util.by_server[&ServerId(7)];
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].bytes_in, 4_096);
    }

    /// Dispatch is one core: a busy charge posted at a tick boundary can
    /// land in the next window, so the ratio is clamped to [0, 1] — but
    /// no longer silently: the clamp bumps the overcommit counter and
    /// leaves a validate() warning. Worker cores are deliberately not
    /// clamped (W cores).
    #[test]
    fn dispatch_utilization_is_clamped_to_unit_and_counted() {
        let reg = Registry::new();
        let stats = registered_stats(&reg, ServerId(0));
        let (mut s, out, _) = sampler(&reg, false);
        stats.dispatch_busy_ns.add(3 * MILLISECOND);
        stats.worker_busy_ns.add(4 * MILLISECOND);
        s.sample(MILLISECOND);
        let util = out.borrow();
        let p = util.by_server[&ServerId(0)][0];
        assert_eq!(p.dispatch, 1.0, "dispatch clamped to one core");
        assert!((p.worker_cores - 4.0).abs() < 1e-9);
        // The clamp is visible, not silent.
        assert_eq!(stats.dispatch_overcommit.get(), 1);
        assert_eq!(util.overcommit, vec![(ServerId(0), 0, 2 * MILLISECOND)]);
        let warnings = util.validate();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("overcommitted by"), "{}", warnings[0]);
    }

    /// An in-bounds window neither counts nor warns.
    #[test]
    fn unclamped_windows_leave_no_overcommit_trail() {
        let reg = Registry::new();
        let stats = registered_stats(&reg, ServerId(0));
        let (mut s, out, _) = sampler(&reg, false);
        stats.dispatch_busy_ns.add(MILLISECOND / 2);
        s.sample(MILLISECOND);
        assert_eq!(stats.dispatch_overcommit.get(), 0);
        assert!(out.borrow().validate().is_empty());
    }

    /// `capture` gates only the snapshot buffer; the utilization series
    /// (and hence the event schedule driving it) is identical either way.
    #[test]
    fn capture_flag_gates_snapshot_log_only() {
        for capture in [false, true] {
            let reg = Registry::new();
            let stats = registered_stats(&reg, ServerId(0));
            let (mut s, out, snaps) = sampler(&reg, capture);
            stats.dispatch_busy_ns.add(MILLISECOND / 4);
            s.sample(MILLISECOND);
            s.sample(2 * MILLISECOND);
            assert_eq!(out.borrow().by_server[&ServerId(0)].len(), 2);
            let snaps = snaps.borrow();
            if capture {
                assert_eq!(snaps.len(), 2);
                assert_eq!(snaps[0].at, MILLISECOND);
                assert_eq!(snaps[1].at, 2 * MILLISECOND);
            } else {
                assert!(snaps.is_empty(), "disarmed capture buffered snapshots");
            }
        }
    }
}
