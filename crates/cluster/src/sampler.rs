//! Periodic utilization and migration-progress sampling.
//!
//! Figures 5, 9, 11, 12 and 14 are time series of per-server quantities:
//! dispatch utilization, active worker cores, and migration MB/s. The
//! sampler actor differences each server's monotonic counters once per
//! interval of virtual time.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use rocksteady_common::{Nanos, ServerId};
use rocksteady_proto::Envelope;
use rocksteady_server::stats::StatsHandle;
use rocksteady_simnet::{Actor, Ctx, Event};

/// One sample of one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilPoint {
    /// Interval start (virtual time).
    pub at: Nanos,
    /// Dispatch-core utilization in `[0, 1]`.
    pub dispatch: f64,
    /// Mean active worker cores over the interval (0 ..= W).
    pub worker_cores: f64,
    /// Record bytes received by migration during the interval.
    pub bytes_in: u64,
    /// Record bytes sent by migration during the interval.
    pub bytes_out: u64,
}

/// Per-server series of samples.
#[derive(Debug, Default)]
pub struct UtilSeries {
    /// Samples by server, in time order.
    pub by_server: HashMap<ServerId, Vec<UtilPoint>>,
    /// Sampling interval.
    pub interval: Nanos,
}

impl UtilSeries {
    /// Migration rate series (MB/s of records received) for one server.
    pub fn migration_rate_mbps(&self, server: ServerId) -> Vec<(Nanos, f64)> {
        let Some(points) = self.by_server.get(&server) else {
            return Vec::new();
        };
        points
            .iter()
            .map(|p| {
                (
                    p.at,
                    rocksteady_common::time::mb_per_sec(p.bytes_in, self.interval),
                )
            })
            .collect()
    }
}

/// Shared handle to the collected series.
pub type UtilSeriesHandle = Rc<RefCell<UtilSeries>>;

#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    dispatch_busy_ns: u64,
    worker_busy_ns: u64,
    bytes_in: u64,
    bytes_out: u64,
}

/// The sampler actor.
pub struct SamplerActor {
    interval: Nanos,
    targets: Vec<(ServerId, StatsHandle)>,
    last: Vec<Snapshot>,
    out: UtilSeriesHandle,
}

impl SamplerActor {
    /// Creates a sampler over the given servers' stats, writing into
    /// `out` every `interval` of virtual time.
    pub fn new(
        interval: Nanos,
        targets: Vec<(ServerId, StatsHandle)>,
        out: UtilSeriesHandle,
    ) -> Self {
        out.borrow_mut().interval = interval;
        let last = vec![Snapshot::default(); targets.len()];
        SamplerActor {
            interval,
            targets,
            last,
            out,
        }
    }

    fn sample(&mut self, now: Nanos) {
        let interval_start = now.saturating_sub(self.interval);
        let mut out = self.out.borrow_mut();
        for (i, (server, stats)) in self.targets.iter().enumerate() {
            let s = stats.borrow();
            let cur = Snapshot {
                dispatch_busy_ns: s.dispatch_busy_ns,
                worker_busy_ns: s.worker_busy_ns,
                bytes_in: s.bytes_migrated_in,
                bytes_out: s.bytes_migrated_out,
            };
            drop(s);
            let prev = self.last[i];
            self.last[i] = cur;
            let dt = self.interval as f64;
            out.by_server.entry(*server).or_default().push(UtilPoint {
                at: interval_start,
                dispatch: (cur.dispatch_busy_ns - prev.dispatch_busy_ns) as f64 / dt,
                worker_cores: (cur.worker_busy_ns - prev.worker_busy_ns) as f64 / dt,
                bytes_in: cur.bytes_in - prev.bytes_in,
                bytes_out: cur.bytes_out - prev.bytes_out,
            });
        }
    }
}

impl Actor<Envelope> for SamplerActor {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        ctx.timer(self.interval, 0);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Envelope>, event: Event<Envelope>) {
        if let Event::Timer { .. } = event {
            self.sample(ctx.now());
            ctx.timer(self.interval, 0);
        }
    }
}
