//! The flight-recorder watchdog actor.
//!
//! Always installed at a fixed cadence (the cluster sampling interval),
//! exactly like the sampler and the SLO monitor: the timer cadence is
//! identical whether or not `ClusterConfig::flight_recorder` is armed,
//! so arming the recorder cannot perturb the event schedule —
//! `events_processed()` stays byte-identical. (Conditionally installing
//! the actor, as the rebalancer does, would be wrong here: the
//! recorder's whole point is to be *always on*, and its acceptance
//! criterion is schedule identity between armed and disarmed runs.)
//!
//! When armed, each tick assembles a [`WatchdogSample`] from live
//! handles — SLO burn rates from the monitor, per-run gather/replay
//! progress from every server's stats, counter deltas from the metrics
//! registry, lineage-dependency ages from the coordinator — and
//! evaluates the pluggable detector catalog on it (all pure state
//! mutation on the virtual clock: no extra timers, no RNG). If a
//! detector fires and the [`CooldownTracker`] admits it, the rings are
//! frozen into one [`Incident`] bundle.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rocksteady_audit::AuditSink;
use rocksteady_common::{MigrationId, Nanos, ServerId};
use rocksteady_flightrec::{
    build_detectors, CooldownTracker, Detector, DetectorReading, FlightRecorderConfig,
    LineageSample, MigrationSample, WatchdogSample,
};
use rocksteady_metrics::{Counter, CounterDelta, DeltaScraper, Registry};
use rocksteady_profiler::Profiler;
use rocksteady_proto::Envelope;
use rocksteady_server::stats::StatsHandle;
use rocksteady_simnet::{Actor, Ctx, Event};
use rocksteady_trace::Tracer;

use crate::coordinator_actor::CoordHandle;
use crate::incident::{build_bundle, BundleInputs, Incident};
use crate::slo::SloHandle;

/// Shared, append-only incident log: one entry per exported bundle.
pub type IncidentLogHandle = Rc<RefCell<Vec<Incident>>>;

/// Counter family name for trace-ring drop accounting.
pub const TRACE_DROPPED_FAMILY: &str = "trace_events_dropped_total";

/// The armed half of the watchdog: detector catalog, cooldowns, and
/// every live handle a sample is assembled from.
struct WatchdogCore {
    cfg: FlightRecorderConfig,
    detectors: Vec<Box<dyn Detector>>,
    cooldowns: CooldownTracker,
    slo: SloHandle,
    /// Per-server stats, sorted by server id for deterministic sample
    /// assembly.
    server_stats: Vec<(ServerId, StatsHandle)>,
    coord: CoordHandle,
    registry: Registry,
    scraper: DeltaScraper,
    trace: Tracer,
    profiler: Profiler,
    audit: AuditSink,
    incidents: IncidentLogHandle,
    /// First-seen virtual time of each outstanding lineage dependency
    /// (the coordinator keeps no timestamps; ages are watchdog-local).
    lineage_first_seen: BTreeMap<u64, Nanos>,
    /// Registry counter mirroring [`Tracer::dropped`].
    trace_dropped: Counter,
    trace_dropped_last: u64,
}

/// The always-installed watchdog actor. With `core: None` (recorder
/// disarmed) each tick is timer-pop + re-arm and nothing else — the
/// same schedule an armed run produces.
pub struct WatchdogActor {
    interval: Nanos,
    core: Option<WatchdogCore>,
}

/// Everything the armed watchdog samples from, passed by the harness.
pub struct WatchdogWiring {
    /// SLO monitor output (burn rates).
    pub slo: SloHandle,
    /// Per-server stats handles.
    pub server_stats: Vec<(ServerId, StatsHandle)>,
    /// Shared coordinator state (lineage deps).
    pub coord: CoordHandle,
    /// The cluster metrics registry.
    pub registry: Registry,
    /// Shared trace buffer.
    pub trace: Tracer,
    /// Shared profiler ledger.
    pub profiler: Profiler,
    /// Shared audit stream.
    pub audit: AuditSink,
    /// Where exported bundles land.
    pub incidents: IncidentLogHandle,
}

impl WatchdogActor {
    /// A disarmed watchdog: ticks at `interval` and does nothing else.
    pub fn disarmed(interval: Nanos) -> Self {
        WatchdogActor {
            interval,
            core: None,
        }
    }

    /// An armed watchdog evaluating `cfg.detectors` every `interval`.
    pub fn armed(interval: Nanos, cfg: FlightRecorderConfig, wiring: WatchdogWiring) -> Self {
        let mut server_stats = wiring.server_stats;
        server_stats.sort_by_key(|(id, _)| *id);
        let detectors = build_detectors(&cfg.detectors);
        let cooldowns = CooldownTracker::new(cfg.incident_cooldown_ns, cfg.detector_cooldown_ns);
        let trace_dropped = wiring.registry.counter(
            TRACE_DROPPED_FAMILY,
            "trace events discarded by ring-buffer compaction",
            &[],
        );
        WatchdogActor {
            interval,
            core: Some(WatchdogCore {
                cfg,
                detectors,
                cooldowns,
                slo: wiring.slo,
                server_stats,
                coord: wiring.coord,
                registry: wiring.registry,
                scraper: DeltaScraper::new(),
                trace: wiring.trace,
                profiler: wiring.profiler,
                audit: wiring.audit,
                incidents: wiring.incidents,
                lineage_first_seen: BTreeMap::new(),
                trace_dropped,
                trace_dropped_last: 0,
            }),
        }
    }
}

impl WatchdogCore {
    /// Assembles this tick's sample from the live handles. Pure reads
    /// plus scraper-local state; deterministic order throughout.
    fn sample(&mut self, now: Nanos, interval: Nanos) -> (WatchdogSample, Vec<CounterDelta>) {
        // Keep the drop counter in sync with the trace ring.
        let dropped = self.trace.dropped();
        if dropped > self.trace_dropped_last {
            self.trace_dropped.add(dropped - self.trace_dropped_last);
            self.trace_dropped_last = dropped;
        }

        let deltas = self.scraper.scrape(&self.registry);
        let mut overcommit_total = 0u64;
        let mut retries_total = 0u64;
        for d in &deltas {
            match d.name {
                rocksteady_server::stats::DISPATCH_OVERCOMMIT_FAMILY => overcommit_total += d.total,
                rocksteady_workload::stats::CLIENT_RETRIES_FAMILY => retries_total += d.total,
                _ => {}
            }
        }

        // Per-run migration progress, merged across servers in id order.
        let mut migrations: Vec<MigrationSample> = Vec::new();
        for (server, stats) in &self.server_stats {
            for (id, run) in stats.migration_runs_snapshot() {
                migrations.push(MigrationSample {
                    id: id.0,
                    target: server.0,
                    in_flight: run.in_flight(),
                    gathered: run.gathered,
                    replay_received: run.replay_received,
                    replay_applied: run.replay_applied,
                });
            }
        }
        migrations.sort_by_key(|m| m.id);

        // Lineage ages: watchdog-local first-seen stamps.
        let deps: Vec<u64> = self
            .coord
            .borrow()
            .lineage_deps()
            .iter()
            .map(|d| d.id.0)
            .collect();
        self.lineage_first_seen.retain(|id, _| deps.contains(id));
        let mut lineage: Vec<LineageSample> = deps
            .iter()
            .map(|id| {
                let first = *self.lineage_first_seen.entry(*id).or_insert(now);
                LineageSample {
                    id: *id,
                    age_ns: now - first,
                }
            })
            .collect();
        lineage.sort_by_key(|d| d.id);

        let (burn_fast, burn_slow) = {
            let r = self.slo.borrow();
            (r.burn_fast_permille, r.burn_slow_permille)
        };

        (
            WatchdogSample {
                at: now,
                interval_ns: interval,
                burn_fast_permille: burn_fast,
                burn_slow_permille: burn_slow,
                migrations,
                dispatch_overcommit_total: overcommit_total,
                client_retries_total: retries_total,
                lineage,
            },
            deltas,
        )
    }

    /// The causal explain for the triggering reading: progress
    /// anomalies get the migration's story, latency anomalies get the
    /// breach-window suspect ranking.
    fn explain_for(&self, now: Nanos, trigger: &DetectorReading) -> Option<String> {
        match trigger.subject {
            Some(id) => self.audit.explain_migration(MigrationId(id)),
            None => {
                let from = now.saturating_sub(10 * rocksteady_common::SECOND);
                self.audit.explain_slo_breach(from, now)
            }
        }
    }

    fn tick(&mut self, now: Nanos, interval: Nanos) {
        let (sample, deltas) = self.sample(now, interval);
        let firing: Vec<DetectorReading> = self
            .detectors
            .iter_mut()
            .filter_map(|d| d.evaluate(&sample))
            .collect();
        if firing.is_empty() {
            return;
        }
        let Some(trigger_idx) = self.cooldowns.admit(now, &firing) else {
            return;
        };
        let trigger = &firing[trigger_idx];
        let explain = self.explain_for(now, trigger);
        let bundle = build_bundle(
            &self.cfg,
            &BundleInputs {
                at: now,
                trigger: trigger.detector,
                readings: &firing,
                burn: (sample.burn_fast_permille, sample.burn_slow_permille),
                trace: &self.trace,
                metrics: &deltas,
                profiler: &self.profiler,
                audit: &self.audit,
                explain,
            },
        );
        self.incidents.borrow_mut().push(Incident {
            at: now,
            trigger: trigger.detector,
            bundle,
        });
    }
}

impl Actor<Envelope> for WatchdogActor {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        ctx.timer(self.interval, 0);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Envelope>, event: Event<Envelope>) {
        if let Event::Timer { .. } = event {
            // Armed: evaluate detectors (pure state mutation). Disarmed:
            // nothing. The re-armed timer is identical either way.
            if self.core.is_some() {
                let now = ctx.now();
                let interval = self.interval;
                if let Some(core) = self.core.as_mut() {
                    core.tick(now, interval);
                }
            }
            ctx.timer(self.interval, 0);
        }
    }
}
