//! Live SLO monitoring under virtual time.
//!
//! Rocksteady's whole premise is migrating *without* violating tail
//! latency SLAs (the paper targets 99.9th-percentile reads). The
//! monitor windows every client's cumulative read-latency histogram
//! (family `client_read_latency_ns`) once per interval, takes the
//! in-window p50/p99.9 via `delta_since`, and compares the tail against
//! the configured SLA. It publishes `slo_*` gauges/counters back into
//! the same registry and keeps a queryable [`SloReport`] so the
//! migration manager (or an experiment script) can ask "am I currently
//! hurting clients?" and see the remaining headroom.
//!
//! The actor is always installed with a fixed timer cadence; the SLA
//! value only changes what is *recorded*, never the event schedule, so
//! arming it cannot perturb a deterministic run.
//!
//! The monitor answers *that* the tail breached; its post-hoc companion
//! [`Cluster::tail_blame_report`](crate::Cluster::tail_blame_report)
//! answers *why*, by aggregating the per-RPC net/queue/service/hold
//! trace instants into a [`TailBlameReport`] blame histogram over the
//! requests that exceeded the same SLA.

use std::cell::RefCell;
use std::rc::Rc;

use rocksteady_common::{Histogram, Nanos};
use rocksteady_metrics::timeline::delta_histogram;
use rocksteady_metrics::{Counter, Gauge, Registry};
use rocksteady_proto::Envelope;
use rocksteady_simnet::{Actor, Ctx, Event};

pub use rocksteady_profiler::TailBlameReport;

/// The latest SLO window, queryable between simulation steps.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloReport {
    /// Window end (virtual time of the evaluation).
    pub at: Nanos,
    /// Reads completing in the window.
    pub window_reads: u64,
    /// Median read latency over the window (0 when the window is empty).
    pub p50: Nanos,
    /// 99.9th-percentile read latency over the window (0 when empty).
    pub p999: Nanos,
    /// The configured SLA, if any.
    pub sla: Option<Nanos>,
    /// Intervals so far whose p99.9 exceeded the SLA. Empty windows
    /// never count: no reads completed, so no client saw a violation.
    pub breach_intervals: u64,
    /// Fast-window burn rate: permille of the non-empty intervals in
    /// the last 1 s of virtual time that breached the SLA (0 when no
    /// non-empty interval fell in the window).
    pub burn_fast_permille: u64,
    /// Slow-window burn rate: same, over the last 10 s.
    pub burn_slow_permille: u64,
}

impl SloReport {
    /// `sla - p999` for the last non-empty window: positive slack when
    /// meeting the SLA, negative depth when violating it. `None`
    /// without a configured SLA or before the first non-empty window.
    pub fn headroom(&self) -> Option<i64> {
        let sla = self.sla?;
        if self.window_reads == 0 {
            return None;
        }
        Some(sla as i64 - self.p999 as i64)
    }

    /// Whether the last non-empty window violated the SLA.
    pub fn breached(&self) -> bool {
        matches!(self.headroom(), Some(h) if h < 0)
    }
}

/// Shared handle to the latest [`SloReport`].
pub type SloHandle = Rc<RefCell<SloReport>>;

/// The monitor actor. One per cluster, scraping the shared registry.
pub struct SloMonitor {
    interval: Nanos,
    registry: Registry,
    sla: Option<Nanos>,
    /// Cumulative merged read histogram at the previous tick.
    prev: Histogram,
    out: SloHandle,
    // Published instruments (all unlabeled; one monitor per cluster).
    g_p50: Gauge,
    g_p999: Gauge,
    g_headroom: Gauge,
    g_sla: Gauge,
    c_breaches: Counter,
    g_burn_fast: Gauge,
    g_burn_slow: Gauge,
    /// Per-interval outcomes, most recent last, trimmed to the slow
    /// window: `None` for an empty interval, `Some(breached)` otherwise.
    history: std::collections::VecDeque<Option<bool>>,
}

impl SloMonitor {
    /// Creates a monitor evaluating every `interval` of virtual time
    /// against `sla` (99.9th-percentile read latency), publishing into
    /// `registry` and `out`.
    pub fn new(interval: Nanos, registry: Registry, sla: Option<Nanos>, out: SloHandle) -> Self {
        let no = [];
        let g_p50 = registry.gauge(
            "slo_read_p50_ns",
            "windowed median read latency (-1 before the first non-empty window)",
            &no,
        );
        let g_p999 = registry.gauge(
            "slo_read_p999_ns",
            "windowed p99.9 read latency (-1 before the first non-empty window)",
            &no,
        );
        let g_headroom = registry.gauge(
            "slo_read_headroom_ns",
            "sla minus windowed p99.9 (negative while violating)",
            &no,
        );
        let g_sla = registry.gauge(
            "slo_read_sla_ns",
            "configured p99.9 read SLA (-1 when unset)",
            &no,
        );
        let c_breaches = registry.counter(
            "slo_breach_intervals_total",
            "intervals whose windowed p99.9 exceeded the SLA",
            &no,
        );
        let g_burn_fast = registry.gauge(
            "slo_burn_rate_fast",
            "permille of non-empty intervals in the last 1s whose p99.9 breached the SLA",
            &no,
        );
        let g_burn_slow = registry.gauge(
            "slo_burn_rate_slow",
            "permille of non-empty intervals in the last 10s whose p99.9 breached the SLA",
            &no,
        );
        g_p50.set(-1);
        g_p999.set(-1);
        g_sla.set(sla.map_or(-1, |s| s as i64));
        out.borrow_mut().sla = sla;
        SloMonitor {
            interval,
            registry,
            sla,
            prev: Histogram::new(),
            out,
            g_p50,
            g_p999,
            g_headroom,
            g_sla,
            c_breaches,
            g_burn_fast,
            g_burn_slow,
            history: std::collections::VecDeque::new(),
        }
    }

    /// Intervals covering `window_ns` of virtual time (at least one).
    fn window_intervals(&self, window_ns: Nanos) -> usize {
        (window_ns / self.interval.max(1)).max(1) as usize
    }

    /// Burn rate over the trailing `n` intervals of `self.history`:
    /// breached per non-empty, in permille. Empty intervals carry no
    /// client observations so they dilute neither window.
    fn burn_permille(&self, n: usize) -> u64 {
        let tail = self.history.len().saturating_sub(n);
        let mut breached = 0u64;
        let mut non_empty = 0u64;
        for b in self.history.iter().skip(tail).flatten() {
            non_empty += 1;
            if *b {
                breached += 1;
            }
        }
        (breached * 1000).checked_div(non_empty).unwrap_or(0)
    }

    /// Pushes this interval's outcome and republishes both burn gauges.
    fn record_burn(&mut self, outcome: Option<bool>) -> (u64, u64) {
        let slow_n = self.window_intervals(10 * rocksteady_common::SECOND);
        self.history.push_back(outcome);
        while self.history.len() > slow_n {
            self.history.pop_front();
        }
        let fast = self.burn_permille(self.window_intervals(rocksteady_common::SECOND));
        let slow = self.burn_permille(slow_n);
        self.g_burn_fast.set(fast as i64);
        self.g_burn_slow.set(slow as i64);
        (fast, slow)
    }

    fn evaluate(&mut self, now: Nanos) {
        let mut merged = Histogram::new();
        for (_, h) in self.registry.histograms_of("client_read_latency_ns") {
            h.with(|hist| merged.merge(hist));
        }
        let window = delta_histogram(&merged, &self.prev);
        self.prev = merged;

        let mut report = self.out.borrow_mut();
        report.at = now;
        report.window_reads = window.count();
        if window.count() == 0 {
            // Nothing completed: leave the last percentiles in place and
            // never count a breach (no client observed anything).
            report.p50 = 0;
            report.p999 = 0;
            drop(report);
            let (fast, slow) = self.record_burn(None);
            let mut report = self.out.borrow_mut();
            report.burn_fast_permille = fast;
            report.burn_slow_permille = slow;
            return;
        }
        report.p50 = window.percentile(0.5);
        report.p999 = window.percentile(0.999);
        self.g_p50.set(report.p50 as i64);
        self.g_p999.set(report.p999 as i64);
        let mut breached = false;
        if let Some(sla) = self.sla {
            let headroom = sla as i64 - report.p999 as i64;
            self.g_headroom.set(headroom);
            if headroom < 0 {
                report.breach_intervals = self.c_breaches.inc();
                breached = true;
            }
        }
        drop(report);
        let (fast, slow) = self.record_burn(Some(breached));
        let mut report = self.out.borrow_mut();
        report.burn_fast_permille = fast;
        report.burn_slow_permille = slow;
        let _ = &self.g_sla; // published once at construction
    }
}

impl Actor<Envelope> for SloMonitor {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        ctx.timer(self.interval, 0);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Envelope>, event: Event<Envelope>) {
        if let Event::Timer { .. } = event {
            self.evaluate(ctx.now());
            ctx.timer(self.interval, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocksteady_common::MILLISECOND;

    fn monitor(reg: &Registry, sla: Option<Nanos>) -> (SloMonitor, SloHandle) {
        let out: SloHandle = Rc::new(RefCell::new(SloReport::default()));
        let m = SloMonitor::new(MILLISECOND, reg.clone(), sla, Rc::clone(&out));
        (m, out)
    }

    #[test]
    fn windows_merge_all_clients_and_count_breaches() {
        let reg = Registry::new();
        let h0 = reg.histogram("client_read_latency_ns", "r", &[("client", "0".into())]);
        let h1 = reg.histogram("client_read_latency_ns", "r", &[("client", "1".into())]);
        let (mut m, out) = monitor(&reg, Some(50_000));

        // Window 1: both clients fast — no breach, positive headroom.
        for _ in 0..100 {
            h0.record(5_000);
            h1.record(6_000);
        }
        m.evaluate(MILLISECOND);
        {
            let r = out.borrow();
            assert_eq!(r.window_reads, 200, "merges every client histogram");
            assert_eq!(r.breach_intervals, 0);
            assert!(!r.breached());
            assert!(r.headroom().unwrap() > 0);
        }

        // Window 2: one client's tail blows through the SLA. The window
        // must contain only new observations (cumulative differencing).
        for _ in 0..100 {
            h0.record(500_000);
        }
        m.evaluate(2 * MILLISECOND);
        {
            let r = out.borrow();
            assert_eq!(r.window_reads, 100, "window is the delta, not the total");
            assert_eq!(r.breach_intervals, 1);
            assert!(r.breached());
            assert!(r.headroom().unwrap() < 0);
        }

        // Window 3: empty — percentiles zero, no breach counted, and
        // headroom is unknowable (no client observed anything).
        m.evaluate(3 * MILLISECOND);
        let r = out.borrow();
        assert_eq!(r.window_reads, 0);
        assert_eq!(r.p999, 0);
        assert_eq!(r.breach_intervals, 1, "empty window counted a breach");
        assert_eq!(r.headroom(), None);
    }

    #[test]
    fn burn_rates_window_breach_fractions() {
        let reg = Registry::new();
        let h = reg.histogram("client_read_latency_ns", "r", &[("client", "0".into())]);
        // 1 ms interval → fast window = 1000 intervals, slow = 10000.
        let (mut m, out) = monitor(&reg, Some(50_000));

        // 10 breaching intervals out of 10 non-empty → 1000 permille.
        for i in 1..=10u64 {
            for _ in 0..50 {
                h.record(500_000);
            }
            m.evaluate(i * MILLISECOND);
        }
        {
            let r = out.borrow();
            assert_eq!(r.burn_fast_permille, 1000);
            assert_eq!(r.burn_slow_permille, 1000);
        }

        // 10 clean intervals → half the non-empty window breached.
        for i in 11..=20u64 {
            for _ in 0..50 {
                h.record(5_000);
            }
            m.evaluate(i * MILLISECOND);
        }
        {
            let r = out.borrow();
            assert_eq!(r.burn_fast_permille, 500);
            assert_eq!(r.burn_slow_permille, 500);
        }

        // Empty intervals dilute neither window.
        for i in 21..=30u64 {
            m.evaluate(i * MILLISECOND);
        }
        let r = out.borrow();
        assert_eq!(r.burn_fast_permille, 500);
        // The gauges track the report.
        let snap = reg.snapshot(30 * MILLISECOND);
        let json = snap.to_json();
        assert!(json.contains("\"name\":\"slo_burn_rate_fast\""), "{json}");
        assert!(json.contains("\"name\":\"slo_burn_rate_slow\""), "{json}");
    }

    #[test]
    fn fast_window_recovers_before_slow_window() {
        let reg = Registry::new();
        let h = reg.histogram("client_read_latency_ns", "r", &[("client", "0".into())]);
        // 100 ms interval → fast window = 10 intervals, slow = 100.
        let out: SloHandle = Rc::new(RefCell::new(SloReport::default()));
        let mut m = SloMonitor::new(
            100 * MILLISECOND,
            reg.clone(),
            Some(50_000),
            Rc::clone(&out),
        );
        // 5 breaching intervals, then 10 clean ones: the fast window
        // (last 10) ends mostly clean while the slow window remembers.
        for i in 1..=15u64 {
            let lat = if i <= 5 { 500_000 } else { 5_000 };
            for _ in 0..50 {
                h.record(lat);
            }
            m.evaluate(i * 100 * MILLISECOND);
        }
        let r = out.borrow();
        assert_eq!(r.burn_fast_permille, 0, "fast window is all clean");
        assert_eq!(r.burn_slow_permille, 333, "slow window remembers 5/15");
    }

    #[test]
    fn without_sla_the_monitor_still_reports_percentiles() {
        let reg = Registry::new();
        let h = reg.histogram("client_read_latency_ns", "r", &[("client", "0".into())]);
        let (mut m, out) = monitor(&reg, None);
        for _ in 0..100 {
            h.record(1_000_000);
        }
        m.evaluate(MILLISECOND);
        let r = out.borrow();
        assert!(r.p999 >= 900_000);
        assert_eq!(r.breach_intervals, 0);
        assert_eq!(r.headroom(), None, "no SLA, no headroom");
        assert!(!r.breached());
    }
}
