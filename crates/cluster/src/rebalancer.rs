//! The autonomous rebalancer actor: closes the loop from load to
//! placement.
//!
//! Rocksteady's premise is that migration is cheap enough to use as a
//! routine load-management tool (§1). This actor is the missing
//! operator: on a fixed cadence it samples per-server load from the
//! shared stats handles (dispatch utilization — the resource that
//! saturates first — and op rates), reads tablet ownership from the
//! coordinator map and tail headroom from the live SLO monitor, asks a
//! pluggable [`PlacementPolicy`] for tablet moves, and issues the
//! admitted ones as ordinary `MigrateTablet` RPCs — the same path a
//! scripted `ControlCmd::Migrate` takes. [`AdmissionCaps`] bounds how
//! many migrations run at once per source, per target, and
//! cluster-wide, so reactive placement can never pile unbounded
//! migration load onto one participant.
//!
//! The actor is installed only when [`ClusterConfig::rebalancer`] is
//! set: a cluster built without one has an event schedule identical to
//! a build predating this module. With it set, everything remains
//! deterministic per seed — the tick cadence is fixed, every scrape
//! iterates servers in `ServerId` order, and policies are pure.
//!
//! [`ClusterConfig::rebalancer`]: crate::ClusterConfig::rebalancer

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use rocksteady_audit::{AuditKind, AuditSink};
use rocksteady_common::{MigrationId, Nanos, RpcId, ServerId, SECOND};
use rocksteady_proto::{Body, Envelope, Request, Response, TabletState};
use rocksteady_rebalancer::{
    AdmissionCaps, ClusterView, MoveInFlight, MoveProposal, PlacementPolicy, ServerLoad, TabletInfo,
};
use rocksteady_server::stats::StatsHandle;
use rocksteady_simnet::{Actor, Ctx, Directory, Event};

use crate::coordinator_actor::CoordHandle;
use crate::slo::SloHandle;

/// Rebalancer ids start here so they can never collide with the small
/// literal ids experiment scripts hand to `ControlCmd::Migrate`.
pub const REBALANCER_MIG_BASE: u64 = 1 << 32;

/// Configuration for the autonomous rebalancer.
#[derive(Debug, Clone)]
pub struct RebalancerConfig {
    /// Decision cadence (virtual time between load scrapes).
    pub interval: Nanos,
    /// Concurrency ceilings for admitted migrations.
    pub caps: AdmissionCaps,
    /// The placement strategy.
    pub policy: Box<dyn PlacementPolicy>,
}

impl Default for RebalancerConfig {
    fn default() -> Self {
        RebalancerConfig {
            interval: SECOND / 10,
            caps: AdmissionCaps::default(),
            policy: Box::new(rocksteady_rebalancer::GreedyLoadDelta::default()),
        }
    }
}

/// One move the rebalancer issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssuedMove {
    /// The id the rebalancer assigned (`>= REBALANCER_MIG_BASE`).
    pub id: MigrationId,
    /// When it was issued.
    pub at: Nanos,
    /// The admitted proposal.
    pub proposal: MoveProposal,
}

/// What the rebalancer has done so far, queryable between run segments.
#[derive(Debug, Clone, Default)]
pub struct RebalancerReport {
    /// Decision ticks taken.
    pub ticks: u64,
    /// Moves policies proposed (pre-admission).
    pub proposed: u64,
    /// Moves admitted and issued.
    pub admitted: u64,
    /// Issued moves that completed (target confirmed the migration).
    pub completed: u64,
    /// Issued moves the target refused or abandoned.
    pub rejected: u64,
    /// Every issued move, in issue order.
    pub moves: Vec<IssuedMove>,
}

/// Shared handle to the rebalancer's report.
pub type RebalancerHandle = Rc<RefCell<RebalancerReport>>;

/// The rebalancer actor. One per cluster, installed after the SLO
/// monitor when configured.
pub struct RebalancerActor {
    interval: Nanos,
    caps: AdmissionCaps,
    policy: Box<dyn PlacementPolicy>,
    coord: CoordHandle,
    dir: Directory,
    /// Per-server stats handles, sorted by `ServerId` (scrape order is
    /// part of the deterministic schedule).
    server_stats: Vec<(ServerId, StatsHandle)>,
    slo: SloHandle,
    out: RebalancerHandle,
    /// Cumulative counters at the previous tick, for windowed deltas.
    prev_dispatch_ns: HashMap<ServerId, u64>,
    prev_ops: HashMap<ServerId, u64>,
    /// Issued moves awaiting the target's final response.
    in_flight: HashMap<RpcId, IssuedMove>,
    next_rpc: u64,
    next_mig: u64,
    /// Protocol auditing (zero-cost when disarmed): proposals,
    /// admissions, and outcomes anchor the explain engine's causal
    /// chains.
    audit: AuditSink,
}

impl RebalancerActor {
    /// Creates the actor around the cluster's shared state.
    pub fn new(
        cfg: RebalancerConfig,
        coord: CoordHandle,
        dir: Directory,
        mut server_stats: Vec<(ServerId, StatsHandle)>,
        slo: SloHandle,
        out: RebalancerHandle,
        audit: AuditSink,
    ) -> Self {
        server_stats.sort_by_key(|(id, _)| *id);
        RebalancerActor {
            interval: cfg.interval,
            caps: cfg.caps,
            policy: cfg.policy,
            coord,
            dir,
            server_stats,
            slo,
            out,
            prev_dispatch_ns: HashMap::new(),
            prev_ops: HashMap::new(),
            in_flight: HashMap::new(),
            next_rpc: 1,
            next_mig: 0,
            audit,
        }
    }

    /// Samples per-server load over the last interval and assembles the
    /// policy's view of the cluster.
    fn scrape(&mut self, now: Nanos) -> ClusterView {
        let map = self.coord.borrow().tablet_map();
        let mut servers = Vec::with_capacity(self.server_stats.len());
        for (id, stats) in &self.server_stats {
            let busy = stats.dispatch_busy_ns.get();
            let ops = stats.ops_served.get();
            let prev_busy = self.prev_dispatch_ns.insert(*id, busy).unwrap_or(0);
            let prev_ops = self.prev_ops.insert(*id, ops).unwrap_or(0);
            let window = self.interval.max(1) as f64;
            let mut tablets: Vec<TabletInfo> = map
                .iter()
                .filter(|t| t.owner == *id && t.state == TabletState::Normal)
                .map(|t| TabletInfo {
                    table: t.table,
                    range: t.range,
                })
                .collect();
            tablets.sort_by_key(|t| (t.table, t.range.start));
            servers.push(ServerLoad {
                server: *id,
                dispatch_util: ((busy - prev_busy) as f64 / window).min(1.0),
                ops_per_sec: (ops - prev_ops) as f64 * 1e9 / window,
                tablets,
            });
        }
        // In-flight view: every coordinator lineage dep (covers scripted
        // migrations too) plus our own issued moves whose
        // MigrationStarting has not reached the coordinator yet.
        let mut seen: Vec<MigrationId> = Vec::new();
        let mut in_flight = Vec::new();
        for dep in self.coord.borrow().lineage_deps() {
            seen.push(dep.id);
            in_flight.push(MoveInFlight {
                source: dep.source,
                target: dep.target,
            });
        }
        for mv in self.in_flight.values() {
            if !seen.contains(&mv.id) {
                in_flight.push(MoveInFlight {
                    source: mv.proposal.source,
                    target: mv.proposal.target,
                });
            }
        }
        ClusterView {
            at: now,
            servers,
            slo_headroom: self.slo.borrow().headroom(),
            in_flight,
        }
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        let now = ctx.now();
        let view = self.scrape(now);
        let proposals = self.policy.propose(&view);
        self.out.borrow_mut().ticks += 1;
        self.out.borrow_mut().proposed += proposals.len() as u64;
        if self.audit.is_on() {
            for p in &proposals {
                self.audit.emit(
                    now,
                    AuditKind::RebalanceProposed {
                        source: p.source,
                        target: p.target,
                        table: p.table,
                        range: p.range,
                    },
                );
            }
        }
        let admitted = self.caps.admit(&view.in_flight, proposals);
        for p in admitted {
            self.next_mig += 1;
            let id = MigrationId(REBALANCER_MIG_BASE + self.next_mig);
            let rpc = RpcId(self.next_rpc);
            self.next_rpc += 1;
            let issued = IssuedMove {
                id,
                at: now,
                proposal: p,
            };
            self.in_flight.insert(rpc, issued);
            let mut out = self.out.borrow_mut();
            out.admitted += 1;
            out.moves.push(issued);
            drop(out);
            if self.audit.is_on() {
                self.audit.emit(
                    now,
                    AuditKind::RebalanceAdmitted {
                        id,
                        source: p.source,
                        target: p.target,
                        table: p.table,
                        range: p.range,
                    },
                );
            }
            ctx.send(
                self.dir.actor_of(p.target),
                Envelope::req(
                    rpc,
                    Request::MigrateTablet {
                        id,
                        table: p.table,
                        range: p.range,
                        source: p.source,
                    },
                ),
            );
        }
    }
}

impl Actor<Envelope> for RebalancerActor {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        ctx.timer(self.interval, 0);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Envelope>, event: Event<Envelope>) {
        match event {
            Event::Timer { .. } => {
                self.tick(ctx);
                ctx.timer(self.interval, 0);
            }
            Event::Message { payload, .. } => {
                // The target answers our MigrateTablet when the run
                // finishes (MigrateTabletOk) or fails (anything else);
                // either way the move stops counting against the caps.
                if let Some(mv) = self.in_flight.remove(&payload.rpc) {
                    let ok = matches!(payload.body, Body::Resp(Response::MigrateTabletOk));
                    let mut out = self.out.borrow_mut();
                    if ok {
                        out.completed += 1;
                    } else {
                        out.rejected += 1;
                    }
                    drop(out);
                    if self.audit.is_on() {
                        self.audit.emit(
                            ctx.now(),
                            AuditKind::RebalanceOutcome {
                                id: mv.id,
                                completed: ok,
                            },
                        );
                    }
                }
            }
        }
    }
}
