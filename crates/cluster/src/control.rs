//! The control actor: scripted experiment events.
//!
//! Experiments need things to happen at known virtual times — "start the
//! migration at t = 10 s", "kill the target at t = 15 s". The control
//! actor plays the client role the paper assigns to migration initiation
//! ("Migration is initiated by a client", §3) and the failure detector's
//! role for crash experiments.

use rocksteady_common::{HashRange, MigrationId, Nanos, RpcId, ServerId, TableId};
use rocksteady_proto::msg::BaselineOpts;
use rocksteady_proto::{Envelope, Request};
use rocksteady_simnet::{Actor, Ctx, Directory, Event};

/// One scripted command.
#[derive(Debug, Clone)]
pub enum ControlCmd {
    /// Send `MigrateTablet` to `target` (Rocksteady migration, §3).
    Migrate {
        /// Unique id for this migration run.
        id: MigrationId,
        /// Table to migrate.
        table: TableId,
        /// Range to migrate (must already be a tablet).
        range: HashRange,
        /// Current owner.
        source: ServerId,
        /// New owner.
        target: ServerId,
    },
    /// Send `MigrateTabletBaseline` to `source` (§2.3 baseline).
    MigrateBaseline {
        /// Table to migrate.
        table: TableId,
        /// Range to migrate.
        range: HashRange,
        /// Current owner (receives the RPC).
        source: ServerId,
        /// Destination.
        target: ServerId,
        /// Figure 5 phase levers.
        opts: BaselineOpts,
    },
    /// Kill a server and report the crash to the coordinator after a
    /// short detection delay.
    Kill {
        /// Victim.
        server: ServerId,
        /// Failure-detection delay before `ReportCrash` (RAMCloud detects
        /// in well under a second; default scripts use ~1 ms).
        detect_after: Nanos,
    },
    /// Internal: deliver the delayed crash report created by `Kill`.
    #[doc(hidden)]
    ReportOnly {
        /// Crashed server to report.
        server: ServerId,
        /// Pre-allocated RPC id.
        rpc: RpcId,
        /// Coordinator actor.
        coordinator: rocksteady_simnet::ActorId,
    },
}

/// A command scheduled at a virtual time.
#[derive(Debug, Clone)]
pub struct ControlEvent {
    /// When to fire.
    pub at: Nanos,
    /// What to do.
    pub cmd: ControlCmd,
}

/// The control actor.
pub struct ControlActor {
    dir: Directory,
    script: Vec<ControlEvent>,
    next_rpc: u64,
}

impl ControlActor {
    /// Creates a control actor with a script (sorted by the builder).
    pub fn new(dir: Directory, script: Vec<ControlEvent>) -> Self {
        ControlActor {
            dir,
            script,
            next_rpc: 1,
        }
    }

    fn alloc_rpc(&mut self) -> RpcId {
        let id = RpcId(self.next_rpc);
        self.next_rpc += 1;
        id
    }

    fn fire(&mut self, ctx: &mut Ctx<'_, Envelope>, idx: usize) {
        let cmd = self.script[idx].cmd.clone();
        match cmd {
            ControlCmd::Migrate {
                id,
                table,
                range,
                source,
                target,
            } => {
                let rpc = self.alloc_rpc();
                let dst = self.dir.actor_of(target);
                ctx.send(
                    dst,
                    Envelope::req(
                        rpc,
                        Request::MigrateTablet {
                            id,
                            table,
                            range,
                            source,
                        },
                    ),
                );
            }
            ControlCmd::MigrateBaseline {
                table,
                range,
                source,
                target,
                opts,
            } => {
                let rpc = self.alloc_rpc();
                let dst = self.dir.actor_of(source);
                ctx.send(
                    dst,
                    Envelope::req(
                        rpc,
                        Request::MigrateTabletBaseline {
                            table,
                            range,
                            target,
                            opts,
                        },
                    ),
                );
            }
            ControlCmd::Kill {
                server,
                detect_after,
            } => {
                ctx.kill(self.dir.actor_of(server));
                // Report after the detection delay via a timer encoded as
                // a synthetic one-shot script entry.
                let rpc = self.alloc_rpc();
                let _ = detect_after; // the timer below carries the delay
                let coordinator = self.dir.coordinator;
                // Model detection: delay the report.
                self.script.push(ControlEvent {
                    at: ctx.now() + detect_after,
                    cmd: ControlCmd::ReportOnly {
                        server,
                        rpc,
                        coordinator,
                    },
                });
                ctx.timer(detect_after, (self.script.len() - 1) as u64);
            }
            ControlCmd::ReportOnly {
                server,
                rpc,
                coordinator,
            } => {
                ctx.send(
                    coordinator,
                    Envelope::req(rpc, Request::ReportCrash { server }),
                );
            }
        }
    }
}

impl Actor<Envelope> for ControlActor {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        for (i, ev) in self.script.iter().enumerate() {
            ctx.timer(ev.at, i as u64);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Envelope>, event: Event<Envelope>) {
        if let Event::Timer { token } = event {
            let idx = token as usize;
            if idx < self.script.len() {
                self.fire(ctx, idx);
            }
        }
    }
}
