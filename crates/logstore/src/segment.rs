//! Fixed-size append-only log segments.
//!
//! A segment is the unit of everything in RAMCloud's storage design: logs
//! grow by whole segments, backups replicate whole segments, the cleaner
//! reclaims whole segments, and side logs are independent chains of
//! segments (§2.3, §3.1.3).
//!
//! Concurrency contract: appends are serialized internally (one appender
//! at a time — in RAMCloud the log head has a single writer) and become
//! visible to readers through a release-store of the committed length.
//! Readers may run concurrently with an append and only ever observe
//! fully-written entries. Closed segments are immutable forever, which is
//! what lets migration pulls and replication ship references to segment
//! memory without copies (§3.2).

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::entry::{self, EntryKind, EntryView, ParseError};

/// `Bytes` owner exposing a segment's committed prefix.
///
/// The length is captured at construction: `committed` only grows, so the
/// captured prefix is immutable for the owner's whole lifetime, which is
/// what `Bytes` requires of its backing storage.
struct CommittedWindow {
    segment: Arc<Segment>,
    len: usize,
}

impl AsRef<[u8]> for CommittedWindow {
    fn as_ref(&self) -> &[u8] {
        &self.segment.committed_bytes()[..self.len]
    }
}

/// A fixed-capacity, append-only byte region holding serialized entries.
pub struct Segment {
    id: u64,
    base: *mut u8,
    capacity: usize,
    /// Bytes published to readers. Monotonic; stored with `Release` after
    /// the bytes below it are fully written, loaded with `Acquire`.
    committed: AtomicUsize,
    /// Serializes appenders; holds the reservation cursor (== committed
    /// between appends, since appends publish before releasing the lock).
    append_lock: Mutex<()>,
    closed: AtomicBool,
    /// Bytes belonging to entries that are still live (not superseded).
    /// The owning log decrements this as entries die; the cleaner reads
    /// it to pick victims.
    live_bytes: AtomicU64,
    /// Number of entries appended.
    entries: AtomicU64,
}

// SAFETY: the raw buffer is owned exclusively by this Segment (allocated
// in `new`, freed in `drop`, never aliased externally). All mutation goes
// through `append_*`, which serializes writers behind `append_lock` and
// publishes bytes with a release store of `committed`; readers only
// dereference bytes below an acquire-load of `committed`. Therefore
// sending or sharing a Segment across threads cannot produce a data race.
unsafe impl Send for Segment {}
// SAFETY: see the `Send` justification; shared access is race-free by the
// publication protocol above.
unsafe impl Sync for Segment {}

impl Segment {
    /// Allocates a zeroed segment of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or allocation fails.
    pub fn new(id: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity segment");
        let layout = Layout::array::<u8>(capacity).expect("segment layout");
        // SAFETY: `layout` has non-zero size (capacity > 0) and valid
        // alignment for u8.
        let base = unsafe { alloc_zeroed(layout) };
        assert!(!base.is_null(), "segment allocation failed");
        Segment {
            id,
            base,
            capacity,
            committed: AtomicUsize::new(0),
            append_lock: Mutex::new(()),
            closed: AtomicBool::new(false),
            live_bytes: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        }
    }

    /// This segment's id, unique within its owning log.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Total byte capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently published to readers.
    pub fn committed(&self) -> usize {
        self.committed.load(Ordering::Acquire)
    }

    /// Remaining append space, zero once closed.
    pub fn free_space(&self) -> usize {
        if self.is_closed() {
            0
        } else {
            self.capacity - self.committed()
        }
    }

    /// Marks the segment immutable; future appends fail.
    pub fn close(&self) {
        // Take the append lock so a concurrent append either completes
        // (and is published) before the close or observes `closed`.
        let _guard = self.append_lock.lock();
        self.closed.store(true, Ordering::Release);
    }

    /// Whether the segment has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Bytes attributed to live entries (maintained by the owning log).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// Number of entries appended so far.
    pub fn entry_count(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// Fraction of committed bytes that are still live, in `[0, 1]`.
    /// The cleaner's victim-selection metric.
    pub fn utilization(&self) -> f64 {
        let committed = self.committed();
        if committed == 0 {
            // An empty open segment is "fully utilized": nothing to clean.
            return 1.0;
        }
        self.live_bytes() as f64 / committed as f64
    }

    /// Declares `bytes` of this segment's entries dead (superseded or
    /// deleted). Saturates at zero.
    pub fn mark_dead(&self, bytes: u64) {
        let mut cur = self.live_bytes.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.live_bytes.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Appends a serialized entry; returns its byte offset, or `None` if
    /// the segment is closed or lacks space.
    #[allow(clippy::too_many_arguments)]
    pub fn append(
        &self,
        kind: EntryKind,
        table_id: u64,
        key_hash: u64,
        version: u64,
        key: &[u8],
        value: &[u8],
    ) -> Option<u32> {
        let len = entry::serialized_len(key.len(), value.len());
        self.append_with(len, |buf| {
            entry::write_entry(buf, kind, table_id, key_hash, version, key, value);
        })
    }

    /// Appends pre-serialized entry bytes verbatim (used when adopting
    /// replicated or recovered entries whose serialized form is already
    /// checksummed). Returns the byte offset.
    pub fn append_raw(&self, bytes: &[u8]) -> Option<u32> {
        self.append_with(bytes.len(), |buf| buf.copy_from_slice(bytes))
    }

    fn append_with(&self, len: usize, fill: impl FnOnce(&mut [u8])) -> Option<u32> {
        let _guard = self.append_lock.lock();
        if self.closed.load(Ordering::Relaxed) {
            return None;
        }
        let offset = self.committed.load(Ordering::Relaxed);
        if offset + len > self.capacity {
            return None;
        }
        // SAFETY: `offset..offset + len` is within the allocation
        // (bounds-checked above), no reader dereferences bytes at or above
        // `committed` (== offset), and no other writer exists while we
        // hold `append_lock`; hence this mutable slice is unaliased.
        let buf = unsafe { std::slice::from_raw_parts_mut(self.base.add(offset), len) };
        fill(buf);
        self.live_bytes.fetch_add(len as u64, Ordering::Relaxed);
        self.entries.fetch_add(1, Ordering::Relaxed);
        // Publish: everything below offset + len is now fully written.
        self.committed.store(offset + len, Ordering::Release);
        Some(offset as u32)
    }

    /// All published bytes, as an immutable slice.
    pub fn committed_bytes(&self) -> &[u8] {
        let len = self.committed();
        // SAFETY: bytes below `committed` (acquire-loaded) were fully
        // written before the corresponding release store and are never
        // mutated again.
        unsafe { std::slice::from_raw_parts(self.base, len) }
    }

    /// All published bytes as ref-counted [`Bytes`] aliasing this
    /// segment's backing buffer — zero-copy.
    ///
    /// The returned `Bytes` (and every window `slice`d out of it) holds
    /// this segment's `Arc`, so the memory stays valid even if the owning
    /// log drops the segment (cleaner relocation, migration teardown)
    /// while slices are still in flight. Slicing is a refcount bump, not
    /// an allocation, so a whole Pull response can alias one window.
    pub fn committed_as_bytes(self: &Arc<Self>) -> Bytes {
        Bytes::from_owner(CommittedWindow {
            segment: Arc::clone(self),
            len: self.committed(),
        })
    }

    /// Parses the entry starting at `offset`.
    ///
    /// Returns the view and its serialized length. Fails with
    /// [`ParseError::Truncated`] if `offset` is at or past the committed
    /// region (there is no entry there yet).
    pub fn entry_at(&self, offset: u32) -> Result<(EntryView<'_>, usize), ParseError> {
        let bytes = self.committed_bytes();
        let offset = offset as usize;
        if offset >= bytes.len() {
            return Err(ParseError::Truncated);
        }
        entry::parse(&bytes[offset..])
    }

    /// Parses the entry at `offset` without re-verifying its checksum
    /// (see [`entry::parse_trusted`]): for reads of a master's own
    /// committed log memory, whose entries were checksummed when
    /// [`Segment::append`] serialized them. Bytes of foreign origin must
    /// go through [`Segment::entry_at`].
    pub fn entry_at_trusted(&self, offset: u32) -> Result<(EntryView<'_>, usize), ParseError> {
        let bytes = self.committed_bytes();
        let offset = offset as usize;
        if offset >= bytes.len() {
            return Err(ParseError::Truncated);
        }
        entry::parse_trusted(&bytes[offset..])
    }

    /// Iterates all committed entries in append order as
    /// `(offset, EntryView)` pairs.
    ///
    /// Used by the baseline migration's log scan (§2.3), the cleaner, and
    /// crash recovery.
    pub fn iter_entries(&self) -> SegmentIter<'_> {
        SegmentIter {
            bytes: self.committed_bytes(),
            offset: 0,
        }
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        let layout = Layout::array::<u8>(self.capacity).expect("segment layout");
        // SAFETY: `base` was allocated in `new` with exactly this layout
        // and is freed exactly once (drop).
        unsafe { dealloc(self.base, layout) };
    }
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("id", &self.id)
            .field("capacity", &self.capacity)
            .field("committed", &self.committed())
            .field("closed", &self.is_closed())
            .field("live_bytes", &self.live_bytes())
            .field("entries", &self.entry_count())
            .finish()
    }
}

/// Iterator over a segment's committed entries.
pub struct SegmentIter<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Iterator for SegmentIter<'a> {
    type Item = (u32, EntryView<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.offset >= self.bytes.len() {
            return None;
        }
        match entry::parse(&self.bytes[self.offset..]) {
            Ok((view, len)) => {
                let at = self.offset as u32;
                self.offset += len;
                Some((at, view))
            }
            // A parse failure means we walked off the end of the valid
            // entries (or hit corruption); either way iteration stops.
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn append_and_read_back() {
        let seg = Segment::new(1, 4096);
        let off = seg
            .append(EntryKind::Object, 1, 0xaa, 1, b"key", b"value")
            .unwrap();
        assert_eq!(off, 0);
        let (view, _) = seg.entry_at(off).unwrap();
        assert_eq!(view.key, b"key");
        assert_eq!(view.value, b"value");
        assert_eq!(seg.entry_count(), 1);
    }

    #[test]
    fn append_until_full() {
        let seg = Segment::new(1, 256);
        let mut appended = 0;
        while seg
            .append(EntryKind::Object, 1, 0, 1, b"k", b"0123456789")
            .is_some()
        {
            appended += 1;
        }
        assert!(appended > 0);
        assert!(seg.free_space() < entry::serialized_len(1, 10));
        // Committed bytes all parse.
        assert_eq!(seg.iter_entries().count(), appended);
    }

    #[test]
    fn closed_segment_rejects_appends() {
        let seg = Segment::new(1, 4096);
        seg.append(EntryKind::Object, 1, 0, 1, b"k", b"v").unwrap();
        seg.close();
        assert!(seg.is_closed());
        assert_eq!(seg.free_space(), 0);
        assert!(seg.append(EntryKind::Object, 1, 0, 2, b"k", b"v").is_none());
        // Existing data still readable.
        assert_eq!(seg.iter_entries().count(), 1);
    }

    #[test]
    fn live_byte_accounting() {
        let seg = Segment::new(1, 4096);
        seg.append(EntryKind::Object, 1, 0, 1, b"k", b"v").unwrap();
        let len = entry::serialized_len(1, 1) as u64;
        assert_eq!(seg.live_bytes(), len);
        assert!((seg.utilization() - 1.0).abs() < 1e-12);
        seg.mark_dead(len);
        assert_eq!(seg.live_bytes(), 0);
        assert_eq!(seg.utilization(), 0.0);
        // Saturates rather than underflowing.
        seg.mark_dead(1_000_000);
        assert_eq!(seg.live_bytes(), 0);
    }

    #[test]
    fn empty_open_segment_reports_full_utilization() {
        let seg = Segment::new(1, 128);
        assert_eq!(seg.utilization(), 1.0);
    }

    #[test]
    fn entry_at_bad_offset() {
        let seg = Segment::new(1, 4096);
        assert!(seg.entry_at(0).is_err());
        seg.append(EntryKind::Object, 1, 0, 1, b"k", b"v").unwrap();
        assert!(seg.entry_at(3).is_err()); // mid-entry: checksum fails
        assert!(seg.entry_at(10_000).is_err());
    }

    #[test]
    fn iterates_in_append_order() {
        let seg = Segment::new(1, 4096);
        for i in 0..10u64 {
            seg.append(EntryKind::Object, 1, i, i, &i.to_le_bytes(), b"v")
                .unwrap();
        }
        let hashes: Vec<u64> = seg.iter_entries().map(|(_, v)| v.key_hash).collect();
        assert_eq!(hashes, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn append_raw_roundtrip() {
        let src = Segment::new(1, 4096);
        src.append(EntryKind::Object, 3, 5, 7, b"kk", b"vv")
            .unwrap();
        let dst = Segment::new(2, 4096);
        dst.append_raw(src.committed_bytes()).unwrap();
        let (view, _) = dst.entry_at(0).unwrap();
        assert_eq!(view.table_id, 3);
        assert_eq!(view.key, b"kk");
    }

    #[test]
    fn concurrent_append_and_read() {
        // Real-thread smoke test of the publication protocol: readers
        // must only ever see fully-written entries.
        let seg = Arc::new(Segment::new(1, 1 << 20));
        let writer = {
            let seg = Arc::clone(&seg);
            std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    if seg
                        .append(EntryKind::Object, 1, i, i, &i.to_le_bytes(), b"vvvv")
                        .is_none()
                    {
                        break;
                    }
                }
            })
        };
        let reader = {
            let seg = Arc::clone(&seg);
            std::thread::spawn(move || {
                let mut max_seen = 0usize;
                for _ in 0..200 {
                    let n = seg.iter_entries().count();
                    assert!(n >= max_seen, "entry count regressed");
                    max_seen = n;
                    for (_, view) in seg.iter_entries() {
                        assert_eq!(view.value, b"vvvv");
                    }
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        // Everything the writer appended parses cleanly.
        for (_, view) in seg.iter_entries() {
            assert_eq!(view.table_id, 1);
        }
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        Segment::new(1, 0);
    }
}
