//! The log cleaner: cost-benefit segment compaction.
//!
//! RAMCloud sustains 80–90% memory utilization by continuously relocating
//! the live entries out of sparsely-utilized segments and reclaiming the
//! segments ([Rumble et al., FAST '14]; §2.3 of the Rocksteady paper).
//! Rocksteady's *lazy partitioning* argument leans on this component: the
//! cleaner is free to physically rearrange records at any time precisely
//! because nothing (including migration) depends on physical layout — so
//! this reproduction implements it and tests that migration survives
//! concurrent cleaning (`cleaner_interaction` integration test).
//!
//! The cleaner cannot know on its own whether an entry is live (only the
//! hash table knows if a log reference is current), so callers supply a
//! [`Relocator`] that adjudicates each entry and learns the new location
//! of anything that moves.

use crate::entry::EntryView;
use crate::log::{Log, LogError, LogRef};

/// Decision for one entry in a segment being cleaned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relocation {
    /// The entry is live: relocate it and report the new reference.
    Keep,
    /// The entry is dead (superseded, deleted, or migrated away): drop it.
    Drop,
}

/// Liveness oracle + reference updater supplied by the log's owner
/// (in practice, the master wrapping its hash table).
pub trait Relocator {
    /// Returns whether the entry at `old` is still live.
    fn disposition(&mut self, view: &EntryView<'_>, old: LogRef) -> Relocation;

    /// Called after a kept entry has been re-appended at `new`; the
    /// implementation must repoint its references (hash table, indexes)
    /// from `old` to `new` before cleaning continues.
    fn relocated(&mut self, view: &EntryView<'_>, old: LogRef, new: LogRef);
}

/// Statistics from one cleaning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CleanStats {
    /// Segments reclaimed.
    pub segments_cleaned: usize,
    /// Bytes of segment capacity returned to the system.
    pub bytes_reclaimed: u64,
    /// Live entries moved to the head of the log.
    pub entries_relocated: u64,
    /// Dead entries discarded.
    pub entries_dropped: u64,
    /// Serialized bytes of relocated entries (the cleaner's write cost).
    pub bytes_relocated: u64,
}

/// The cleaner itself; stateless apart from its policy knobs.
#[derive(Debug, Clone)]
pub struct Cleaner {
    /// Segments at or above this live fraction are never cleaned;
    /// cost-benefit favors the emptiest segments first.
    pub utilization_threshold: f64,
    /// Upper bound on segments reclaimed per [`Cleaner::clean_once`] call,
    /// so cleaning interleaves with foreground work in small steps.
    pub max_segments_per_pass: usize,
}

impl Default for Cleaner {
    fn default() -> Self {
        Cleaner {
            utilization_threshold: 0.9,
            max_segments_per_pass: 1,
        }
    }
}

impl Cleaner {
    /// Runs one cleaning pass over `log`.
    ///
    /// Selects up to `max_segments_per_pass` closed segments with the
    /// lowest utilization below the threshold, relocates their live
    /// entries to the head of the log (via the normal append path), and
    /// removes the segments. Returns `None` when nothing qualified.
    ///
    /// # Errors
    ///
    /// Propagates [`LogError`] if relocation appends fail (e.g. the
    /// segment budget is exhausted — the caller should free memory or
    /// grow the budget and retry).
    pub fn clean_once(
        &self,
        log: &Log,
        relocator: &mut dyn Relocator,
    ) -> Result<Option<CleanStats>, LogError> {
        let mut candidates: Vec<_> = log
            .segments_snapshot()
            .into_iter()
            .filter(|s| s.is_closed() && s.utilization() < self.utilization_threshold)
            .collect();
        if candidates.is_empty() {
            return Ok(None);
        }
        // Cost-benefit (simplified): clean the emptiest segments first —
        // they return the most memory per byte of relocation work.
        candidates.sort_by(|a, b| {
            a.utilization()
                .partial_cmp(&b.utilization())
                .expect("utilization is never NaN")
        });
        candidates.truncate(self.max_segments_per_pass);

        let mut stats = CleanStats::default();
        for seg in candidates {
            for (offset, view) in seg.iter_entries() {
                let old = LogRef {
                    segment: seg.id(),
                    offset,
                };
                match relocator.disposition(&view, old) {
                    Relocation::Drop => stats.entries_dropped += 1,
                    Relocation::Keep => {
                        let new = log.append(
                            view.kind,
                            view.table_id,
                            view.key_hash,
                            view.version,
                            view.key,
                            view.value,
                        )?;
                        relocator.relocated(&view, old, new);
                        stats.entries_relocated += 1;
                        stats.bytes_relocated += view.serialized_len() as u64;
                    }
                }
            }
            if log.remove_segment(seg.id()).is_some() {
                stats.segments_cleaned += 1;
                stats.bytes_reclaimed += seg.capacity() as u64;
            }
        }
        Ok(Some(stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryKind;
    use crate::log::LogConfig;
    use std::collections::HashMap;

    /// A minimal stand-in for the master's hash table.
    struct MapRelocator {
        current: HashMap<u64, LogRef>,
    }

    impl MapRelocator {
        fn new() -> Self {
            MapRelocator {
                current: HashMap::new(),
            }
        }
    }

    impl Relocator for MapRelocator {
        fn disposition(&mut self, view: &EntryView<'_>, old: LogRef) -> Relocation {
            if self.current.get(&view.key_hash) == Some(&old) {
                Relocation::Keep
            } else {
                Relocation::Drop
            }
        }

        fn relocated(&mut self, view: &EntryView<'_>, _old: LogRef, new: LogRef) {
            self.current.insert(view.key_hash, new);
        }
    }

    fn filled_log() -> (Log, MapRelocator) {
        let log = Log::new(LogConfig {
            segment_bytes: 512,
            max_segments: None,
        });
        let mut reloc = MapRelocator::new();
        // Write each key twice: the first copy of each is dead.
        for round in 0..2u64 {
            for i in 0..40u64 {
                let r = log
                    .append(
                        EntryKind::Object,
                        1,
                        i,
                        round + 1,
                        &i.to_le_bytes(),
                        b"0123456789",
                    )
                    .unwrap();
                if let Some(old) = reloc.current.insert(i, r) {
                    log.mark_dead(old, 53);
                }
            }
        }
        (log, reloc)
    }

    #[test]
    fn nothing_to_clean_on_fresh_log() {
        let log = Log::new(LogConfig::default());
        log.append(EntryKind::Object, 1, 0, 1, b"k", b"v").unwrap();
        let mut reloc = MapRelocator::new();
        let out = Cleaner::default().clean_once(&log, &mut reloc).unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn cleaning_reclaims_segments_and_preserves_live_data() {
        let (log, mut reloc) = filled_log();
        let before = log.stats();
        let cleaner = Cleaner {
            utilization_threshold: 0.95,
            max_segments_per_pass: 100,
        };
        let stats = cleaner
            .clean_once(&log, &mut reloc)
            .unwrap()
            .expect("should clean something");
        assert!(stats.segments_cleaned > 0);
        assert!(stats.entries_dropped > 0, "dead first-copies must drop");
        let after = log.stats();
        assert!(after.segments <= before.segments);
        // Every live key still resolves to its latest version.
        for (hash, r) in &reloc.current {
            let e = log.entry(*r).unwrap_or_else(|| panic!("lost key {hash}"));
            assert_eq!(e.version, 2, "key {hash} resolved to stale version");
        }
        assert_eq!(reloc.current.len(), 40);
    }

    #[test]
    fn repeated_cleaning_converges() {
        let (log, mut reloc) = filled_log();
        let cleaner = Cleaner {
            utilization_threshold: 0.95,
            max_segments_per_pass: 1,
        };
        let mut passes = 0;
        while cleaner.clean_once(&log, &mut reloc).unwrap().is_some() {
            passes += 1;
            assert!(passes < 100, "cleaner not converging");
        }
        for r in reloc.current.values() {
            assert!(log.entry(*r).is_some());
        }
    }

    #[test]
    fn threshold_zero_cleans_nothing() {
        let (log, mut reloc) = filled_log();
        let cleaner = Cleaner {
            utilization_threshold: 0.0,
            max_segments_per_pass: 10,
        };
        assert!(cleaner.clean_once(&log, &mut reloc).unwrap().is_none());
    }

    #[test]
    fn pass_limit_respected() {
        let (log, mut reloc) = filled_log();
        let cleaner = Cleaner {
            utilization_threshold: 0.95,
            max_segments_per_pass: 1,
        };
        let stats = cleaner.clean_once(&log, &mut reloc).unwrap().unwrap();
        assert_eq!(stats.segments_cleaned, 1);
    }
}
