//! CRC32C (Castagnoli) checksums for log-entry integrity.
//!
//! RAMCloud checksums every log entry so that replay (crash recovery and
//! migration both replay log records) can detect corruption; §4.5 calls
//! out checksum computation as part of the per-record migration cost. This
//! is a table-driven software CRC32C, built at compile time.

/// The CRC32C (Castagnoli) generator polynomial, reflected.
const POLY: u32 = 0x82f6_3b78;

/// One 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes the CRC32C of `data` in one shot.
///
/// # Examples
///
/// ```
/// use rocksteady_logstore::crc::crc32c;
/// // Standard test vector: CRC32C("123456789") = 0xE3069283.
/// assert_eq!(crc32c(b"123456789"), 0xE306_9283);
/// ```
pub fn crc32c(data: &[u8]) -> u32 {
    update(0xffff_ffff, data) ^ 0xffff_ffff
}

/// Incremental CRC32C: feed successive chunks through [`Crc32c`].
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32c { state: 0xffff_ffff }
    }

    /// Feeds a chunk into the checksum.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.state = update(self.state, data);
        self
    }

    /// Finalizes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

fn update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xff) as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // From RFC 3720 / common CRC32C test suites.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, 20, data.len()] {
            let mut inc = Crc32c::new();
            inc.update(&data[..split]).update(&data[split..]);
            assert_eq!(inc.finish(), crc32c(data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = *b"some log entry payload bytes";
        let clean = crc32c(&data);
        for byte in 0..data.len() {
            data[byte] ^= 0x10;
            assert_ne!(crc32c(&data), clean, "flip at byte {byte} undetected");
            data[byte] ^= 0x10;
        }
    }
}
