//! CRC32C (Castagnoli) checksums for log-entry integrity.
//!
//! RAMCloud checksums every log entry so that replay (crash recovery and
//! migration both replay log records) can detect corruption; §4.5 calls
//! out checksum computation as part of the per-record migration cost.
//! Uses the x86 `crc32` instruction (SSE4.2, detected at runtime) when
//! available, falling back to a table-driven slice-by-8 implementation
//! built at compile time. Both compute the identical CRC32C value.

/// The CRC32C (Castagnoli) generator polynomial, reflected.
const POLY: u32 = 0x82f6_3b78;

/// Eight 256-entry lookup tables for slice-by-8, computed at compile
/// time. `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k]`
/// advances a byte through `k` additional zero bytes, which is what lets
/// the update loop fold eight input bytes per iteration instead of one.
/// The polynomial (and therefore every checksum value) is unchanged.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// Computes the CRC32C of `data` in one shot.
///
/// # Examples
///
/// ```
/// use rocksteady_logstore::crc::crc32c;
/// // Standard test vector: CRC32C("123456789") = 0xE3069283.
/// assert_eq!(crc32c(b"123456789"), 0xE306_9283);
/// ```
pub fn crc32c(data: &[u8]) -> u32 {
    update(0xffff_ffff, data) ^ 0xffff_ffff
}

/// Incremental CRC32C: feed successive chunks through [`Crc32c`].
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32c { state: 0xffff_ffff }
    }

    /// Feeds a chunk into the checksum.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.state = update(self.state, data);
        self
    }

    /// Finalizes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

fn update(state: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: the sse4.2 feature check above guarantees the `crc32`
        // instructions used inside are supported.
        return unsafe { update_hw(state, data) };
    }
    update_sw(state, data)
}

/// Hardware CRC32C via the SSE4.2 `crc32` instruction (which implements
/// exactly the Castagnoli polynomial, including bit reflection).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn update_hw(state: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut chunks = data.chunks_exact(8);
    let mut wide = state as u64;
    for chunk in &mut chunks {
        wide = _mm_crc32_u64(wide, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    let mut state = wide as u32;
    for &b in chunks.remainder() {
        state = _mm_crc32_u8(state, b);
    }
    state
}

fn update_sw(mut state: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        // Unwraps are fine: `chunks_exact(8)` always yields 8 bytes.
        let lo = u32::from_le_bytes(chunk[..4].try_into().unwrap()) ^ state;
        let hi = u32::from_le_bytes(chunk[4..].try_into().unwrap());
        state = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xff) as usize]
            ^ TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ TABLES[0][((state ^ b as u32) & 0xff) as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // From RFC 3720 / common CRC32C test suites.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, 20, data.len()] {
            let mut inc = Crc32c::new();
            inc.update(&data[..split]).update(&data[split..]);
            assert_eq!(inc.finish(), crc32c(data), "split at {split}");
        }
    }

    #[test]
    fn hardware_and_table_paths_agree() {
        let data: Vec<u8> = (0..1021u32).map(|i| (i * 7 + 3) as u8).collect();
        for len in [0, 1, 7, 8, 9, 63, 64, 65, 1021] {
            let sw = update_sw(0xffff_ffff, &data[..len]) ^ 0xffff_ffff;
            assert_eq!(crc32c(&data[..len]), sw, "len {len}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = *b"some log entry payload bytes";
        let clean = crc32c(&data);
        for byte in 0..data.len() {
            data[byte] ^= 0x10;
            assert_ne!(crc32c(&data), clean, "flip at byte {byte} undetected");
            data[byte] ^= 0x10;
        }
    }
}
