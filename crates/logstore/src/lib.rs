//! RAMCloud-style log-structured in-memory storage.
//!
//! RAMCloud keeps exactly one copy of every object in DRAM, organized as a
//! single append-only *log* divided into fixed-size *segments* (§2,
//! [Rumble et al., FAST '14]). The log is never checkpointed; a cleaner
//! incrementally compacts low-utilization segments so the system sustains
//! 80–90% memory utilization. Everything Rocksteady does — pulls that walk
//! the hash table and gather scattered log entries, parallel replay into
//! *side logs*, lineage over recovery-log tails — happens against this
//! representation, so this crate implements it for real:
//!
//! - [`entry`]: the on-log record format (objects, tombstones, side-log
//!   commit records) with CRC32C integrity checksums.
//! - [`segment`]: fixed-size append-only buffers with lock-free reader
//!   visibility (appends publish with a release store; readers acquire).
//! - [`log`]: the master log — an open head segment plus closed segments,
//!   per-segment live-byte accounting, entry lookup by [`LogRef`].
//! - [`sidelog`]: per-core side logs (§3.1.3) that replay workers append
//!   into without contention, later committed into the main log.
//! - [`cleaner`]: the cost-benefit log cleaner that relocates live entries
//!   out of sparse segments and returns the memory.
//!
//! All structures are thread-safe and usable standalone; the simulator
//! drives them single-threaded under virtual time while Criterion
//! micro-benches drive them with real threads.

pub mod cleaner;
pub mod crc;
pub mod entry;
pub mod log;
pub mod segment;
pub mod sidelog;

pub use cleaner::{CleanStats, Cleaner, Relocation, Relocator};
pub use entry::{EntryKind, EntryView, OwnedEntry, ENTRY_HEADER_BYTES};
pub use log::{EntrySlices, Log, LogConfig, LogError, LogRef, LogStats, SliceReader, WindowCache};
pub use segment::Segment;
pub use sidelog::{SideLog, SideLogAppender};
