//! The on-log record format.
//!
//! Every record in a master's log — live objects, tombstones marking
//! deletions, and the small metadata records that commit a side log into
//! the main log (§3.1.3) — shares one self-describing header so that any
//! consumer (read path, migration pulls, replay, crash recovery, the
//! cleaner) can walk raw segment bytes.
//!
//! Layout (little-endian, `ENTRY_HEADER_BYTES` = 35):
//!
//! ```text
//! +------+----------+----------+---------+---------+-----------+----------+
//! | kind | table_id | key_hash | version | key_len | value_len | checksum |
//! |  u8  |   u64    |   u64    |   u64   |   u16   |    u32    |   u32    |
//! +------+----------+----------+---------+---------+-----------+----------+
//! | key bytes … | value bytes …                                           |
//! +-------------------------------------------------------------------+
//! ```
//!
//! The checksum is CRC32C over the header (with the checksum field zeroed)
//! followed by key and value bytes. The key hash is stored rather than
//! recomputed so replay and pulls avoid rehashing (§4.5 measures hashing
//! as a real per-record cost; the simulator charges it where RAMCloud
//! would actually pay it).

use crate::crc::Crc32c;

/// Fixed size of the serialized entry header, in bytes.
pub const ENTRY_HEADER_BYTES: usize = 35;

/// What a log entry represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EntryKind {
    /// A live object (key + value).
    Object = 1,
    /// A deletion marker: key with no value; `version` is the version the
    /// delete superseded. Needed so replay doesn't resurrect old values.
    Tombstone = 2,
    /// Commits a side log into the main log: `value` holds the serialized
    /// list of adopted segment ids (§3.1.3).
    SideLogCommit = 3,
}

impl EntryKind {
    /// Parses a kind byte.
    pub fn from_u8(v: u8) -> Option<EntryKind> {
        match v {
            1 => Some(EntryKind::Object),
            2 => Some(EntryKind::Tombstone),
            3 => Some(EntryKind::SideLogCommit),
            _ => None,
        }
    }
}

/// A parsed, borrowed view of one log entry.
///
/// Produced by [`parse`] (and by segment/log accessors); borrows the
/// underlying segment memory, so it is cheap and copy-free — the paper's
/// design operates on references into the log wherever possible (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryView<'a> {
    /// Entry kind.
    pub kind: EntryKind,
    /// Owning table.
    pub table_id: u64,
    /// Primary-key hash (stored, not recomputed).
    pub key_hash: u64,
    /// Object version; monotonically increasing per key.
    pub version: u64,
    /// Primary key bytes.
    pub key: &'a [u8],
    /// Value bytes (empty for tombstones).
    pub value: &'a [u8],
}

impl<'a> EntryView<'a> {
    /// Total serialized length of this entry in the log.
    pub fn serialized_len(&self) -> usize {
        ENTRY_HEADER_BYTES + self.key.len() + self.value.len()
    }

    /// Copies this view into an [`OwnedEntry`].
    pub fn to_owned(&self) -> OwnedEntry {
        OwnedEntry {
            kind: self.kind,
            table_id: self.table_id,
            key_hash: self.key_hash,
            version: self.version,
            key: self.key.to_vec(),
            value: self.value.to_vec(),
        }
    }
}

/// An owned copy of a log entry (used where data crosses the simulated
/// network, e.g. pull responses and replication payloads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedEntry {
    /// Entry kind.
    pub kind: EntryKind,
    /// Owning table.
    pub table_id: u64,
    /// Primary-key hash.
    pub key_hash: u64,
    /// Object version.
    pub version: u64,
    /// Primary key bytes.
    pub key: Vec<u8>,
    /// Value bytes.
    pub value: Vec<u8>,
}

impl OwnedEntry {
    /// Borrows this entry as a view.
    pub fn view(&self) -> EntryView<'_> {
        EntryView {
            kind: self.kind,
            table_id: self.table_id,
            key_hash: self.key_hash,
            version: self.version,
            key: &self.key,
            value: &self.value,
        }
    }

    /// Total serialized length of this entry in the log.
    pub fn serialized_len(&self) -> usize {
        ENTRY_HEADER_BYTES + self.key.len() + self.value.len()
    }
}

/// Computes the serialized length of an entry with the given key/value
/// sizes, without constructing it.
pub fn serialized_len(key_len: usize, value_len: usize) -> usize {
    ENTRY_HEADER_BYTES + key_len + value_len
}

/// Serializes an entry into `buf`, which must be exactly
/// [`serialized_len`]`(key.len(), value.len())` bytes.
///
/// # Panics
///
/// Panics if `buf` has the wrong length, if the key exceeds `u16::MAX`
/// bytes, or if the value exceeds `u32::MAX` bytes.
pub fn write_entry(
    buf: &mut [u8],
    kind: EntryKind,
    table_id: u64,
    key_hash: u64,
    version: u64,
    key: &[u8],
    value: &[u8],
) {
    assert_eq!(buf.len(), serialized_len(key.len(), value.len()));
    let key_len = u16::try_from(key.len()).expect("key too long");
    let value_len = u32::try_from(value.len()).expect("value too long");

    buf[0] = kind as u8;
    buf[1..9].copy_from_slice(&table_id.to_le_bytes());
    buf[9..17].copy_from_slice(&key_hash.to_le_bytes());
    buf[17..25].copy_from_slice(&version.to_le_bytes());
    buf[25..27].copy_from_slice(&key_len.to_le_bytes());
    buf[27..31].copy_from_slice(&value_len.to_le_bytes());
    buf[31..35].copy_from_slice(&[0u8; 4]); // checksum placeholder
    buf[ENTRY_HEADER_BYTES..ENTRY_HEADER_BYTES + key.len()].copy_from_slice(key);
    buf[ENTRY_HEADER_BYTES + key.len()..].copy_from_slice(value);

    let mut crc = Crc32c::new();
    crc.update(&buf[..31]);
    crc.update(&buf[ENTRY_HEADER_BYTES..]);
    let sum = crc.finish();
    buf[31..35].copy_from_slice(&sum.to_le_bytes());
}

/// Errors produced when parsing entry bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer ends before the header or payload does.
    Truncated,
    /// The kind byte is not a known [`EntryKind`].
    BadKind(u8),
    /// The stored CRC32C does not match the contents.
    BadChecksum {
        /// Checksum stored in the entry.
        stored: u32,
        /// Checksum computed over the bytes.
        computed: u32,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "entry truncated"),
            ParseError::BadKind(k) => write!(f, "unknown entry kind {k}"),
            ParseError::BadChecksum { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses the entry starting at the beginning of `buf`.
///
/// Returns the view and the number of bytes it occupies. Verifies the
/// checksum — replay paths must never incorporate corrupt records.
pub fn parse(buf: &[u8]) -> Result<(EntryView<'_>, usize), ParseError> {
    let (view, total, stored) = parse_header(buf)?;
    let mut crc = Crc32c::new();
    crc.update(&buf[..31]);
    crc.update(&buf[ENTRY_HEADER_BYTES..total]);
    let computed = crc.finish();
    if computed != stored {
        return Err(ParseError::BadChecksum { stored, computed });
    }
    Ok((view, total))
}

/// Parses the entry starting at the beginning of `buf` **without
/// re-verifying the checksum**.
///
/// For reads of a master's *own* committed log memory on the hot pull
/// path: every entry there was serialized (and checksummed) locally by
/// [`write_entry`], so recomputing CRC32C over the payload per gather
/// would only re-prove what the append already established. The wire
/// checksum a real Pull response pays is charged separately through the
/// cost model's `checksummed_bytes`. Paths that consume bytes of
/// *foreign* origin — replay, recovery images, anything off the network —
/// must keep using [`parse`].
pub fn parse_trusted(buf: &[u8]) -> Result<(EntryView<'_>, usize), ParseError> {
    let (view, total, _) = parse_header(buf)?;
    Ok((view, total))
}

/// Shared header/payload decoding; returns the view, total length, and
/// the stored (unverified) checksum.
fn parse_header(buf: &[u8]) -> Result<(EntryView<'_>, usize, u32), ParseError> {
    if buf.len() < ENTRY_HEADER_BYTES {
        return Err(ParseError::Truncated);
    }
    let kind = EntryKind::from_u8(buf[0]).ok_or(ParseError::BadKind(buf[0]))?;
    // Unwraps below are fine: slice lengths are fixed by the ranges.
    let table_id = u64::from_le_bytes(buf[1..9].try_into().unwrap());
    let key_hash = u64::from_le_bytes(buf[9..17].try_into().unwrap());
    let version = u64::from_le_bytes(buf[17..25].try_into().unwrap());
    let key_len = u16::from_le_bytes(buf[25..27].try_into().unwrap()) as usize;
    let value_len = u32::from_le_bytes(buf[27..31].try_into().unwrap()) as usize;
    let stored = u32::from_le_bytes(buf[31..35].try_into().unwrap());

    let total = ENTRY_HEADER_BYTES + key_len + value_len;
    if buf.len() < total {
        return Err(ParseError::Truncated);
    }
    let key = &buf[ENTRY_HEADER_BYTES..ENTRY_HEADER_BYTES + key_len];
    let value = &buf[ENTRY_HEADER_BYTES + key_len..total];

    Ok((
        EntryView {
            kind,
            table_id,
            key_hash,
            version,
            key,
            value,
        },
        total,
        stored,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(kind: EntryKind, key: &[u8], value: &[u8]) {
        let len = serialized_len(key.len(), value.len());
        let mut buf = vec![0u8; len];
        write_entry(&mut buf, kind, 7, 0xdead_beef, 42, key, value);
        let (view, consumed) = parse(&buf).expect("parse");
        assert_eq!(consumed, len);
        assert_eq!(view.kind, kind);
        assert_eq!(view.table_id, 7);
        assert_eq!(view.key_hash, 0xdead_beef);
        assert_eq!(view.version, 42);
        assert_eq!(view.key, key);
        assert_eq!(view.value, value);
    }

    #[test]
    fn roundtrip_object() {
        roundtrip(EntryKind::Object, b"user:1", b"payload-bytes");
    }

    #[test]
    fn roundtrip_tombstone_empty_value() {
        roundtrip(EntryKind::Tombstone, b"user:1", b"");
    }

    #[test]
    fn roundtrip_empty_key_and_value() {
        roundtrip(EntryKind::SideLogCommit, b"", b"");
    }

    #[test]
    fn roundtrip_large_value() {
        let value = vec![0xabu8; 100_000];
        roundtrip(EntryKind::Object, b"big", &value);
    }

    #[test]
    fn parse_rejects_truncation() {
        let mut buf = vec![0u8; serialized_len(3, 5)];
        write_entry(&mut buf, EntryKind::Object, 1, 2, 3, b"abc", b"12345");
        for cut in [0, 10, ENTRY_HEADER_BYTES, buf.len() - 1] {
            assert_eq!(parse(&buf[..cut]).unwrap_err(), ParseError::Truncated);
        }
    }

    #[test]
    fn parse_rejects_bad_kind() {
        let mut buf = vec![0u8; serialized_len(1, 1)];
        write_entry(&mut buf, EntryKind::Object, 1, 2, 3, b"k", b"v");
        buf[0] = 99;
        assert_eq!(parse(&buf).unwrap_err(), ParseError::BadKind(99));
    }

    #[test]
    fn parse_rejects_corruption_anywhere() {
        let mut buf = vec![0u8; serialized_len(4, 8)];
        write_entry(&mut buf, EntryKind::Object, 1, 2, 3, b"keyy", b"value-12");
        for i in 0..buf.len() {
            // Skip the kind byte: flipping it may produce BadKind instead,
            // which is also a detected failure.
            if i == 0 {
                continue;
            }
            buf[i] ^= 0x40;
            // Length-field corruption may surface as Truncated instead of
            // BadChecksum; either way it must not parse successfully.
            assert!(
                parse(&buf).is_err(),
                "corruption at byte {i} survived parsing"
            );
            buf[i] ^= 0x40;
        }
        parse(&buf).expect("restored buffer parses");
    }

    #[test]
    fn owned_roundtrip() {
        let mut buf = vec![0u8; serialized_len(2, 2)];
        write_entry(&mut buf, EntryKind::Object, 9, 8, 7, b"ab", b"cd");
        let (view, _) = parse(&buf).unwrap();
        let owned = view.to_owned();
        assert_eq!(owned.view(), view);
        assert_eq!(owned.serialized_len(), buf.len());
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn write_rejects_wrong_buffer_size() {
        let mut buf = vec![0u8; 10];
        write_entry(&mut buf, EntryKind::Object, 1, 2, 3, b"k", b"v");
    }
}
