//! The master's in-memory log: an open head segment plus closed segments.
//!
//! A RAMCloud master stores every object it owns in this log and nowhere
//! else; the hash table holds references ([`LogRef`]) into it. The log is
//! also the unit of durability: closed segments are what the replication
//! manager ships to backups, and the logical append position ([`Log::
//! position`]) is what Rocksteady's lineage dependency points at — "the
//! source depends on the target's recovery log *from this offset*"
//! (§3.4).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use rocksteady_common::FxHashMap;

use crate::entry::{self, EntryKind, EntryView, OwnedEntry, ENTRY_HEADER_BYTES};
use crate::segment::Segment;

/// Configuration for a [`Log`].
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Capacity of each segment in bytes. RAMCloud uses 8 MB segments;
    /// the scaled-down default keeps tests fast while preserving the
    /// many-segments structure the cleaner and migration rely on.
    pub segment_bytes: usize,
    /// Optional cap on the number of segments the log may hold (head +
    /// closed + adopted side-log segments). `None` = unbounded.
    pub max_segments: Option<usize>,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            segment_bytes: 1 << 20,
            max_segments: None,
        }
    }
}

/// A stable reference to one entry in a log: `(segment id, byte offset)`.
///
/// This is what the hash table stores as its value — RAMCloud keeps only
/// one copy of each object, in the log, and every index points at it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LogRef {
    /// Id of the segment holding the entry.
    pub segment: u64,
    /// Byte offset of the entry within the segment.
    pub offset: u32,
}

/// Errors from log appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogError {
    /// The serialized entry exceeds a whole segment.
    EntryTooLarge {
        /// Serialized entry size.
        need: usize,
        /// Segment capacity.
        capacity: usize,
    },
    /// The configured `max_segments` budget is exhausted.
    OutOfMemory,
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::EntryTooLarge { need, capacity } => {
                write!(
                    f,
                    "entry of {need} bytes exceeds segment capacity {capacity}"
                )
            }
            LogError::OutOfMemory => write!(f, "log segment budget exhausted"),
        }
    }
}

impl std::error::Error for LogError {}

/// Aggregate log statistics.
///
/// The cleaner needs accurate statistics to be effective (§3.1.3); side
/// logs accumulate their own and merge them on commit, exactly so that
/// parallel replay workers never contend on these counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogStats {
    /// Segments currently in the log (including the head).
    pub segments: usize,
    /// Total committed bytes across all segments.
    pub committed_bytes: u64,
    /// Bytes still live (not superseded or deleted).
    pub live_bytes: u64,
    /// Entries appended over the log's lifetime (monotonic).
    pub appended_entries: u64,
}

struct Inner {
    /// All segments by id, including the head.
    segments: FxHashMap<u64, Arc<Segment>>,
    /// Segment ids in adoption order (head last). Recovery and the
    /// baseline migration scan in this order.
    order: Vec<u64>,
    /// Current head segment (open for appends).
    head: Arc<Segment>,
}

/// The master log.
pub struct Log {
    config: LogConfig,
    inner: RwLock<Inner>,
    /// Segment-id allocator, shared with this log's side logs so adopted
    /// side segments never collide with main-log segments.
    next_segment_id: AtomicU64,
    /// Monotonic logical append position in bytes, across head rolls and
    /// side-log adoption. Rocksteady's lineage dependency records this.
    appended_bytes: AtomicU64,
    appended_entries: AtomicU64,
    /// Uncommitted side-log segments, resolvable by readers (the hash
    /// table points into them during parallel replay, §3.1.3) but not yet
    /// part of the log proper.
    side_segments: RwLock<FxHashMap<u64, Arc<Segment>>>,
}

impl Log {
    /// Creates an empty log with one open head segment.
    pub fn new(config: LogConfig) -> Self {
        let head = Arc::new(Segment::new(0, config.segment_bytes));
        let mut segments = FxHashMap::default();
        segments.insert(0, Arc::clone(&head));
        Log {
            config,
            inner: RwLock::new(Inner {
                segments,
                order: vec![0],
                head,
            }),
            next_segment_id: AtomicU64::new(1),
            appended_bytes: AtomicU64::new(0),
            appended_entries: AtomicU64::new(0),
            side_segments: RwLock::new(FxHashMap::default()),
        }
    }

    /// The log's configuration.
    pub fn config(&self) -> &LogConfig {
        &self.config
    }

    /// Allocates a fresh segment id (used by [`SideLog`]s so their
    /// segments can later be adopted without id collisions).
    ///
    /// [`SideLog`]: crate::sidelog::SideLog
    pub fn alloc_segment_id(&self) -> u64 {
        self.next_segment_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Current logical append position in bytes. Monotonic; grows with
    /// every append and every adopted side-log segment.
    pub fn position(&self) -> u64 {
        self.appended_bytes.load(Ordering::Acquire)
    }

    /// Id of the current head segment. Everything appended from now on
    /// lands in segments with ids ≥ this — the two-integer lineage
    /// dependency Rocksteady registers at the coordinator (§3.4) is
    /// `(this master, head_segment_id())` at migration start.
    pub fn head_segment_id(&self) -> u64 {
        self.inner.read().head.id()
    }

    /// Appends an entry, rolling the head segment as needed.
    #[allow(clippy::too_many_arguments)]
    pub fn append(
        &self,
        kind: EntryKind,
        table_id: u64,
        key_hash: u64,
        version: u64,
        key: &[u8],
        value: &[u8],
    ) -> Result<LogRef, LogError> {
        let need = crate::entry::serialized_len(key.len(), value.len());
        if need > self.config.segment_bytes {
            return Err(LogError::EntryTooLarge {
                need,
                capacity: self.config.segment_bytes,
            });
        }
        loop {
            // Fast path: append into the current head under the read lock.
            {
                let inner = self.inner.read();
                if let Some(offset) = inner
                    .head
                    .append(kind, table_id, key_hash, version, key, value)
                {
                    self.note_append(need);
                    return Ok(LogRef {
                        segment: inner.head.id(),
                        offset,
                    });
                }
            }
            // Head lacks space for this entry: roll it and retry.
            self.roll_head(need)?;
        }
    }

    fn note_append(&self, bytes: usize) {
        self.appended_bytes
            .fetch_add(bytes as u64, Ordering::AcqRel);
        self.appended_entries.fetch_add(1, Ordering::Relaxed);
    }

    fn roll_head(&self, need: usize) -> Result<(), LogError> {
        let mut inner = self.inner.write();
        // Another appender may have rolled while we waited.
        if inner.head.free_space() >= need {
            return Ok(());
        }
        if let Some(max) = self.config.max_segments {
            if inner.segments.len() >= max {
                return Err(LogError::OutOfMemory);
            }
        }
        inner.head.close();
        let id = self.next_segment_id.fetch_add(1, Ordering::Relaxed);
        let head = Arc::new(Segment::new(id, self.config.segment_bytes));
        inner.segments.insert(id, Arc::clone(&head));
        inner.order.push(id);
        inner.head = head;
        Ok(())
    }

    /// Looks up the segment holding `id` — in the log proper or in an
    /// uncommitted side log registered with
    /// [`Log::register_side_segment`].
    pub fn segment(&self, id: u64) -> Option<Arc<Segment>> {
        if let Some(seg) = self.inner.read().segments.get(&id) {
            return Some(Arc::clone(seg));
        }
        self.side_segments.read().get(&id).cloned()
    }

    /// Makes an uncommitted side-log segment resolvable by readers. The
    /// hash table points into side segments while replay is in flight;
    /// commit ([`Log::adopt_segment`]) later moves the segment into the
    /// log proper.
    pub fn register_side_segment(&self, seg: Arc<Segment>) {
        self.side_segments.write().insert(seg.id(), seg);
    }

    /// Snapshot of all segments in adoption order (head last).
    pub fn segments_snapshot(&self) -> Vec<Arc<Segment>> {
        let inner = self.inner.read();
        inner
            .order
            .iter()
            .filter_map(|id| inner.segments.get(id).cloned())
            .collect()
    }

    /// Runs `f` on the entry at `r`, if present and parseable.
    ///
    /// The closure form avoids handing out self-referential guards; the
    /// segment `Arc` keeps the bytes alive for the duration of the call
    /// even if the cleaner concurrently retires the segment.
    ///
    /// Entries are decoded with [`entry::parse_trusted`]: every entry in
    /// this log was checksummed when it was serialized into the segment
    /// (locally by `write_entry`, or verified before adoption on the
    /// replay/recovery paths), so the per-access CRC pass would only
    /// re-prove what the append already established. This is the hot
    /// read-path accessor — reads, hash-chain key comparisons, and
    /// dead-byte accounting all funnel through it.
    pub fn with_entry<T>(&self, r: LogRef, f: impl FnOnce(&EntryView<'_>) -> T) -> Option<T> {
        let seg = self.segment(r.segment)?;
        let (view, _) = seg.entry_at_trusted(r.offset).ok()?;
        Some(f(&view))
    }

    /// Copies the entry at `r` out of the log.
    pub fn entry(&self, r: LogRef) -> Option<OwnedEntry> {
        self.with_entry(r, |v| v.to_owned())
    }

    /// The committed prefix of segment `id` as ref-counted [`Bytes`]
    /// aliasing the segment's backing buffer (zero-copy; see
    /// [`Segment::committed_as_bytes`]).
    pub fn segment_bytes(&self, id: u64) -> Option<Bytes> {
        Some(self.segment(id)?.committed_as_bytes())
    }

    /// Opens a zero-copy [`SliceReader`] over this log.
    pub fn slice_reader(&self) -> SliceReader<'_> {
        SliceReader {
            log: self,
            cache: WindowCache::new(),
        }
    }

    /// Declares the entry at `r` (of `bytes` serialized size) dead, for
    /// cleaner accounting.
    pub fn mark_dead(&self, r: LogRef, bytes: u64) {
        if let Some(seg) = self.segment(r.segment) {
            seg.mark_dead(bytes);
        }
    }

    /// Adopts an externally-built (side-log) segment into this log. The
    /// segment must have been allocated via [`Log::alloc_segment_id`].
    ///
    /// Closes the segment: adopted segments are immutable.
    pub fn adopt_segment(&self, seg: Arc<Segment>) {
        seg.close();
        let committed = seg.committed() as u64;
        let entries = seg.entry_count();
        let id = seg.id();
        self.side_segments.write().remove(&id);
        let mut inner = self.inner.write();
        debug_assert!(
            !inner.segments.contains_key(&id),
            "segment id {id} already present"
        );
        inner.segments.insert(id, seg);
        inner.order.push(id);
        drop(inner);
        self.appended_bytes.fetch_add(committed, Ordering::AcqRel);
        self.appended_entries.fetch_add(entries, Ordering::Relaxed);
    }

    /// Removes a (cleaned) segment from the log, returning it. Readers
    /// holding the `Arc` keep the memory alive; new lookups fail.
    pub fn remove_segment(&self, id: u64) -> Option<Arc<Segment>> {
        let mut inner = self.inner.write();
        if inner.head.id() == id {
            // The head is never cleanable.
            return None;
        }
        let seg = inner.segments.remove(&id)?;
        inner.order.retain(|&s| s != id);
        Some(seg)
    }

    /// Visits every committed entry in every segment, in adoption order.
    pub fn for_each_entry(&self, mut f: impl FnMut(LogRef, &EntryView<'_>)) {
        for seg in self.segments_snapshot() {
            for (offset, view) in seg.iter_entries() {
                f(
                    LogRef {
                        segment: seg.id(),
                        offset,
                    },
                    &view,
                );
            }
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> LogStats {
        let inner = self.inner.read();
        let mut committed = 0u64;
        let mut live = 0u64;
        for seg in inner.segments.values() {
            committed += seg.committed() as u64;
            live += seg.live_bytes();
        }
        LogStats {
            segments: inner.segments.len(),
            committed_bytes: committed,
            live_bytes: live,
            appended_entries: self.appended_entries.load(Ordering::Relaxed),
        }
    }
}

/// A parsed entry whose key and value are ref-counted windows into the
/// segment's backing memory — the zero-copy currency of the pull path.
///
/// Each `Bytes` holds the segment's `Arc`: a Pull response assembled
/// from these slices keeps its source segments alive until the last
/// slice drops, even if the cleaner retires them mid-flight.
#[derive(Debug, Clone)]
pub struct EntrySlices {
    /// Entry kind.
    pub kind: EntryKind,
    /// Owning table.
    pub table_id: u64,
    /// Primary-key hash (stored, not recomputed).
    pub key_hash: u64,
    /// Object version.
    pub version: u64,
    /// Primary key bytes, aliasing the segment.
    pub key: Bytes,
    /// Value bytes, aliasing the segment (empty for tombstones).
    pub value: Bytes,
}

/// Batched zero-copy reads: resolves [`LogRef`]s to [`EntrySlices`]
/// while memoizing one committed-prefix [`Bytes`] window per segment, so
/// a whole gather batch pays one owner allocation per *segment* and one
/// refcount bump per *record* — never a per-record key/value copy.
///
/// Entries are decoded with [`entry::parse_trusted`]: the reader only
/// ever walks this master's own committed log memory, whose entries were
/// checksummed at append time.
pub struct SliceReader<'a> {
    log: &'a Log,
    /// Committed-prefix window per segment id, filled on first touch.
    cache: WindowCache,
}

impl SliceReader<'_> {
    /// Resolves `r` to zero-copy slices, or `None` if the segment is gone
    /// or the offset holds no committed entry.
    pub fn entry_slices(&mut self, r: LogRef) -> Option<EntrySlices> {
        self.cache.entry_slices(self.log, r)
    }
}

/// The owning form of [`SliceReader`]: a committed-prefix [`Bytes`]
/// window per segment id that persists *across* batches, so a long-lived
/// reader (the master's data path) pays the one owner allocation per
/// segment once per segment lifetime, not once per batch. Windows hold
/// the segment `Arc`, so a cached window stays valid even after the
/// cleaner retires the segment; a window that predates an append into
/// the open head segment is transparently re-taken.
#[derive(Debug, Default)]
pub struct WindowCache {
    windows: FxHashMap<u64, Bytes>,
}

impl WindowCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        WindowCache::default()
    }

    /// Resolves `r` within `log` to zero-copy slices, or `None` if the
    /// segment is gone or the offset holds no committed entry.
    pub fn entry_slices(&mut self, log: &Log, r: LogRef) -> Option<EntrySlices> {
        if let Some(window) = self.windows.get(&r.segment) {
            if let Some(e) = Self::decode(window, r.offset) {
                return Some(e);
            }
            // The memoized window may predate an append into the open
            // head segment that this ref points at; fall through and
            // re-window before concluding the entry doesn't exist.
        }
        let window = log.segment_bytes(r.segment)?;
        self.windows.insert(r.segment, window.clone());
        Self::decode(&window, r.offset)
    }

    /// The full serialized bytes of the entry at `r` (header + key +
    /// value) as one zero-copy window slice — the unit the write path
    /// replicates to backups.
    pub fn entry_bytes(&mut self, log: &Log, r: LogRef) -> Option<Bytes> {
        if let Some(window) = self.windows.get(&r.segment) {
            if let Some(b) = Self::slice_entry(window, r.offset) {
                return Some(b);
            }
            // Stale head-segment window; re-take below.
        }
        let window = log.segment_bytes(r.segment)?;
        self.windows.insert(r.segment, window.clone());
        Self::slice_entry(&window, r.offset)
    }

    fn slice_entry(window: &Bytes, offset: u32) -> Option<Bytes> {
        let buf = window.as_slice();
        let off = offset as usize;
        if off >= buf.len() {
            return None;
        }
        let (_, len) = entry::parse_trusted(&buf[off..]).ok()?;
        Some(window.slice(off..off + len))
    }

    fn decode(window: &Bytes, offset: u32) -> Option<EntrySlices> {
        let buf = window.as_slice();
        let off = offset as usize;
        if off >= buf.len() {
            return None;
        }
        let (view, _) = entry::parse_trusted(&buf[off..]).ok()?;
        let key_start = off + ENTRY_HEADER_BYTES;
        let value_start = key_start + view.key.len();
        let value_end = value_start + view.value.len();
        Some(EntrySlices {
            kind: view.kind,
            table_id: view.table_id,
            key_hash: view.key_hash,
            version: view.version,
            key: window.slice(key_start..value_start),
            value: window.slice(value_start..value_end),
        })
    }
}

impl std::fmt::Debug for Log {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log")
            .field("stats", &self.stats())
            .field("position", &self.position())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_log() -> Log {
        Log::new(LogConfig {
            segment_bytes: 256,
            max_segments: None,
        })
    }

    #[test]
    fn append_and_lookup() {
        let log = small_log();
        let r = log
            .append(EntryKind::Object, 1, 42, 1, b"key", b"value")
            .unwrap();
        let e = log.entry(r).unwrap();
        assert_eq!(e.key, b"key");
        assert_eq!(e.value, b"value");
        assert_eq!(e.version, 1);
    }

    #[test]
    fn rolls_head_segments() {
        let log = small_log();
        let mut refs = Vec::new();
        for i in 0..50u64 {
            refs.push(
                log.append(EntryKind::Object, 1, i, i, &i.to_le_bytes(), b"0123456789")
                    .unwrap(),
            );
        }
        let stats = log.stats();
        assert!(stats.segments > 1, "expected multiple segments");
        assert_eq!(stats.appended_entries, 50);
        // Every ref still resolves after rolls.
        for (i, r) in refs.iter().enumerate() {
            let e = log.entry(*r).unwrap();
            assert_eq!(e.key_hash, i as u64);
        }
    }

    #[test]
    fn rejects_oversized_entry() {
        let log = small_log();
        let big = vec![0u8; 1024];
        assert!(matches!(
            log.append(EntryKind::Object, 1, 0, 1, b"k", &big),
            Err(LogError::EntryTooLarge { .. })
        ));
    }

    #[test]
    fn respects_segment_budget() {
        let log = Log::new(LogConfig {
            segment_bytes: 128,
            max_segments: Some(2),
        });
        let mut err = None;
        for i in 0..1_000u64 {
            if let Err(e) = log.append(EntryKind::Object, 1, i, i, b"kkkk", b"vvvvvvvv") {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(LogError::OutOfMemory));
        assert_eq!(log.stats().segments, 2);
    }

    #[test]
    fn position_is_monotonic_and_byte_accurate() {
        let log = small_log();
        assert_eq!(log.position(), 0);
        log.append(EntryKind::Object, 1, 0, 1, b"k", b"v").unwrap();
        let after_one = log.position();
        assert_eq!(after_one, crate::entry::serialized_len(1, 1) as u64);
        log.append(EntryKind::Object, 1, 1, 1, b"k", b"v").unwrap();
        assert_eq!(log.position(), after_one * 2);
    }

    #[test]
    fn for_each_entry_sees_everything_in_order() {
        let log = small_log();
        for i in 0..30u64 {
            log.append(EntryKind::Object, 1, i, i, &i.to_le_bytes(), b"0123456789")
                .unwrap();
        }
        let mut seen = Vec::new();
        log.for_each_entry(|_, v| seen.push(v.key_hash));
        assert_eq!(seen, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn mark_dead_flows_to_segment() {
        let log = small_log();
        let r = log.append(EntryKind::Object, 1, 0, 1, b"k", b"v").unwrap();
        let len = crate::entry::serialized_len(1, 1) as u64;
        assert_eq!(log.stats().live_bytes, len);
        log.mark_dead(r, len);
        assert_eq!(log.stats().live_bytes, 0);
    }

    #[test]
    fn adopt_segment_makes_entries_visible() {
        let log = small_log();
        let id = log.alloc_segment_id();
        let side = Arc::new(Segment::new(id, 256));
        let off = side
            .append(EntryKind::Object, 9, 77, 1, b"sk", b"sv")
            .unwrap();
        log.adopt_segment(Arc::clone(&side));
        let r = LogRef {
            segment: id,
            offset: off,
        };
        let e = log.entry(r).unwrap();
        assert_eq!(e.table_id, 9);
        assert!(side.is_closed());
        // Position advanced by the adopted bytes.
        assert_eq!(log.position(), side.committed() as u64);
    }

    #[test]
    fn remove_segment_retires_lookups_but_not_readers() {
        let log = small_log();
        // Fill two segments so the first is closed.
        let mut first_ref = None;
        for i in 0..50u64 {
            let r = log
                .append(EntryKind::Object, 1, i, i, &i.to_le_bytes(), b"0123456789")
                .unwrap();
            first_ref.get_or_insert(r);
        }
        let first_ref = first_ref.unwrap();
        let seg = log.segment(first_ref.segment).unwrap();
        let removed = log.remove_segment(first_ref.segment).unwrap();
        assert_eq!(removed.id(), first_ref.segment);
        // Lookup through the log now fails...
        assert!(log.entry(first_ref).is_none());
        // ...but a reader holding the Arc still sees valid bytes.
        let (view, _) = seg.entry_at(first_ref.offset).unwrap();
        assert_eq!(view.key_hash, 0);
    }

    #[test]
    fn head_is_never_removable() {
        let log = small_log();
        assert!(log.remove_segment(0).is_none());
    }

    #[test]
    fn concurrent_appends_from_threads() {
        let log = Arc::new(Log::new(LogConfig {
            segment_bytes: 4096,
            max_segments: None,
        }));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                let mut refs = Vec::new();
                for i in 0..500u64 {
                    let hash = t * 1_000 + i;
                    refs.push((
                        hash,
                        log.append(
                            EntryKind::Object,
                            1,
                            hash,
                            1,
                            &hash.to_le_bytes(),
                            b"payload",
                        )
                        .unwrap(),
                    ));
                }
                refs
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        assert_eq!(all.len(), 2_000);
        for (hash, r) in all {
            assert_eq!(log.entry(r).unwrap().key_hash, hash);
        }
        assert_eq!(log.stats().appended_entries, 2_000);
    }
}
