//! Per-core side logs for contention-free parallel replay (§3.1.3).
//!
//! Parallel replay into a single shared log breaks down under contention:
//! the paper's initial experiments were limited by exactly this, and
//! per-core side logs were the fix. A [`SideLog`] is an independent chain
//! of segments hanging off a parent [`Log`]: each replay worker appends
//! into its own side log with zero cross-worker synchronization, and at
//! the end of migration each side log is *committed* — its segments are
//! adopted into the main log and a small [`EntryKind::SideLogCommit`]
//! metadata record is appended to the main log.
//!
//! Side logs also keep their statistics local and merge them only at
//! commit, because RAMCloud's cleaner needs accurate log statistics and
//! contended global counters would defeat the design (§3.1.3).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::entry::EntryKind;
use crate::log::{Log, LogError, LogRef};
use crate::segment::Segment;

/// An uncommitted chain of segments owned by one replay worker.
pub struct SideLog {
    parent: Arc<Log>,
    inner: Mutex<Inner>,
}

struct Inner {
    /// Completed + current segments, in append order (head last).
    segments: Vec<Arc<Segment>>,
    entries: u64,
    bytes: u64,
}

impl SideLog {
    /// Creates an empty side log off `parent`. Segment ids are drawn from
    /// the parent's allocator so commit cannot collide.
    pub fn new(parent: Arc<Log>) -> Self {
        SideLog {
            parent,
            inner: Mutex::new(Inner {
                segments: Vec::new(),
                entries: 0,
                bytes: 0,
            }),
        }
    }

    /// Appends an object/tombstone entry; same semantics as
    /// [`Log::append`] but into this side chain.
    #[allow(clippy::too_many_arguments)]
    pub fn append(
        &self,
        kind: EntryKind,
        table_id: u64,
        key_hash: u64,
        version: u64,
        key: &[u8],
        value: &[u8],
    ) -> Result<LogRef, LogError> {
        self.append_batch(|a| a.append(kind, table_id, key_hash, version, key, value))
    }

    /// Runs `f` with a [`SideLogAppender`] holding this side log's lock,
    /// so a whole Pull response's worth of replayed records pays one lock
    /// acquisition instead of one per record (§3.1.3 — side logs exist
    /// precisely so replay workers don't synchronize per append; batching
    /// removes the remaining per-record overhead *within* a worker).
    pub fn append_batch<T>(&self, f: impl FnOnce(&mut SideLogAppender<'_>) -> T) -> T {
        let mut inner = self.inner.lock();
        let mut appender = SideLogAppender {
            parent: &self.parent,
            inner: &mut inner,
        };
        f(&mut appender)
    }

    /// Entries appended so far (local statistic; merged on commit).
    pub fn entries(&self) -> u64 {
        self.inner.lock().entries
    }

    /// Bytes appended so far (local statistic; merged on commit).
    pub fn bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Number of segments in this side chain.
    pub fn segment_count(&self) -> usize {
        self.inner.lock().segments.len()
    }

    /// Snapshot of this side log's segments (for lazy re-replication at
    /// the end of migration, §3.4).
    pub fn segments_snapshot(&self) -> Vec<Arc<Segment>> {
        self.inner.lock().segments.clone()
    }

    /// Commits this side log into the parent log: closes and adopts every
    /// segment, then appends a `SideLogCommit` metadata record naming the
    /// adopted segment ids. Returns the adopted ids.
    ///
    /// After commit, every [`LogRef`] previously returned by
    /// [`SideLog::append`] resolves through the parent log.
    pub fn commit(self) -> Result<Vec<u64>, LogError> {
        let inner = self.inner.into_inner();
        let mut ids = Vec::with_capacity(inner.segments.len());
        for seg in inner.segments {
            ids.push(seg.id());
            self.parent.adopt_segment(seg);
        }
        // The commit record's value lists the adopted segment ids; crash
        // recovery uses it to know the side segments belong to this log.
        let mut value = Vec::with_capacity(8 * ids.len());
        for id in &ids {
            value.extend_from_slice(&id.to_le_bytes());
        }
        self.parent
            .append(EntryKind::SideLogCommit, 0, 0, 0, b"", &value)?;
        Ok(ids)
    }

    /// Parses a `SideLogCommit` record's value back into segment ids.
    pub fn parse_commit_record(value: &[u8]) -> Vec<u64> {
        value
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }
}

/// Exclusive handle over a locked side log; obtained from
/// [`SideLog::append_batch`]. Every [`SideLogAppender::append`] call hits
/// the segment chain directly without re-taking the side log's mutex.
pub struct SideLogAppender<'a> {
    parent: &'a Arc<Log>,
    inner: &'a mut Inner,
}

impl SideLogAppender<'_> {
    /// Appends one entry under the already-held batch lock. Semantics are
    /// identical to [`SideLog::append`].
    #[allow(clippy::too_many_arguments)]
    pub fn append(
        &mut self,
        kind: EntryKind,
        table_id: u64,
        key_hash: u64,
        version: u64,
        key: &[u8],
        value: &[u8],
    ) -> Result<LogRef, LogError> {
        let need = crate::entry::serialized_len(key.len(), value.len());
        let capacity = self.parent.config().segment_bytes;
        if need > capacity {
            return Err(LogError::EntryTooLarge { need, capacity });
        }
        loop {
            if let Some(head) = self.inner.segments.last() {
                if let Some(offset) = head.append(kind, table_id, key_hash, version, key, value) {
                    let segment = head.id();
                    self.inner.entries += 1;
                    self.inner.bytes += need as u64;
                    return Ok(LogRef { segment, offset });
                }
                head.close();
            }
            let id = self.parent.alloc_segment_id();
            let seg = Arc::new(Segment::new(id, capacity));
            // Readers must be able to resolve refs into this segment
            // before commit (replay links the hash table to it).
            self.parent.register_side_segment(Arc::clone(&seg));
            self.inner.segments.push(seg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;

    fn parent() -> Arc<Log> {
        Arc::new(Log::new(LogConfig {
            segment_bytes: 256,
            max_segments: None,
        }))
    }

    #[test]
    fn append_then_commit_resolves_through_parent() {
        let log = parent();
        let side = SideLog::new(Arc::clone(&log));
        let mut refs = Vec::new();
        for i in 0..20u64 {
            refs.push(
                side.append(EntryKind::Object, 1, i, i, &i.to_le_bytes(), b"0123456789")
                    .unwrap(),
            );
        }
        assert_eq!(side.entries(), 20);
        assert!(side.segment_count() > 1, "should have rolled segments");
        // Even before commit the parent resolves side refs (the hash
        // table points into side segments during replay).
        assert!(log.entry(refs[0]).is_some());
        let ids = side.commit().unwrap();
        assert!(!ids.is_empty());
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(log.entry(*r).unwrap().key_hash, i as u64);
        }
    }

    #[test]
    fn commit_appends_metadata_record() {
        let log = parent();
        let side = SideLog::new(Arc::clone(&log));
        side.append(EntryKind::Object, 1, 7, 1, b"k", b"v").unwrap();
        let ids = side.commit().unwrap();
        let mut commit_records = Vec::new();
        log.for_each_entry(|_, v| {
            if v.kind == EntryKind::SideLogCommit {
                commit_records.push(SideLog::parse_commit_record(v.value));
            }
        });
        assert_eq!(commit_records, vec![ids]);
    }

    #[test]
    fn empty_sidelog_commit_is_fine() {
        let log = parent();
        let side = SideLog::new(Arc::clone(&log));
        let ids = side.commit().unwrap();
        assert!(ids.is_empty());
    }

    #[test]
    fn sidelogs_do_not_interfere() {
        let log = parent();
        let a = SideLog::new(Arc::clone(&log));
        let b = SideLog::new(Arc::clone(&log));
        let ra = a.append(EntryKind::Object, 1, 1, 1, b"a", b"va").unwrap();
        let rb = b.append(EntryKind::Object, 1, 2, 1, b"b", b"vb").unwrap();
        assert_ne!(ra.segment, rb.segment);
        a.commit().unwrap();
        b.commit().unwrap();
        assert_eq!(log.entry(ra).unwrap().key, b"a");
        assert_eq!(log.entry(rb).unwrap().key, b"b");
        assert_eq!(log.entry(rb).unwrap().value, b"vb");
    }

    #[test]
    fn stats_merge_into_parent_on_commit() {
        let log = parent();
        let before = log.stats();
        let side = SideLog::new(Arc::clone(&log));
        for i in 0..10u64 {
            side.append(EntryKind::Object, 1, i, i, b"kk", b"vvvv")
                .unwrap();
        }
        let side_bytes = side.bytes();
        side.commit().unwrap();
        let after = log.stats();
        assert!(after.committed_bytes >= before.committed_bytes + side_bytes);
        assert!(after.appended_entries >= before.appended_entries + 10);
    }

    #[test]
    fn parallel_sidelog_appends() {
        let log = Arc::new(Log::new(LogConfig::default()));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let side = SideLog::new(Arc::clone(&log));
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    side.append(
                        EntryKind::Object,
                        1,
                        t * 10_000 + i,
                        1,
                        &i.to_le_bytes(),
                        b"value",
                    )
                    .unwrap();
                }
                side
            }));
        }
        let mut total = 0;
        for h in handles {
            let side = h.join().unwrap();
            total += side.entries();
            side.commit().unwrap();
        }
        assert_eq!(total, 4_000);
        let mut count = 0;
        log.for_each_entry(|_, v| {
            if v.kind == EntryKind::Object {
                count += 1;
            }
        });
        assert_eq!(count, 4_000);
    }
}
