//! Property-based tests for the log-structured storage substrate.
//!
//! Offline note: this environment cannot fetch `proptest`, so these are
//! seeded randomized property tests driven by the workspace's own
//! deterministic [`Prng`]. Each test runs many independent cases from
//! fixed seeds, so failures reproduce exactly.

use std::collections::HashMap;
use std::sync::Arc;

use rocksteady_common::rng::Prng;
use rocksteady_logstore::entry::{parse, serialized_len, write_entry, ParseError};
use rocksteady_logstore::{
    Cleaner, EntryKind, Log, LogConfig, LogRef, Relocation, Relocator, SideLog,
};

const CASES: u64 = 96;

fn rand_bytes(rng: &mut Prng, max_len: u64) -> Vec<u8> {
    let len = rng.next_below(max_len) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Any entry serializes and parses back bit-identically.
#[test]
fn entry_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x109_0000 + seed);
        let kind = if rng.next_u64() & 1 == 0 {
            EntryKind::Object
        } else {
            EntryKind::Tombstone
        };
        let (table, hash, version) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        let key = rand_bytes(&mut rng, 64);
        let value = rand_bytes(&mut rng, 512);
        let mut buf = vec![0u8; serialized_len(key.len(), value.len())];
        write_entry(&mut buf, kind, table, hash, version, &key, &value);
        let (view, consumed) = parse(&buf).expect("own serialization parses");
        assert_eq!(consumed, buf.len());
        assert_eq!(view.kind, kind);
        assert_eq!(view.table_id, table);
        assert_eq!(view.key_hash, hash);
        assert_eq!(view.version, version);
        assert_eq!(view.key, &key[..]);
        assert_eq!(view.value, &value[..]);
    }
}

/// A single flipped bit anywhere in a serialized entry is detected.
#[test]
fn entry_bitflip_detected() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x209_0000 + seed);
        let key = {
            let mut k = rand_bytes(&mut rng, 31);
            k.push(rng.next_u64() as u8); // at least one byte
            k
        };
        let value = rand_bytes(&mut rng, 128);
        let mut buf = vec![0u8; serialized_len(key.len(), value.len())];
        write_entry(&mut buf, EntryKind::Object, 1, 2, 3, &key, &value);
        let bit = rng.next_below(buf.len() as u64 * 8) as usize;
        buf[bit / 8] ^= 1 << (bit % 8);
        if let Ok((view, _)) = parse(&buf) {
            // A flip inside the kind byte may map Object->Tombstone with a
            // checksum mismatch, etc.; any successful parse would be a
            // silent corruption.
            panic!(
                "seed {seed}: bit {bit} flipped silently: parsed kind {:?}",
                view.kind
            );
        }
    }
}

/// Parsing never panics on arbitrary bytes (fuzz-style).
#[test]
fn parse_never_panics() {
    for seed in 0..CASES * 4 {
        let mut rng = Prng::new(0x309_0000 + seed);
        let bytes = rand_bytes(&mut rng, 256);
        match parse(&bytes) {
            Ok((view, consumed)) => {
                assert!(consumed <= bytes.len());
                assert!(view.serialized_len() == consumed);
            }
            Err(
                ParseError::Truncated | ParseError::BadKind(_) | ParseError::BadChecksum { .. },
            ) => {}
        }
    }
}

/// Every appended entry stays readable at its returned reference, in
/// order, across arbitrary segment sizes (head rolls included).
#[test]
fn log_append_read_consistency() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x409_0000 + seed);
        let segment_kb = rng.next_range(1, 7) as usize;
        let n = rng.next_range(1, 99) as usize;
        let log = Log::new(LogConfig {
            segment_bytes: segment_kb * 256,
            max_segments: None,
        });
        let mut refs: Vec<(LogRef, u64, Vec<u8>)> = Vec::new();
        for i in 0..n {
            let hash = rng.next_u64();
            let value = rand_bytes(&mut rng, 40);
            let key = (i as u32).to_le_bytes();
            let r = log
                .append(EntryKind::Object, 1, hash, i as u64, &key, &value)
                .expect("append");
            refs.push((r, hash, value));
        }
        for (r, hash, value) in &refs {
            let e = log.entry(*r).expect("resolvable");
            assert_eq!(e.key_hash, *hash, "seed {seed}");
            assert_eq!(&e.value, value, "seed {seed}");
        }
        // Full iteration sees exactly the appended entries in order.
        let mut seen = Vec::new();
        log.for_each_entry(|_, v| seen.push(v.version));
        assert_eq!(seen, (0..n as u64).collect::<Vec<_>>(), "seed {seed}");
    }
}

/// Side-log appends stay readable through the parent before and after
/// commit, regardless of interleaving with main-log appends.
#[test]
fn sidelog_commit_preserves_entries() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x509_0000 + seed);
        let ops = rng.next_range(1, 79);
        let log = Arc::new(Log::new(LogConfig {
            segment_bytes: 512,
            max_segments: None,
        }));
        let side = SideLog::new(Arc::clone(&log));
        let mut refs = Vec::new();
        for _ in 0..ops {
            let to_side = rng.next_u64() & 1 == 0;
            let hash = rng.next_u64();
            let r = if to_side {
                side.append(EntryKind::Object, 1, hash, 1, b"k", b"v")
                    .unwrap()
            } else {
                log.append(EntryKind::Object, 1, hash, 1, b"k", b"v")
                    .unwrap()
            };
            refs.push((r, hash));
        }
        for (r, hash) in &refs {
            assert_eq!(log.entry(*r).expect("pre-commit").key_hash, *hash);
        }
        side.commit().unwrap();
        for (r, hash) in &refs {
            assert_eq!(log.entry(*r).expect("post-commit").key_hash, *hash);
        }
    }
}

/// Model-based cleaner test: after arbitrary overwrite patterns and
/// repeated cleaning, exactly the latest version of every key survives.
#[derive(Default)]
struct ModelRelocator {
    current: HashMap<u64, LogRef>,
}

impl Relocator for ModelRelocator {
    fn disposition(
        &mut self,
        view: &rocksteady_logstore::EntryView<'_>,
        old: LogRef,
    ) -> Relocation {
        if view.kind != EntryKind::Object {
            return Relocation::Keep;
        }
        if self.current.get(&view.key_hash) == Some(&old) {
            Relocation::Keep
        } else {
            Relocation::Drop
        }
    }

    fn relocated(&mut self, view: &rocksteady_logstore::EntryView<'_>, _old: LogRef, new: LogRef) {
        self.current.insert(view.key_hash, new);
    }
}

#[test]
fn cleaner_preserves_latest_versions() {
    for seed in 0..64 {
        let mut rng = Prng::new(0x609_0000 + seed);
        let writes = rng.next_range(1, 300);
        let threshold = 0.3 + rng.next_f64() * 0.7;
        let log = Log::new(LogConfig {
            segment_bytes: 512,
            max_segments: None,
        });
        let mut reloc = ModelRelocator::default();
        let mut latest: HashMap<u64, (u64, u8)> = HashMap::new();
        for version in 0..writes {
            let key = rng.next_below(32);
            let val = rng.next_u64() as u8;
            let r = log
                .append(
                    EntryKind::Object,
                    1,
                    key,
                    version,
                    &key.to_le_bytes(),
                    &[val],
                )
                .unwrap();
            if let Some(old) = reloc.current.insert(key, r) {
                log.mark_dead(old, 44);
            }
            latest.insert(key, (version, val));
        }
        let cleaner = Cleaner {
            utilization_threshold: threshold,
            max_segments_per_pass: 2,
        };
        for _ in 0..200 {
            if cleaner.clean_once(&log, &mut reloc).unwrap().is_none() {
                break;
            }
        }
        for (key, (version, val)) in &latest {
            let r = reloc.current[key];
            let e = log
                .entry(r)
                .unwrap_or_else(|| panic!("seed {seed}: key {key} lost"));
            assert_eq!(e.version, *version, "seed {seed}");
            assert_eq!(e.value, vec![*val], "seed {seed}");
        }
    }
}
