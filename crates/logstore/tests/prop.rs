//! Property-based tests for the log-structured storage substrate.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use rocksteady_logstore::entry::{parse, serialized_len, write_entry, ParseError};
use rocksteady_logstore::{Cleaner, EntryKind, Log, LogConfig, LogRef, Relocation, Relocator, SideLog};

proptest! {
    /// Any entry serializes and parses back bit-identically.
    #[test]
    fn entry_roundtrip(
        kind in prop_oneof![Just(EntryKind::Object), Just(EntryKind::Tombstone)],
        table in any::<u64>(),
        hash in any::<u64>(),
        version in any::<u64>(),
        key in proptest::collection::vec(any::<u8>(), 0..64),
        value in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut buf = vec![0u8; serialized_len(key.len(), value.len())];
        write_entry(&mut buf, kind, table, hash, version, &key, &value);
        let (view, consumed) = parse(&buf).expect("own serialization parses");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(view.kind, kind);
        prop_assert_eq!(view.table_id, table);
        prop_assert_eq!(view.key_hash, hash);
        prop_assert_eq!(view.version, version);
        prop_assert_eq!(view.key, &key[..]);
        prop_assert_eq!(view.value, &value[..]);
    }

    /// A single flipped bit anywhere in a serialized entry is detected.
    #[test]
    fn entry_bitflip_detected(
        key in proptest::collection::vec(any::<u8>(), 1..32),
        value in proptest::collection::vec(any::<u8>(), 0..128),
        bit in any::<u16>(),
    ) {
        let mut buf = vec![0u8; serialized_len(key.len(), value.len())];
        write_entry(&mut buf, EntryKind::Object, 1, 2, 3, &key, &value);
        let bit = bit as usize % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        match parse(&buf) {
            Err(_) => {}
            Ok((view, _)) => {
                // A flip inside the kind byte may map Object->Tombstone
                // with a checksum mismatch, etc.; any successful parse
                // would be a silent corruption.
                prop_assert!(
                    false,
                    "bit {bit} flipped silently: parsed kind {:?}",
                    view.kind
                );
            }
        }
    }

    /// Parsing never panics on arbitrary bytes (fuzz-style).
    #[test]
    fn parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        match parse(&bytes) {
            Ok((view, consumed)) => {
                prop_assert!(consumed <= bytes.len());
                prop_assert!(view.serialized_len() == consumed);
            }
            Err(ParseError::Truncated | ParseError::BadKind(_) | ParseError::BadChecksum { .. }) => {}
        }
    }

    /// Every appended entry stays readable at its returned reference, in
    /// order, across arbitrary segment sizes (head rolls included).
    #[test]
    fn log_append_read_consistency(
        segment_kb in 1usize..8,
        entries in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..40)),
            1..100,
        ),
    ) {
        let log = Log::new(LogConfig {
            segment_bytes: segment_kb * 256,
            max_segments: None,
        });
        let mut refs: Vec<(LogRef, u64, Vec<u8>)> = Vec::new();
        for (i, (hash, value)) in entries.iter().enumerate() {
            let key = (i as u32).to_le_bytes();
            let r = log
                .append(EntryKind::Object, 1, *hash, i as u64, &key, value)
                .expect("append");
            refs.push((r, *hash, value.clone()));
        }
        for (r, hash, value) in &refs {
            let e = log.entry(*r).expect("resolvable");
            prop_assert_eq!(e.key_hash, *hash);
            prop_assert_eq!(&e.value, value);
        }
        // Full iteration sees exactly the appended entries in order.
        let mut seen = Vec::new();
        log.for_each_entry(|_, v| seen.push(v.version));
        prop_assert_eq!(seen, (0..entries.len() as u64).collect::<Vec<_>>());
    }

    /// Side-log appends stay readable through the parent before and
    /// after commit, regardless of interleaving with main-log appends.
    #[test]
    fn sidelog_commit_preserves_entries(
        ops in proptest::collection::vec((any::<bool>(), any::<u64>()), 1..80),
    ) {
        let log = Arc::new(Log::new(LogConfig {
            segment_bytes: 512,
            max_segments: None,
        }));
        let side = SideLog::new(Arc::clone(&log));
        let mut refs = Vec::new();
        for (to_side, hash) in &ops {
            let r = if *to_side {
                side.append(EntryKind::Object, 1, *hash, 1, b"k", b"v").unwrap()
            } else {
                log.append(EntryKind::Object, 1, *hash, 1, b"k", b"v").unwrap()
            };
            refs.push((r, *hash));
        }
        for (r, hash) in &refs {
            prop_assert_eq!(log.entry(*r).expect("pre-commit").key_hash, *hash);
        }
        side.commit().unwrap();
        for (r, hash) in &refs {
            prop_assert_eq!(log.entry(*r).expect("post-commit").key_hash, *hash);
        }
    }
}

/// Model-based cleaner test: after arbitrary overwrite patterns and
/// repeated cleaning, exactly the latest version of every key survives.
#[derive(Default)]
struct ModelRelocator {
    current: HashMap<u64, LogRef>,
}

impl Relocator for ModelRelocator {
    fn disposition(
        &mut self,
        view: &rocksteady_logstore::EntryView<'_>,
        old: LogRef,
    ) -> Relocation {
        if view.kind != EntryKind::Object {
            return Relocation::Keep;
        }
        if self.current.get(&view.key_hash) == Some(&old) {
            Relocation::Keep
        } else {
            Relocation::Drop
        }
    }

    fn relocated(
        &mut self,
        view: &rocksteady_logstore::EntryView<'_>,
        _old: LogRef,
        new: LogRef,
    ) {
        self.current.insert(view.key_hash, new);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn cleaner_preserves_latest_versions(
        writes in proptest::collection::vec((0u64..32, any::<u8>()), 1..300),
        threshold in 0.3f64..1.0,
    ) {
        let log = Log::new(LogConfig {
            segment_bytes: 512,
            max_segments: None,
        });
        let mut reloc = ModelRelocator::default();
        let mut latest: HashMap<u64, (u64, u8)> = HashMap::new();
        for (version, (key, val)) in writes.iter().enumerate() {
            let r = log
                .append(
                    EntryKind::Object,
                    1,
                    *key,
                    version as u64,
                    &key.to_le_bytes(),
                    &[*val],
                )
                .unwrap();
            if let Some(old) = reloc.current.insert(*key, r) {
                log.mark_dead(old, 44);
            }
            latest.insert(*key, (version as u64, *val));
        }
        let cleaner = Cleaner {
            utilization_threshold: threshold,
            max_segments_per_pass: 2,
        };
        for _ in 0..200 {
            if cleaner.clean_once(&log, &mut reloc).unwrap().is_none() {
                break;
            }
        }
        for (key, (version, val)) in &latest {
            let r = reloc.current[key];
            let e = log.entry(r).unwrap_or_else(|| panic!("key {key} lost"));
            prop_assert_eq!(e.version, *version);
            prop_assert_eq!(e.value, vec![*val]);
        }
    }
}
