//! The simulated RAMCloud server (Figure 1): dispatch core, worker
//! cores, priority queues, master + backup, and the migration hooks.
//!
//! [`node::ServerNode`] is one server of the simulated cluster. It
//! reproduces RAMCloud's threading model precisely, because that model is
//! what the paper's results hang on (§3.1):
//!
//! - **One dispatch core** polls the network. Every inbound message costs
//!   dispatch time ([`CostModel::dispatch_per_msg_ns`]); messages queue
//!   when the dispatch core is busy — this is the resource that saturates
//!   in Figure 3.
//! - **W worker cores** execute tasks non-preemptively. An arriving task
//!   runs immediately if a worker is idle; otherwise it waits in a strict
//!   priority FIFO (PriorityPull > client ops > replay > background
//!   Pulls, §3.1/§4.1).
//! - The **migration manager** runs as a dispatch continuation
//!   (§3.1.2): pull scoreboarding and replay scheduling charge dispatch
//!   time, and replay batches go only to idle workers (built-in flow
//!   control).
//! - The **replication manager** is a serialized resource with the
//!   ~380 MB/s ceiling measured in §2.3; the durable-write path holds its
//!   worker until all replicas ack, which is what makes writes 15 µs.
//!
//! The storage substrate underneath does real work; the node charges
//! virtual time for the [`Work`](rocksteady_master::Work) receipts.
//!
//! [`CostModel::dispatch_per_msg_ns`]: rocksteady_common::CostModel::dispatch_per_msg_ns

pub mod node;
pub mod stats;

use rocksteady_common::{CostModel, ServerId};
use rocksteady_master::MasterConfig;
use rocksteady_simnet::ActorId;

pub use node::ServerNode;
pub use stats::{MigrationRunStamps, NodeStats};

pub use rocksteady_simnet::Directory;

/// Configuration for one simulated server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// This server's id.
    pub id: ServerId,
    /// Worker cores (the paper's testbed uses 12; scaled-down tests use
    /// fewer).
    pub workers: usize,
    /// The calibrated cost model.
    pub cost: CostModel,
    /// Master storage configuration.
    pub master: MasterConfig,
    /// Actor ids of the backups this master replicates to (normally the
    /// next `cost.replicas` servers in the ring).
    pub backup_actors: Vec<ActorId>,
    /// Migration protocol knobs.
    pub migration: rocksteady::MigrationConfig,
    /// Run a log-cleaner pass this often as a background task (`None`
    /// disables cleaning). RAMCloud's cleaner runs continuously; §2.3
    /// stresses that migration must coexist with it.
    pub cleaner_interval: Option<rocksteady_common::Nanos>,
}

impl ServerConfig {
    /// A reasonable test configuration for server `id` with `workers`
    /// worker cores (backups must be wired afterwards).
    pub fn new(id: ServerId, workers: usize) -> Self {
        ServerConfig {
            id,
            workers,
            cost: CostModel::default(),
            master: MasterConfig {
                id,
                ..MasterConfig::default()
            },
            backup_actors: Vec::new(),
            migration: rocksteady::MigrationConfig::default(),
            cleaner_interval: None,
        }
    }
}
