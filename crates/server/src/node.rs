//! The server actor: dispatch/worker scheduling and protocol glue.
//!
//! See the crate docs for the model. Approximations relative to real
//! hardware, all of which bias *against* Rocksteady or are
//! timing-neutral:
//!
//! - A task's real data-structure work executes when the task is
//!   *assigned* to a worker; its outputs (responses, follow-up RPCs) are
//!   released when the modeled service time elapses. State is therefore
//!   never stale by more than one service time (≤ a few µs).
//! - A durable write may occasionally be acknowledged while a covering
//!   replication chunk shipped by a *concurrent* write is still in
//!   flight; the bytes are identical and ordering per backup is
//!   preserved, so this shifts timing by at most one RTT and never
//!   changes recovered data.

use rocksteady_common::FxHashMap;
use std::collections::VecDeque;

use bytes::Bytes;
use rocksteady::{
    Action, BaselineAction, BaselineMigration, MigrationManager, MissOutcome, ReplayBatch,
    RetryCause,
};
use rocksteady_audit::{AuditKind, AuditSink, ReleaseVia};
use rocksteady_backup::BackupService;
use rocksteady_common::{CausalCtx, KeyHash, MigrationId, Nanos, RpcId, ServerId, TableId};
use rocksteady_logstore::SideLog;
use rocksteady_master::{MasterService, OpError, ReplayDest, TabletRole, Work};
use rocksteady_profiler::{Activity, Profiler};
use rocksteady_proto::msg::{BaselineOpts, SegmentImage};
use rocksteady_proto::{Body, Envelope, Priority, Record, Request, Response, Status};
use rocksteady_simnet::{Actor, ActorId, Ctx, Event};
use rocksteady_trace::{lanes, Tracer};

use crate::stats::StatsHandle;
use crate::{Directory, ServerConfig};

// Timer token kinds (low 8 bits).
const KIND_DISPATCH: u64 = 1;
const KIND_WORKER_DONE: u64 = 2;
const KIND_DEFERRED_SEND: u64 = 3;
const KIND_CLEANER: u64 = 4;

// Trace lanes (`tid` within this server's `pid`) follow the shared
// convention in [`rocksteady_trace::lanes`], also used by the
// critical-path walker in `rocksteady-profiler`. Lanes are chosen so
// spans sharing one never partially overlap: worker cores run one task
// at a time, each pull partition has one Pull in flight, PriorityPull
// batches are serialized by the batcher, and migration phases tile.

fn token(kind: u64, payload: u64) -> u64 {
    (payload << 8) | kind
}

/// A unit of worker work.
#[derive(Debug)]
enum Task {
    /// Service an inbound RPC.
    Rpc {
        src: ActorId,
        rpc: RpcId,
        req: Request,
        /// Causal context the request arrived with; inherited by any
        /// RPC this task issues on the requester's behalf (e.g. the
        /// PriorityPull a read miss spawns) and echoed on the response.
        cctx: CausalCtx,
    },
    /// One baseline-migration scan step (source).
    BaselineStep,
    /// Replay fetched segment images (crash recovery).
    RecoveryReplay {
        /// Key into the node's recovery table.
        recovery: u64,
    },
    /// One log-cleaner pass (background system task, §2.3).
    CleanerPass,
}

/// Effects released when a worker task's service time elapses.
#[derive(Debug)]
enum Deferred {
    /// Plain message send.
    Send(ActorId, Envelope),
    /// Tell the named migration's manager a replay finished.
    ReplayDone(MigrationId, Option<usize>),
    /// Schedule the next baseline scan step.
    BaselineContinue,
    /// Ship un-replicated log bytes to the backups; if `wait` is set the
    /// worker stays held and the named client is answered when all
    /// replica acks return (the durable-write path).
    ShipLog {
        wait: Option<(ActorId, RpcId, Response)>,
    },
}

#[derive(Debug, Default)]
struct WorkerState {
    busy: bool,
    /// Held past its service time (awaiting replication acks or a
    /// synchronous PriorityPull).
    held: bool,
    /// When the hold began (service end), for busy-time accounting —
    /// a blocked core is a busy core (§4.4 measures exactly this).
    hold_since: Nanos,
    deferred: Vec<Deferred>,
    /// The replay partition this worker is processing, if any.
    replay_partition: Option<Option<usize>>,
    /// Open trace span for the task on this core: (label, start).
    /// `Some` only while tracing is armed.
    trace_op: Option<(&'static str, Nanos)>,
    /// Open activity-ledger charge for the task on this core:
    /// (activity, start). `Some` only while the profiler is armed.
    ledger_op: Option<(Activity, Nanos)>,
    /// Causal context of the RPC currently on this core
    /// ([`CausalCtx::NONE`] for system tasks); [`ServerNode::defer_send`]
    /// echoes it on the response envelope.
    cur_ctx: CausalCtx,
}

/// What an outstanding outbound RPC means to us.
#[derive(Debug)]
enum Pending {
    Pull {
        mig: MigrationId,
        partition: usize,
    },
    PriorityPull {
        mig: MigrationId,
        hashes: Vec<KeyHash>,
    },
    SyncPriorityPull(SyncWait),
    Prepare {
        mig: MigrationId,
    },
    MigStartAck {
        mig: MigrationId,
    },
    MigCompleteAck,
    /// A replication chunk; `waiters` lists ack groups to credit.
    ReplAck {
        group: Option<u64>,
    },
    PushRecords,
    BaselineTransferAck,
    FetchSegments {
        recovery: u64,
    },
}

#[derive(Debug)]
struct SyncWait {
    worker: usize,
    client: ActorId,
    client_rpc: RpcId,
    table: TableId,
    hash: KeyHash,
    key: Bytes,
    /// The blocked read's causal context, echoed on its response.
    cctx: CausalCtx,
}

/// A group of replication acks someone waits on.
#[derive(Debug)]
struct AckGroup {
    remaining: u32,
    /// Worker to release.
    worker: Option<usize>,
    /// Client to answer.
    respond: Option<(ActorId, RpcId, Response)>,
}

struct MigrationRun {
    /// Cluster-wide id of this run; keys every piece of per-run state.
    id: MigrationId,
    mgr: MigrationManager,
    source_actor: ActorId,
    client: Option<(ActorId, RpcId)>,
    /// Per-worker side logs for this run's replays (§3.1.3). Per run so
    /// overlapping migrations never mix side segments: each run commits
    /// (or abandons) exactly its own.
    sidelogs: Vec<Option<SideLog>>,
    /// Wall-clock anchors of this run's trace spans (`Some` only while
    /// tracing is armed).
    mig_trace: Option<MigTrace>,
    /// Outstanding Pull rpc → (send time, partition), for pull spans.
    pull_span_start: FxHashMap<u64, (Nanos, usize)>,
    /// Outstanding PriorityPull rpc → (send time, batch size).
    pp_span_start: FxHashMap<u64, (Nanos, u64)>,
    /// Causal context of the waiting read that asked for each hash, so
    /// the batched PriorityPull that eventually covers it inherits the
    /// read's trace id (first hash in batch order wins as the batch's
    /// representative — deterministic, no clock, no RNG).
    pp_ctx: FxHashMap<KeyHash, CausalCtx>,
}

struct BaselineRun {
    mig: BaselineMigration,
    target_actor: ActorId,
    opts: BaselineOpts,
}

struct RecoveryRun {
    table: TableId,
    range: rocksteady_common::HashRange,
    coordinator_rpc: (ActorId, RpcId),
    pending_fetches: u32,
    images: FxHashMap<u64, Bytes>,
    /// Whose log we are recovering, and from which segment on — kept so
    /// a fetch to a dead backup can be re-issued elsewhere.
    crashed: ServerId,
    from_segment: u64,
    /// The coordinator's backup list for `crashed`.
    backups: Vec<ServerId>,
    /// Backups that died while we were fetching from them.
    failed_backups: Vec<ServerId>,
}

/// Per-RPC latency decomposition, recorded only while tracing is on.
/// Keyed by `(src, rpc)`; finalized (and emitted) when the response is
/// handed to the NIC.
#[derive(Debug)]
struct RpcSpan {
    name: &'static str,
    /// When the requester's NIC accepted the request (stamped by the
    /// simnet kernel into `Envelope::sent_at`).
    sent_at: Nanos,
    /// When the request entered our rx queue.
    arrived: Nanos,
    /// When a worker started servicing it (0 until assigned).
    assigned: Nanos,
    /// Predicted end of worker service (assignment + service time).
    service_end: Nanos,
    /// NIC serialization + queueing delay of the inbound request
    /// (`departed_at - sent_at`, stamped by the kernel).
    nic_in: Nanos,
    /// Causal context the request carried; stamped as `trace`/`hop`
    /// args on the decomposition instant so journeys can be stitched.
    cctx: CausalCtx,
}

/// Arrival stamps of an inbound request, captured once on the dispatch
/// core and threaded to wherever the RPC span is opened.
#[derive(Debug, Clone, Copy)]
struct InStamps {
    /// When the requester's NIC accepted the request.
    sent_at: Nanos,
    /// When the request entered our rx queue.
    arrived: Nanos,
    /// Inbound NIC serialization + queueing (`departed_at - sent_at`).
    nic_in: Nanos,
    /// Causal context the request envelope carried.
    cctx: CausalCtx,
}

/// Wall-clock anchors of the in-progress migration's trace spans.
#[derive(Debug)]
struct MigTrace {
    started: Nanos,
    phase_start: Nanos,
}

/// Accumulated bookkeeping for one dispatch quantum: a maximal run of
/// back-to-back dispatch polls (each firing exactly at the previous
/// poll's busy horizon, so the covered interval `[start, start + busy)`
/// is contiguous). Stats-counter adds and profiler charges coalesce here
/// and flush once per quantum; because the polls tile the interval with
/// no gaps, the lumped profiler charge lands in exactly the same buckets
/// the per-poll charges would have, and the counter totals are
/// identical — only the per-message host cost is amortized away.
#[derive(Debug, Default, Clone, Copy)]
struct DispatchLedger {
    /// Virtual time the open quantum's first poll fired.
    start: Nanos,
    /// Total dispatch busy time accrued by the quantum's polls.
    busy: Nanos,
    /// Portion of `busy` that is outbound-tx cost.
    tx: Nanos,
    /// Portion of `busy` spent in migration-manager polls.
    mgr: Nanos,
    /// Polls coalesced so far; zero means the ledger is closed.
    polls: u32,
}

/// Upper bound on polls per quantum, so a saturated dispatch core still
/// publishes its busy counter at a bounded staleness (the harness
/// sampler windows the counter every millisecond; a full quantum is a
/// few microseconds of busy time).
const DISPATCH_QUANTUM_POLLS: u32 = 64;

/// One simulated RAMCloud server (master + backup + dispatch/workers).
pub struct ServerNode {
    /// Static configuration.
    pub cfg: ServerConfig,
    dir: Directory,
    /// The master component (public for harness preloading).
    pub master: MasterService,
    /// The backup component.
    pub backup: BackupService,
    stats: StatsHandle,

    // Dispatch.
    rx_queue: VecDeque<(ActorId, Nanos, Envelope)>,
    dispatch_busy_until: Nanos,
    dispatch_scheduled: bool,
    /// Cost accumulated while handling the current dispatch event.
    dispatch_charge: Nanos,
    /// Portion of `dispatch_charge` that is outbound-tx cost, kept for
    /// the profiler's rx/tx split (reset whenever `dispatch_charge` is).
    dispatch_charge_tx: Nanos,
    /// Portion of `dispatch_charge` spent in migration-manager polls.
    dispatch_charge_mgr: Nanos,
    /// Batch-amortized dispatch bookkeeping: per-poll charges accrue
    /// here and flush to the stats counter and profiler once per
    /// dispatch *quantum* — a maximal back-to-back run of dispatch
    /// polls — instead of once per message.
    dispatch_ledger: DispatchLedger,

    // Workers.
    workers: Vec<WorkerState>,
    queues: [VecDeque<Task>; rocksteady_proto::msg::PRIORITY_LEVELS],

    // Outbound RPC state.
    next_rpc: u64,
    outstanding: FxHashMap<RpcId, Pending>,
    /// Destination actor of each outstanding RPC, for crash failover.
    rpc_dst: FxHashMap<RpcId, ActorId>,

    // Replication manager (serialized §2.3 resource). Foreground
    // (write-path) replication preempts bulk (lazy re-replication)
    // traffic: bulk chunks queue behind both lanes, foreground only
    // behind itself.
    repl_free_at: Nanos,
    repl_bulk_free_at: Nanos,
    repl_cursor: FxHashMap<u64, usize>,
    deferred_sends: FxHashMap<u64, (ActorId, Envelope)>,
    next_deferred: u64,
    ack_groups: FxHashMap<u64, AckGroup>,
    next_group: u64,

    // Migration state: every in-flight run this node is the target of,
    // in admission order. Disjoint ranges only (overlap is rejected at
    // admission); a node may simultaneously serve as pull *source* for
    // other migrations, which needs no state here (pull service is
    // stateless on the source).
    migrations: Vec<MigrationRun>,
    /// Replay batches swallowed by the `test_defer_replay` fault hook:
    /// held here (never replayed) so the gather→replay backlog grows
    /// while pulls keep flowing. Always empty outside fault tests.
    deferred_replay_faults: Vec<ReplayBatch>,
    baseline: Option<BaselineRun>,
    /// In-flight crash recoveries, keyed by the coordinator's RPC id
    /// (several tablets may recover onto this master concurrently).
    recoveries: FxHashMap<u64, RecoveryRun>,

    // Tracing (zero-cost when disarmed: every site is gated on one
    // `Option` discriminant check).
    trace: Tracer,
    rpc_spans: FxHashMap<(ActorId, u64), RpcSpan>,

    // Profiling (same zero-cost-off contract as `trace`): the per-core
    // activity ledger every charge lands in.
    profiler: Profiler,

    // Protocol auditing (same zero-cost-off contract): ownership
    // transitions, version-floor raises, and gather/replay counts feed
    // the cluster-wide invariant auditor.
    audit: AuditSink,
}

impl ServerNode {
    /// Creates a server; `dir` provides actor wiring, `stats` is shared
    /// with the harness, `trace` with the trace exporter, `profiler`
    /// with the activity-ledger exporter, and `audit` with the protocol
    /// auditor (pass [`Tracer::off`] / [`Profiler::off`] /
    /// [`AuditSink::off`] to compile those paths down to one branch).
    pub fn new(
        cfg: ServerConfig,
        dir: Directory,
        stats: StatsHandle,
        trace: Tracer,
        profiler: Profiler,
        audit: AuditSink,
    ) -> Self {
        // Register every core up front so never-scheduled cores still
        // export (as all-idle).
        for core in 0..=cfg.workers as u32 {
            profiler.register_core(cfg.id.0, core);
        }
        let workers = (0..cfg.workers).map(|_| WorkerState::default()).collect();
        let master = MasterService::new(cfg.master.clone());
        let backup = BackupService::new(cfg.id);
        ServerNode {
            master,
            backup,
            dir,
            stats,
            rx_queue: VecDeque::new(),
            dispatch_busy_until: 0,
            dispatch_scheduled: false,
            dispatch_charge: 0,
            dispatch_charge_tx: 0,
            dispatch_charge_mgr: 0,
            dispatch_ledger: DispatchLedger::default(),
            workers,
            queues: Default::default(),
            next_rpc: 1,
            outstanding: FxHashMap::default(),
            rpc_dst: FxHashMap::default(),
            repl_free_at: 0,
            repl_bulk_free_at: 0,
            repl_cursor: FxHashMap::default(),
            deferred_sends: FxHashMap::default(),
            next_deferred: 1,
            ack_groups: FxHashMap::default(),
            next_group: 1,
            migrations: Vec::new(),
            deferred_replay_faults: Vec::new(),
            baseline: None,
            recoveries: FxHashMap::default(),
            trace,
            rpc_spans: FxHashMap::default(),
            profiler,
            audit,
            cfg,
        }
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> StatsHandle {
        std::rc::Rc::clone(&self.stats)
    }

    /// Marks everything currently in the log as already replicated.
    /// Harness-only: used after preloaded data has been copied onto the
    /// backups directly, so the replication manager doesn't re-ship it.
    pub fn mark_log_durable(&mut self) {
        for seg in self.master.log.segments_snapshot() {
            self.repl_cursor.insert(seg.id(), seg.committed());
        }
    }

    // ------------------------------------------------------------ sends --

    fn alloc_rpc(&mut self, pending: Pending) -> RpcId {
        let id = RpcId(self.next_rpc);
        self.next_rpc += 1;
        self.outstanding.insert(id, pending);
        id
    }

    /// Allocates an RPC bound for `dst`, recording the destination so a
    /// crash notification can fail it over.
    fn alloc_rpc_to(&mut self, dst: ActorId, pending: Pending) -> RpcId {
        let id = self.alloc_rpc(pending);
        self.rpc_dst.insert(id, dst);
        id
    }

    fn send(&mut self, ctx: &mut Ctx<'_, Envelope>, dst: ActorId, env: Envelope) {
        self.dispatch_charge += self.cfg.cost.dispatch_tx_per_msg_ns;
        self.dispatch_charge_tx += self.cfg.cost.dispatch_tx_per_msg_ns;
        ctx.send(dst, env);
    }

    /// Ledgers dispatch-core cost accrued *outside* a dispatch event
    /// (worker-completion sends, deferred replication sends, cleaner
    /// scheduling). The busy-counter semantics are untouched — the next
    /// dispatch event has always overwritten this accumulator, so these
    /// nanoseconds never reached `dispatch_busy_ns` — but the ledger
    /// records them, and any overlap with an already-charged dispatch
    /// interval surfaces as overcommit instead of disappearing.
    fn flush_offdispatch_charges(&mut self, now: Nanos) {
        // Off-dispatch charges land at `now`, which may sit past an open
        // dispatch quantum's start — flush the quantum first so the
        // profiler's cursor sees both in time order.
        self.flush_dispatch_ledger();
        if self.profiler.is_on() {
            let (tx, mgr) = (self.dispatch_charge_tx, self.dispatch_charge_mgr);
            let id = self.cfg.id.0;
            self.profiler.charge(id, 0, Activity::DispatchTx, now, tx);
            self.profiler
                .charge(id, 0, Activity::MigrationMgr, now + tx, mgr);
        }
        self.dispatch_charge = 0;
        self.dispatch_charge_tx = 0;
        self.dispatch_charge_mgr = 0;
    }

    fn respond(&mut self, ctx: &mut Ctx<'_, Envelope>, dst: ActorId, rpc: RpcId, resp: Response) {
        if self.trace.is_on() {
            self.finalize_rpc_span(ctx.now(), ctx.self_id(), dst, rpc);
        }
        self.send(ctx, dst, Envelope::resp(rpc, resp));
    }

    /// Like [`Self::respond`], but echoes the request's causal context
    /// on the response envelope (used where the worker's current-task
    /// context is not in scope, e.g. the sync PriorityPull completion).
    fn respond_ctx(
        &mut self,
        ctx: &mut Ctx<'_, Envelope>,
        dst: ActorId,
        rpc: RpcId,
        resp: Response,
        cctx: CausalCtx,
    ) {
        if self.trace.is_on() {
            self.finalize_rpc_span(ctx.now(), ctx.self_id(), dst, rpc);
        }
        self.send(ctx, dst, Envelope::resp(rpc, resp).with_ctx(cctx));
    }

    /// Emits the per-RPC latency-decomposition instant when a response
    /// is handed to the NIC. The four server-side segments telescope:
    /// `net_in + queue + service + hold = resp_sent − sent_at`, so a
    /// client that stamps issue/complete times can account for every
    /// nanosecond of its observed latency.
    fn finalize_rpc_span(&mut self, now: Nanos, self_id: ActorId, dst: ActorId, rpc: RpcId) {
        let Some(span) = self.rpc_spans.remove(&(dst, rpc.0)) else {
            return; // control-plane RPC or tracing armed mid-flight
        };
        if span.assigned == 0 {
            return; // never serviced (answered straight from dispatch)
        }
        // A hold can be cut short by a failover arriving mid-service;
        // saturate rather than underflow in that corner.
        let service_end = span.service_end.min(now);
        let mut args = vec![
            ("src", dst as u64),
            ("rpc", rpc.0),
            ("sent_at", span.sent_at),
            ("arrived", span.arrived),
            ("assigned", span.assigned),
            ("service_end", service_end),
            ("resp_sent", now),
            ("net_in", span.arrived - span.sent_at),
            ("nic_in", span.nic_in),
            ("queue", span.assigned - span.arrived),
            ("service", service_end - span.assigned),
            ("hold", now - service_end),
        ];
        if span.cctx.trace_id.is_some() {
            args.push(("trace", span.cctx.trace_id.0));
            args.push(("hop", span.cctx.hop as u64));
        }
        self.trace
            .instant(span.name, "rpc", self_id as u64, lanes::RPC, now, args);
        // Close the flow edge the requester opened at send time: the
        // arrow ties the client's (or PriorityPull issuer's) lane to
        // this server's decomposition instant in the chrome view.
        if span.cctx.trace_id.is_some() {
            self.trace.flow(
                "rpc-flow",
                "flow",
                self_id as u64,
                lanes::RPC,
                now,
                false,
                span.cctx.trace_id.0 ^ rpc.0,
                vec![("trace", span.cctx.trace_id.0)],
            );
        }
    }

    /// The one place retry hints are computed (satellite: previously
    /// each miss path rolled its own, with jitter in `[0, base)` —
    /// doubling the documented mean hint — while recovery paths sent
    /// none at all). Base comes from [`MigrationConfig::retry_base`];
    /// jitter is uniform in `[0, base/2)` so the hint lands in
    /// `[base, 1.5·base)`.
    fn retry_hint(&mut self, ctx: &mut Ctx<'_, Envelope>, cause: RetryCause) -> Response {
        let base = self.cfg.migration.retry_base(cause);
        let after = base + ctx.rng.next_below((base / 2).max(1));
        let sent = self.stats.retry_hints_sent.inc();
        if self.trace.is_on() {
            self.trace
                .counter("retry-hints", ctx.self_id() as u64, ctx.now(), sent);
        }
        Response::Err(Status::Retry { after })
    }

    // ------------------------------------------------- dispatch machinery --

    fn ensure_dispatch(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        if self.dispatch_scheduled || self.rx_queue.is_empty() {
            return;
        }
        self.dispatch_scheduled = true;
        let delay = self.dispatch_busy_until.saturating_sub(ctx.now());
        ctx.timer(delay, token(KIND_DISPATCH, 0));
    }

    fn on_dispatch_timer(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        self.dispatch_scheduled = false;
        let Some((src, arrived, env)) = self.rx_queue.pop_front() else {
            self.flush_dispatch_ledger();
            return;
        };
        // A poll firing past the previous busy horizon means the chain
        // broke with an idle gap: the open quantum's interval ends here,
        // so flush it before starting a new one.
        if ctx.now() > self.dispatch_busy_until {
            self.flush_dispatch_ledger();
        }
        if self.dispatch_ledger.polls == 0 {
            self.dispatch_ledger.start = ctx.now();
        }
        self.dispatch_charge = self.cfg.cost.dispatch_per_msg_ns;
        self.dispatch_charge_tx = 0;
        self.dispatch_charge_mgr = 0;
        let stamps = InStamps {
            sent_at: env.sent_at,
            arrived,
            nic_in: env.departed_at.saturating_sub(env.sent_at),
            cctx: env.ctx,
        };
        match env.body {
            Body::Req(req) => self.on_request(ctx, src, env.rpc, req, stamps),
            Body::Resp(resp) => self.on_response(ctx, env.rpc, resp, stamps.nic_in),
        }
        self.try_assign(ctx);
        // Accrue this poll's dispatch time into the quantum ledger and
        // chain the next poll. The busy horizon still advances per
        // message — only the bookkeeping is batched.
        let charge = self.dispatch_charge;
        self.dispatch_charge = 0;
        self.dispatch_ledger.busy += charge;
        self.dispatch_ledger.tx += self.dispatch_charge_tx;
        self.dispatch_ledger.mgr += self.dispatch_charge_mgr;
        self.dispatch_ledger.polls += 1;
        self.dispatch_charge_tx = 0;
        self.dispatch_charge_mgr = 0;
        self.dispatch_busy_until = ctx.now() + charge;
        if self.rx_queue.is_empty() || self.dispatch_ledger.polls >= DISPATCH_QUANTUM_POLLS {
            self.flush_dispatch_ledger();
        }
        self.ensure_dispatch(ctx);
    }

    /// Flushes the open dispatch quantum: one stats-counter add and one
    /// profiler rx/tx/manager charge triple for the whole back-to-back
    /// poll run (the split is attribution, not a schedule).
    fn flush_dispatch_ledger(&mut self) {
        if self.dispatch_ledger.polls == 0 {
            return;
        }
        let l = std::mem::take(&mut self.dispatch_ledger);
        self.stats.dispatch_busy_ns.add(l.busy);
        if self.profiler.is_on() {
            let rx = l.busy.saturating_sub(l.tx + l.mgr);
            let id = self.cfg.id.0;
            self.profiler
                .charge(id, 0, Activity::DispatchRx, l.start, rx);
            self.profiler
                .charge(id, 0, Activity::DispatchTx, l.start + rx, l.tx);
            self.profiler
                .charge(id, 0, Activity::MigrationMgr, l.start + rx + l.tx, l.mgr);
        }
    }

    // ---------------------------------------------------- request intake --

    fn on_request(
        &mut self,
        ctx: &mut Ctx<'_, Envelope>,
        src: ActorId,
        rpc: RpcId,
        req: Request,
        stamps: InStamps,
    ) {
        match req {
            // Control-plane requests are cheap and handled right on the
            // dispatch core.
            Request::PrepareMigration {
                table,
                range,
                target,
            } => {
                // Test-only fault injection (see `MigrationConfig`):
                // answer with the ceiling but keep serving the range, so
                // the audit layer's single-owner check has a real split
                // brain to catch.
                let resp = if self.cfg.migration.test_skip_source_flip {
                    Some(self.master.version_ceiling())
                } else {
                    rocksteady::source::handle_prepare(&mut self.master, table, range, target)
                };
                let resp = match resp {
                    Some(version_ceiling) => {
                        if self.audit.is_on() && !self.cfg.migration.test_skip_source_flip {
                            self.audit.emit(
                                ctx.now(),
                                AuditKind::NodeRelease {
                                    server: self.cfg.id,
                                    table,
                                    range,
                                    via: ReleaseVia::PrepareFlip,
                                },
                            );
                        }
                        Response::PrepareMigrationOk { version_ceiling }
                    }
                    None => Response::Err(Status::UnknownTablet),
                };
                self.respond(ctx, src, rpc, resp);
            }
            Request::MigrateTablet {
                id,
                table,
                range,
                source,
            } => {
                // Admission: reject a run that would overlap an
                // in-flight migration's range on this target (or reuse
                // its id). Disjoint concurrent runs are accepted — a node
                // may be the replay target of several migrations at once.
                if self
                    .migrations
                    .iter()
                    .any(|r| r.id == id || (r.mgr.table == table && r.mgr.range.overlaps(&range)))
                {
                    self.respond(ctx, src, rpc, Response::Err(Status::MigrationInProgress));
                    return;
                }
                // Ownership (locally) from the very start: reads miss into
                // the PriorityPull path, writes are accepted (§3).
                self.master
                    .add_tablet(table, range, TabletRole::PullingFrom { source });
                let lineage = self.master.log.head_segment_id();
                let mut mgr = MigrationManager::new(
                    table,
                    range,
                    source,
                    lineage,
                    self.cfg.migration.clone(),
                );
                let source_actor = self.dir.actor_of(source);
                let first = mgr.begin();
                self.stats.begin_migration_run(id, ctx.now());
                if self.audit.is_on() {
                    self.audit.emit(
                        ctx.now(),
                        AuditKind::MigrationAdmitted {
                            id,
                            table,
                            range,
                            source,
                            target: self.cfg.id,
                        },
                    );
                }
                let mig_trace = self.trace.is_on().then(|| MigTrace {
                    started: ctx.now(),
                    phase_start: ctx.now(),
                });
                self.migrations.push(MigrationRun {
                    id,
                    mgr,
                    source_actor,
                    client: Some((src, rpc)),
                    sidelogs: (0..self.cfg.workers).map(|_| None).collect(),
                    mig_trace,
                    pull_span_start: FxHashMap::default(),
                    pp_span_start: FxHashMap::default(),
                    pp_ctx: FxHashMap::default(),
                });
                self.run_migration_actions(ctx, id, vec![first]);
            }
            Request::MigrateTabletBaseline {
                table,
                range,
                target,
                opts,
            } => {
                let Some(mig) = BaselineMigration::new(
                    &mut self.master,
                    table,
                    range,
                    target,
                    opts,
                    self.cfg.migration.pull_budget_bytes as u64,
                ) else {
                    self.respond(ctx, src, rpc, Response::Err(Status::UnknownTablet));
                    return;
                };
                self.stats.begin_migration(ctx.now());
                self.baseline = Some(BaselineRun {
                    mig,
                    target_actor: self.dir.actor_of(target),
                    opts,
                });
                self.queues[Priority::Background as usize].push_back(Task::BaselineStep);
                self.respond(ctx, src, rpc, Response::MigrateTabletOk);
            }
            Request::RecoverTablet {
                table,
                range,
                crashed,
                backups,
                from_segment,
                merge,
            } => {
                // Block client traffic on the range until the replicated
                // log has been merged: accepting a write before the
                // replay would let it carry a version below what the
                // dead participant already acknowledged (§3.4).
                if merge {
                    if self
                        .master
                        .set_tablet_role(table, range, TabletRole::Recovering)
                    {
                        // We were serving this range (e.g. as a migration
                        // target); replay now blocks it.
                        if self.audit.is_on() {
                            self.audit.emit(
                                ctx.now(),
                                AuditKind::NodeRelease {
                                    server: self.cfg.id,
                                    table,
                                    range,
                                    via: ReleaseVia::RecoveryBlock,
                                },
                            );
                        }
                    } else {
                        self.master.add_tablet(table, range, TabletRole::Recovering);
                    }
                    // A migration we were running for this range is moot:
                    // the coordinator's recovery plan supersedes it.
                    // Overlapping runs are impossible (admission), so at
                    // most one matches; other in-flight runs continue.
                    if let Some(mig) = self
                        .migrations
                        .iter()
                        .find(|run| run.mgr.table == table && run.mgr.range == range)
                        .map(|run| run.id)
                    {
                        self.abandon_migration(ctx, mig, "mig:abandoned-superseded");
                    }
                } else {
                    self.master.add_tablet(table, range, TabletRole::Recovering);
                }
                let key = rpc.0;
                let mut pending = 0u32;
                for b in &backups {
                    let dst = self.dir.actor_of(*b);
                    let id = self.alloc_rpc_to(dst, Pending::FetchSegments { recovery: key });
                    pending += 1;
                    self.send(
                        ctx,
                        dst,
                        Envelope::req(
                            id,
                            Request::FetchSegments {
                                owner: crashed,
                                min_segment: from_segment,
                            },
                        ),
                    );
                }
                self.recoveries.insert(
                    key,
                    RecoveryRun {
                        table,
                        range,
                        coordinator_rpc: (src, rpc),
                        pending_fetches: pending,
                        images: FxHashMap::default(),
                        crashed,
                        from_segment,
                        backups,
                        failed_backups: Vec::new(),
                    },
                );
                if pending == 0 {
                    self.queues[Priority::Replay as usize]
                        .push_back(Task::RecoveryReplay { recovery: key });
                }
            }
            Request::NotifyServerDown { server } => {
                self.on_server_down(ctx, server);
                self.respond(ctx, src, rpc, Response::Ok);
            }
            // Everything else runs on a worker.
            other => {
                if self.trace.is_on() {
                    self.rpc_spans.insert(
                        (src, rpc.0),
                        RpcSpan {
                            name: other.name(),
                            sent_at: stamps.sent_at,
                            arrived: stamps.arrived,
                            assigned: 0,
                            service_end: 0,
                            nic_in: stamps.nic_in,
                            cctx: stamps.cctx,
                        },
                    );
                }
                let priority = other.priority();
                self.queues[priority as usize].push_back(Task::Rpc {
                    src,
                    rpc,
                    req: other,
                    cctx: stamps.cctx,
                });
            }
        }
    }

    // ------------------------------------------------- response handling --

    fn on_response(&mut self, ctx: &mut Ctx<'_, Envelope>, rpc: RpcId, resp: Response, nic: Nanos) {
        let Some(pending) = self.outstanding.remove(&rpc) else {
            return; // late/duplicate response
        };
        self.rpc_dst.remove(&rpc);
        match (pending, resp) {
            (Pending::Prepare { mig }, Response::PrepareMigrationOk { version_ceiling }) => {
                self.master.raise_version_floor(version_ceiling);
                if self.audit.is_on() {
                    self.audit.emit(
                        ctx.now(),
                        AuditKind::VersionFloor {
                            server: self.cfg.id,
                            floor: self.master.version_ceiling(),
                        },
                    );
                }
                let prepared = match self.run_mut(mig) {
                    Some(run) => Some((run.mgr.on_prepared(), run.mgr.phase().name())),
                    None => None,
                };
                if let Some((action, label)) = prepared {
                    self.mig_phase_span(ctx.now(), ctx.self_id(), mig, label);
                    self.run_migration_actions(ctx, mig, vec![action]);
                }
            }
            (Pending::MigStartAck { mig }, Response::Ok) => {
                let mut registered = None;
                let mut client = None;
                if let Some(run) = self.run_mut(mig) {
                    run.mgr.on_registered();
                    registered = Some(run.mgr.phase().name());
                    client = run.client.take();
                }
                if let Some((c, client_rpc)) = client {
                    self.respond(ctx, c, client_rpc, Response::MigrateTabletOk);
                }
                if let Some(label) = registered {
                    self.mig_phase_span(ctx.now(), ctx.self_id(), mig, label);
                }
                self.poll_and_run_migrations(ctx);
            }
            (Pending::MigCompleteAck, _) => {}
            (Pending::Pull { mig, partition }, Response::PullOk { records, next }) => {
                let wire: u64 = records.iter().map(Record::wire_size).sum();
                self.stats.bytes_migrated_in.add(wire);
                let span = self
                    .run_mut(mig)
                    .and_then(|r| r.pull_span_start.remove(&rpc.0));
                if let Some((t0, part)) = span {
                    self.trace.span(
                        "mig:pull",
                        "migration",
                        ctx.self_id() as u64,
                        lanes::pull(part),
                        t0,
                        ctx.now() - t0,
                        vec![
                            ("records", records.len() as u64),
                            ("bytes", wire),
                            ("resp_nic", nic),
                        ],
                    );
                }
                if self.audit.is_on() {
                    self.audit.emit(
                        ctx.now(),
                        AuditKind::Gathered {
                            id: mig,
                            partition: partition as u64,
                            records: records.len() as u64,
                            priority: false,
                        },
                    );
                }
                self.stats.migration_gathered(mig, records.len() as u64);
                if let Some(run) = self.run_mut(mig) {
                    run.mgr.on_pull_response(partition, records, next, wire);
                }
                self.poll_and_run_migrations(ctx);
            }
            (Pending::PriorityPull { mig, hashes }, Response::PriorityPullOk { records }) => {
                let wire: u64 = records.iter().map(Record::wire_size).sum();
                self.stats.bytes_migrated_in.add(wire);
                let span = self
                    .run_mut(mig)
                    .and_then(|r| r.pp_span_start.remove(&rpc.0));
                if let Some((t0, batch)) = span {
                    self.trace.span(
                        "mig:priority-pull",
                        "migration",
                        ctx.self_id() as u64,
                        lanes::PRIORITY_PULL,
                        t0,
                        ctx.now() - t0,
                        vec![
                            ("hashes", batch),
                            ("records", records.len() as u64),
                            ("resp_nic", nic),
                        ],
                    );
                }
                if self.audit.is_on() {
                    self.audit.emit(
                        ctx.now(),
                        AuditKind::Gathered {
                            id: mig,
                            partition: u64::MAX,
                            records: records.len() as u64,
                            priority: true,
                        },
                    );
                }
                self.stats.migration_gathered(mig, records.len() as u64);
                if let Some(run) = self.run_mut(mig) {
                    run.mgr.on_priority_pull_response(&hashes, records);
                }
                self.poll_and_run_migrations(ctx);
            }
            (Pending::SyncPriorityPull(wait), Response::PriorityPullOk { records }) => {
                self.finish_sync_priority_pull(ctx, wait, records);
            }
            (Pending::ReplAck { group: Some(gid) }, _) => {
                self.credit_ack_group(ctx, gid);
            }
            (Pending::ReplAck { group: None }, _) => {}
            (Pending::PushRecords, Response::PushRecordsOk) if self.baseline.is_some() => {
                // Window of 1: next scan step now that the target acked.
                self.queues[Priority::Background as usize].push_back(Task::BaselineStep);
            }
            (Pending::PushRecords, Response::PushRecordsOk) => {}
            (Pending::BaselineTransferAck, _) => {
                if let Some(run) = &mut self.baseline {
                    run.mig.on_ownership_transferred(&mut self.master);
                    self.stats.migration_finished_at.set(ctx.now());
                }
                self.baseline = None;
            }
            (Pending::FetchSegments { recovery }, Response::SegmentsOk { segments }) => {
                self.on_segments(ctx, recovery, segments);
            }
            // Error responses on protocol RPCs: drop the related state
            // rather than wedging (e.g. source died mid-migration; the
            // coordinator's crash handling takes over).
            (Pending::SyncPriorityPull(wait), _) => {
                let resp = self.retry_hint(ctx, RetryCause::SourceFailover);
                self.respond(ctx, wait.client, wait.client_rpc, resp);
                self.release_worker(ctx, wait.worker);
            }
            // The coordinator (or the source) rejected the run — an
            // overlapping migration won the race, or ownership was stale.
            // Previously this fell into the catch-all and the run wedged
            // forever with its requester unanswered; drop it instead.
            (Pending::MigStartAck { mig }, _) | (Pending::Prepare { mig }, _) => {
                self.abandon_migration(ctx, mig, "mig:abandoned-rejected");
            }
            _ => {}
        }
    }

    fn run_mut(&mut self, id: MigrationId) -> Option<&mut MigrationRun> {
        self.migrations.iter_mut().find(|r| r.id == id)
    }

    fn on_segments(
        &mut self,
        ctx: &mut Ctx<'_, Envelope>,
        recovery: u64,
        segments: Vec<SegmentImage>,
    ) {
        let Some(rec) = self.recoveries.get_mut(&recovery) else {
            return;
        };
        for img in segments {
            let entry = rec.images.entry(img.id).or_insert_with(|| img.data.clone());
            if img.data.len() > entry.len() {
                *entry = img.data;
            }
        }
        rec.pending_fetches -= 1;
        if rec.pending_fetches == 0 {
            self.queues[Priority::Replay as usize].push_back(Task::RecoveryReplay { recovery });
            self.try_assign(ctx);
        }
    }

    // -------------------------------------------------- worker machinery --

    /// Any idle worker, including the reserved one.
    fn idle_worker_any(&self) -> Option<usize> {
        self.workers.iter().position(|w| !w.busy)
    }

    /// An idle worker excluding worker 0. Worker 0 is reserved away from
    /// tasks that can *hold* a core while waiting on another server
    /// (durable writes awaiting replication acks, synchronous
    /// PriorityPulls) — without the reserve, a ring of fully-loaded
    /// servers deadlocks: every core held awaiting an ack that only
    /// another held core could produce. Non-holding work (reads, pulls,
    /// replay, replication service) runs on any core.
    fn idle_worker_nonreserved(&self) -> Option<usize> {
        let skip = usize::from(self.workers.len() > 1);
        self.workers
            .iter()
            .enumerate()
            .skip(skip)
            .find(|(_, w)| !w.busy)
            .map(|(i, _)| i)
    }

    fn idle_workers(&self) -> usize {
        self.workers.iter().filter(|w| !w.busy).count()
    }

    /// Whether a task can hold its worker past its service time, waiting
    /// on a remote ack (see [`Self::idle_worker_nonreserved`]).
    fn may_hold(&self, task: &Task) -> bool {
        match task {
            Task::Rpc { req, .. } => match req {
                Request::Write { .. } | Request::Delete { .. } => true,
                Request::PushRecords {
                    replay: true,
                    rereplicate: true,
                    ..
                } => true,
                Request::Read { .. } => self.cfg.migration.sync_priority_pulls,
                _ => false,
            },
            _ => false,
        }
    }

    fn try_assign(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        // Strict priority: Urgent, Foreground, then the migration
        // manager's held replay batches, then Replay/Background queues
        // (§3.1, §3.1.2). Hold-capable tasks never take the reserved
        // worker.
        loop {
            let mut assigned = false;
            for q in 0..self.queues.len() {
                let Some(front) = self.queues[q].front() else {
                    if q == 1
                        && !self.migrations.is_empty()
                        && self.idle_workers() > 0
                        && self.poll_and_run_migrations(ctx)
                    {
                        // Between Foreground and Replay: offer idle
                        // workers to the migration managers (§3.1.2).
                        assigned = true;
                        break;
                    }
                    continue;
                };
                let worker = if self.may_hold(front) {
                    self.idle_worker_nonreserved()
                } else {
                    self.idle_worker_any()
                };
                let Some(worker) = worker else {
                    // Strict priority: don't let lower classes jump the
                    // queue just because the head can't be placed.
                    return;
                };
                let task = self.queues[q].pop_front().expect("peeked above");
                self.run_task(ctx, worker, task);
                assigned = true;
                break;
            }
            if !assigned {
                if !self.migrations.is_empty()
                    && self.idle_workers() > 0
                    && self.poll_and_run_migrations(ctx)
                {
                    continue;
                }
                return;
            }
        }
    }

    /// Ledger activity a task charges its worker core with. Replication
    /// appends, segment-fetch service, cleaning, and non-replay pushes
    /// are background duty; everything client-visible is `Service`.
    fn activity_of(task: &Task) -> Activity {
        match task {
            Task::Rpc { req, .. } => match req {
                Request::Pull { .. } => Activity::PullGather,
                Request::PriorityPull { .. } => Activity::PriorityPull,
                Request::PushRecords { replay: true, .. } => Activity::Replay,
                Request::PushRecords { .. }
                | Request::ReplicateAppend { .. }
                | Request::ReplicateClose { .. }
                | Request::FetchSegments { .. } => Activity::Background,
                _ => Activity::Service,
            },
            Task::BaselineStep => Activity::PullGather,
            Task::RecoveryReplay { .. } => Activity::Replay,
            Task::CleanerPass => Activity::Background,
        }
    }

    fn run_task(&mut self, ctx: &mut Ctx<'_, Envelope>, worker: usize, task: Task) {
        debug_assert!(!self.workers[worker].busy);
        self.workers[worker].busy = true;
        let activity = if self.profiler.is_on() {
            Some(Self::activity_of(&task))
        } else {
            None
        };
        let span_key = if self.trace.is_on() {
            match &task {
                Task::Rpc { src, rpc, req, .. } => Some((req.name(), Some((*src, rpc.0)))),
                Task::BaselineStep => Some(("baseline-step", None)),
                Task::RecoveryReplay { .. } => Some(("recovery-replay", None)),
                Task::CleanerPass => Some(("cleaner", None)),
            }
        } else {
            None
        };
        let service_ns = match task {
            Task::Rpc {
                src,
                rpc,
                req,
                cctx,
            } => {
                self.workers[worker].cur_ctx = cctx;
                self.exec_rpc(ctx, worker, src, rpc, req, cctx)
            }
            Task::BaselineStep => self.exec_baseline_step(ctx, worker),
            Task::RecoveryReplay { recovery } => {
                self.exec_recovery_replay(ctx.now(), worker, recovery)
            }
            Task::CleanerPass => self.exec_cleaner_pass(),
        };
        if let Some(act) = activity {
            self.workers[worker].ledger_op = Some((act, ctx.now()));
        }
        if let Some((label, rpc_key)) = span_key {
            self.workers[worker].trace_op = Some((label, ctx.now()));
            if let Some(key) = rpc_key {
                if let Some(span) = self.rpc_spans.get_mut(&key) {
                    span.assigned = ctx.now();
                    span.service_end = ctx.now() + service_ns;
                }
            }
        }
        self.stats.worker_busy_ns.add(service_ns);
        ctx.timer(service_ns, token(KIND_WORKER_DONE, worker as u64));
    }

    fn on_worker_done(&mut self, ctx: &mut Ctx<'_, Envelope>, worker: usize) {
        if let Some((act, since)) = self.workers[worker].ledger_op.take() {
            self.profiler.charge(
                self.cfg.id.0,
                worker as u32 + 1,
                act,
                since,
                ctx.now() - since,
            );
        }
        if let Some((label, since)) = self.workers[worker].trace_op.take() {
            self.trace.span(
                label,
                "worker",
                ctx.self_id() as u64,
                lanes::worker(worker),
                since,
                ctx.now() - since,
                vec![],
            );
        }
        let deferred = std::mem::take(&mut self.workers[worker].deferred);
        let mut migration_event = false;
        for d in deferred {
            match d {
                Deferred::Send(dst, env) => {
                    if self.trace.is_on() {
                        if let Body::Resp(_) = env.body {
                            self.finalize_rpc_span(ctx.now(), ctx.self_id(), dst, env.rpc);
                        }
                    }
                    self.send(ctx, dst, env);
                }
                Deferred::ReplayDone(mig, partition) => {
                    if let Some(run) = self.run_mut(mig) {
                        run.mgr.on_replay_done(partition);
                    }
                    migration_event = true;
                }
                Deferred::BaselineContinue => {
                    self.queues[Priority::Background as usize].push_back(Task::BaselineStep);
                }
                Deferred::ShipLog { wait } => {
                    self.ship_log(ctx, Some(worker), wait, false);
                }
            }
        }
        self.workers[worker].replay_partition = None;
        if !self.workers[worker].held {
            self.workers[worker].busy = false;
        } else {
            self.workers[worker].hold_since = ctx.now();
        }
        if migration_event {
            self.poll_and_run_migrations(ctx);
        }
        self.try_assign(ctx);
    }

    fn release_worker(&mut self, ctx: &mut Ctx<'_, Envelope>, worker: usize) {
        let hold = {
            let w = &mut self.workers[worker];
            if w.held {
                // The core sat blocked from service end until now; that
                // wait is busy time (a stalled worker serves nobody,
                // §4.4).
                let waited = ctx.now().saturating_sub(w.hold_since);
                w.held = false;
                Some((w.hold_since, waited))
            } else {
                None
            }
        };
        if let Some((since, waited)) = hold {
            self.stats.worker_busy_ns.add(waited);
            // Mirror the §4.4 rule in the ledger: the blocked window is
            // charged as Hold, guarded like the trace span below so a
            // mid-service failover release doesn't double-charge.
            if self.workers[worker].ledger_op.is_none() && since > 0 {
                self.profiler.charge(
                    self.cfg.id.0,
                    worker as u32 + 1,
                    Activity::Hold,
                    since,
                    waited,
                );
            }
            // Only span the hold if the service span has already closed
            // (a failover can release a core mid-service, before
            // `hold_since` was ever stamped).
            if self.trace.is_on() && self.workers[worker].trace_op.is_none() && since > 0 {
                self.trace.span(
                    "hold",
                    "worker",
                    ctx.self_id() as u64,
                    lanes::worker(worker),
                    since,
                    waited,
                    vec![],
                );
            }
        }
        self.workers[worker].busy = false;
        self.try_assign(ctx);
    }

    // ------------------------------------------------------- replication --

    /// Ships every not-yet-replicated byte of the main log to this
    /// master's backups through the replication-manager resource. If
    /// `wait` is set, a fresh ack group is created that releases
    /// `worker` and answers the client once every chunk is acked.
    fn ship_log(
        &mut self,
        ctx: &mut Ctx<'_, Envelope>,
        worker: Option<usize>,
        wait: Option<(ActorId, RpcId, Response)>,
        bulk: bool,
    ) {
        let backups = self.cfg.backup_actors.clone();
        let mut chunk_rpcs = Vec::new();
        if !backups.is_empty() {
            let segments = self.master.log.segments_snapshot();
            // Cap chunk size so bulk (lazy) re-replication interleaves
            // with foreground responses on the NIC instead of hogging it
            // with whole-segment transmissions.
            const CHUNK: usize = 64 * 1024;
            for seg in segments {
                let committed = seg.committed();
                let mut done = *self.repl_cursor.get(&seg.id()).unwrap_or(&0);
                if committed <= done {
                    continue;
                }
                // One zero-copy window per segment; every chunk below is
                // a refcounted slice of it rather than a 64 KB memcpy.
                let window = seg.committed_as_bytes();
                while done < committed {
                    let end = (done + CHUNK).min(committed);
                    let data = window.slice(done..end);
                    let bytes = data.len() as u64;
                    // The replication manager is a serialized ~380 MB/s
                    // resource (§2.3): each chunk occupies it for its
                    // fan-out before the RPCs leave.
                    let occupancy = self.cfg.cost.replication_occupancy_ns(bytes);
                    let start = if bulk {
                        ctx.now().max(self.repl_free_at).max(self.repl_bulk_free_at)
                    } else {
                        ctx.now().max(self.repl_free_at)
                    };
                    let free = start + occupancy;
                    if bulk {
                        self.repl_bulk_free_at = free;
                    } else {
                        self.repl_free_at = free;
                    }
                    let delay = free - ctx.now();
                    for b in &backups {
                        let req = Request::ReplicateAppend {
                            owner: self.cfg.id,
                            segment: seg.id(),
                            offset: done as u32,
                            data: data.clone(),
                        };
                        let rpc = self.alloc_rpc_to(*b, Pending::ReplAck { group: None });
                        chunk_rpcs.push(rpc);
                        let env = Envelope::req(rpc, req);
                        if delay == 0 {
                            self.send(ctx, *b, env);
                        } else {
                            let tok = self.next_deferred;
                            self.next_deferred += 1;
                            self.deferred_sends.insert(tok, (*b, env));
                            ctx.timer(delay, token(KIND_DEFERRED_SEND, tok));
                        }
                    }
                    done = end;
                }
                self.repl_cursor.insert(seg.id(), committed);
            }
        }
        match wait {
            Some((client, rpc, resp)) if !chunk_rpcs.is_empty() => {
                let gid = self.next_group;
                self.next_group += 1;
                for r in &chunk_rpcs {
                    self.outstanding
                        .insert(*r, Pending::ReplAck { group: Some(gid) });
                }
                self.ack_groups.insert(
                    gid,
                    AckGroup {
                        remaining: chunk_rpcs.len() as u32,
                        worker,
                        respond: Some((client, rpc, resp)),
                    },
                );
            }
            Some((client, rpc, resp)) => {
                // Nothing to ship (no backups, or a concurrent shipment
                // already covered our bytes): respond immediately.
                self.respond(ctx, client, rpc, resp);
                if let Some(w) = worker {
                    self.release_worker(ctx, w);
                }
            }
            None => {}
        }
    }

    fn credit_ack_group(&mut self, ctx: &mut Ctx<'_, Envelope>, gid: u64) {
        let finished = {
            let Some(g) = self.ack_groups.get_mut(&gid) else {
                return;
            };
            g.remaining -= 1;
            g.remaining == 0
        };
        if finished {
            let g = self.ack_groups.remove(&gid).expect("checked above");
            if let Some((client, rpc, resp)) = g.respond {
                self.respond(ctx, client, rpc, resp);
            }
            if let Some(w) = g.worker {
                self.release_worker(ctx, w);
            }
        }
    }

    // ------------------------------------------------------ RPC execution --

    #[allow(clippy::too_many_lines)]
    fn exec_rpc(
        &mut self,
        ctx: &mut Ctx<'_, Envelope>,
        worker: usize,
        src: ActorId,
        rpc: RpcId,
        req: Request,
        cctx: CausalCtx,
    ) -> Nanos {
        let m = self.cfg.cost.clone();
        let mut work = Work::default();
        match req {
            Request::Read {
                table,
                key,
                key_hash,
            } => {
                self.stats.ops_served.add(1);
                let service = m.op_fixed_ns + m.read_per_object_ns;
                match self.master.read(table, key_hash, Some(&key), &mut work) {
                    Ok((value, version)) => {
                        self.defer_send(worker, src, rpc, Response::ReadOk { value, version });
                    }
                    Err(err) => {
                        return self.read_miss(
                            ctx,
                            worker,
                            src,
                            rpc,
                            table,
                            key,
                            key_hash,
                            err,
                            service + work.service_ns(&m),
                            cctx,
                        );
                    }
                }
                service + work.service_ns(&m)
            }
            Request::MultiRead { table, keys } => {
                let n = keys.len() as u64;
                self.stats.ops_served.add(n);
                let mut values = Vec::with_capacity(keys.len());
                for (key, hash) in &keys {
                    values.push(
                        self.master
                            .read(table, *hash, Some(key), &mut work)
                            .ok()
                            .map(|(v, _)| v),
                    );
                }
                self.defer_send(worker, src, rpc, Response::MultiReadOk { values });
                m.op_fixed_ns + n * m.read_per_object_ns + work.service_ns(&m)
            }
            Request::MultiReadHash { table, hashes } => {
                let n = hashes.len() as u64;
                self.stats.ops_served.add(n);
                let mut values = Vec::with_capacity(hashes.len());
                for hash in &hashes {
                    values.push(
                        self.master
                            .read(table, *hash, None, &mut work)
                            .ok()
                            .map(|(v, _)| v),
                    );
                }
                self.defer_send(worker, src, rpc, Response::MultiReadHashOk { values });
                m.op_fixed_ns + n * m.read_per_object_ns + work.service_ns(&m)
            }
            Request::Write {
                table,
                key,
                key_hash,
                value,
            } => {
                self.stats.ops_served.add(1);
                let service = m.op_fixed_ns + m.write_per_object_ns;
                match self.master.write(table, key_hash, &key, &value, &mut work) {
                    Ok((version, _)) => {
                        // Durable write: ship the log delta at completion
                        // and hold the worker until the replicas ack (§2:
                        // 15 µs writes).
                        self.workers[worker].held = true;
                        self.workers[worker].deferred.push(Deferred::ShipLog {
                            wait: Some((src, rpc, Response::WriteOk { version })),
                        });
                    }
                    Err(OpError::UnknownTablet) => {
                        self.defer_send(worker, src, rpc, Response::Err(Status::UnknownTablet));
                    }
                    Err(OpError::Recovering) => {
                        let resp = self.retry_hint(ctx, RetryCause::Recovering);
                        self.defer_send(worker, src, rpc, resp);
                    }
                    Err(_) => {
                        self.defer_send(worker, src, rpc, Response::Err(Status::NotFound));
                    }
                }
                service + work.service_ns(&m)
            }
            Request::Delete {
                table,
                key,
                key_hash,
            } => {
                self.stats.ops_served.add(1);
                match self.master.delete(table, key_hash, &key, &mut work) {
                    Ok(existed) => {
                        self.workers[worker].held = true;
                        self.workers[worker].deferred.push(Deferred::ShipLog {
                            wait: Some((src, rpc, Response::DeleteOk { existed })),
                        });
                    }
                    Err(OpError::UnknownTablet) => {
                        self.defer_send(worker, src, rpc, Response::Err(Status::UnknownTablet));
                    }
                    Err(OpError::Recovering) => {
                        let resp = self.retry_hint(ctx, RetryCause::Recovering);
                        self.defer_send(worker, src, rpc, resp);
                    }
                    Err(_) => {
                        self.defer_send(worker, src, rpc, Response::Err(Status::NotFound));
                    }
                }
                m.op_fixed_ns + m.write_per_object_ns + work.service_ns(&m)
            }
            Request::IndexScan {
                table,
                index,
                begin,
                end,
                limit,
            } => {
                self.stats.ops_served.add(1);
                let resp = match self.master.index_scan(
                    table,
                    index,
                    &begin,
                    &end,
                    limit as usize,
                    &mut work,
                ) {
                    Ok((hashes, truncated)) => Response::IndexScanOk { hashes, truncated },
                    Err(_) => Response::Err(Status::UnknownTablet),
                };
                self.defer_send(worker, src, rpc, resp);
                m.op_fixed_ns + m.index_lookup_ns + work.service_ns(&m)
            }
            Request::IndexInsert {
                table,
                index,
                sec_key,
                primary_hash,
            } => {
                let resp =
                    match self
                        .master
                        .index_insert(table, index, &sec_key, primary_hash, &mut work)
                    {
                        Ok(()) => Response::Ok,
                        Err(_) => Response::Err(Status::UnknownTablet),
                    };
                self.defer_send(worker, src, rpc, resp);
                m.op_fixed_ns + m.index_lookup_ns + work.service_ns(&m)
            }
            Request::Pull {
                table,
                range,
                cursor,
                budget_bytes,
            } => {
                if self.cfg.migration.test_drop_pulls {
                    // Fault injection: swallow the Pull without answering.
                    // The target's gather pipeline never advances and the
                    // migration hangs in flight — the stall the flight
                    // recorder's watchdog must catch.
                    return m.pull_fixed_ns;
                }
                self.stats.pulls_served.add(1);
                let (records, next, gwork) = rocksteady::source::handle_pull(
                    &self.master,
                    table,
                    range,
                    cursor,
                    budget_bytes,
                );
                let mut service = m.pull_fixed_ns;
                let mut wire = 0;
                for r in &records {
                    service += m.pull_record_ns(r.wire_size());
                    wire += r.wire_size();
                }
                self.stats.bytes_migrated_out.add(wire);
                let _ = gwork; // per-record costs are covered by pull_record_ns
                self.defer_send(worker, src, rpc, Response::PullOk { records, next });
                service
            }
            Request::PriorityPull { table, hashes } => {
                if self.cfg.migration.test_drop_pulls {
                    // Fault injection: priority pulls stall too —
                    // otherwise client traffic into the migrating range
                    // trickles gather progress and masks the stall.
                    return m.priority_pull_fixed_ns;
                }
                self.stats.priority_pulls_served.add(1);
                let (records, _gwork) =
                    rocksteady::source::handle_priority_pull(&self.master, table, &hashes);
                let mut service = m.priority_pull_fixed_ns;
                let mut wire = 0;
                for r in &records {
                    service += m.priority_pull_per_record_ns
                        + m.checksum_ns(r.wire_size())
                        + m.copy_ns(r.wire_size());
                    wire += r.wire_size();
                }
                self.stats.bytes_migrated_out.add(wire);
                if self.audit.is_on() {
                    self.audit.emit(
                        ctx.now(),
                        AuditKind::PriorityServed {
                            server: self.cfg.id,
                            requested: hashes.len() as u64,
                            records: records.len() as u64,
                        },
                    );
                }
                self.defer_send(worker, src, rpc, Response::PriorityPullOk { records });
                service
            }
            Request::PushRecords {
                table: _,
                records,
                replay,
                rereplicate,
            } => {
                let mut service = m.op_fixed_ns;
                let wire: u64 = records.iter().map(Record::wire_size).sum();
                self.stats.bytes_migrated_in.add(wire);
                if replay {
                    for rec in &records {
                        service += m.replay_record_ns(rec.wire_size());
                    }
                    let replayed =
                        self.master
                            .replay_batch(&records, ReplayDest::MainLog, &mut work);
                    self.stats.records_replayed.add(replayed as u64);
                    if self.audit.is_on() {
                        self.audit.emit(
                            ctx.now(),
                            AuditKind::VersionFloor {
                                server: self.cfg.id,
                                floor: self.master.version_ceiling(),
                            },
                        );
                    }
                }
                if replay && rereplicate {
                    self.workers[worker].held = true;
                    self.workers[worker].deferred.push(Deferred::ShipLog {
                        wait: Some((src, rpc, Response::PushRecordsOk)),
                    });
                } else {
                    self.defer_send(worker, src, rpc, Response::PushRecordsOk);
                }
                service
            }
            Request::ReplicateAppend {
                owner,
                segment,
                offset,
                data,
            } => {
                let dlen = data.len();
                let outcome = self.backup.append(owner, segment, offset, data);
                debug_assert!(
                    matches!(outcome, rocksteady_backup::AppendOutcome::Ok),
                    "replication stream corrupted: {outcome:?}"
                );
                self.defer_send(worker, src, rpc, Response::ReplicateOk);
                m.backup_fixed_ns + (dlen as f64 * m.backup_per_byte_ns) as Nanos
            }
            Request::ReplicateClose { owner, segment } => {
                self.backup.close(owner, segment);
                self.defer_send(worker, src, rpc, Response::ReplicateOk);
                m.backup_fixed_ns
            }
            Request::FetchSegments { owner, min_segment } => {
                let segments = self.backup.fetch(owner, min_segment);
                let bytes: u64 = segments.iter().map(|s| s.data.len() as u64).sum();
                self.defer_send(worker, src, rpc, Response::SegmentsOk { segments });
                m.backup_fixed_ns + m.copy_ns(bytes)
            }
            // Control-plane requests never reach workers.
            other => {
                debug_assert!(false, "unexpected worker request {other:?}");
                self.defer_send(worker, src, rpc, Response::Err(Status::UnknownTablet));
                m.op_fixed_ns
            }
        }
    }

    /// Handles a read that could not be served directly.
    #[allow(clippy::too_many_arguments)]
    fn read_miss(
        &mut self,
        ctx: &mut Ctx<'_, Envelope>,
        worker: usize,
        src: ActorId,
        rpc: RpcId,
        table: TableId,
        key: Bytes,
        _key_hash: KeyHash,
        err: OpError,
        service: Nanos,
        cctx: CausalCtx,
    ) -> Nanos {
        match err {
            OpError::NotYetHere { hash } => {
                let sync = self.cfg.migration.sync_priority_pulls;
                // Route the miss to the run whose range covers the hash —
                // with several runs in flight the first would otherwise
                // swallow every other run's misses.
                let covering = self
                    .migrations
                    .iter()
                    .find(|r| r.mgr.table == table && r.mgr.range.contains(hash))
                    .map(|r| (r.id, r.source_actor));
                if sync {
                    if let Some((_, source_actor)) = covering {
                        // Naïve mode (Figure 13b/14b): the worker blocks on
                        // its own single-key PriorityPull.
                        self.workers[worker].held = true;
                        let pp = self.alloc_rpc_to(
                            source_actor,
                            Pending::SyncPriorityPull(SyncWait {
                                worker,
                                client: src,
                                client_rpc: rpc,
                                table,
                                hash,
                                key,
                                cctx,
                            }),
                        );
                        // The pull is issued on the blocked read's
                        // behalf: same trace id, one hop deeper.
                        let pp_ctx = cctx.child(rpc.0);
                        if self.trace.is_on() && pp_ctx.trace_id.is_some() {
                            self.trace.flow(
                                "rpc-flow",
                                "flow",
                                ctx.self_id() as u64,
                                lanes::PRIORITY_PULL,
                                ctx.now(),
                                true,
                                pp_ctx.trace_id.0 ^ pp.0,
                                vec![("trace", pp_ctx.trace_id.0)],
                            );
                        }
                        self.send(
                            ctx,
                            source_actor,
                            Envelope::req(
                                pp,
                                Request::PriorityPull {
                                    table,
                                    hashes: vec![hash],
                                },
                            )
                            .with_ctx(pp_ctx),
                        );
                        return service;
                    }
                }
                let outcome = match covering.and_then(|(id, _)| self.run_mut(id)) {
                    Some(run) => {
                        let outcome = run.mgr.on_read_miss(hash);
                        // Remember who asked: the batched PriorityPull
                        // that eventually covers this hash inherits the
                        // waiting read's context (first waiter wins).
                        if matches!(outcome, MissOutcome::Wait) && cctx.trace_id.is_some() {
                            run.pp_ctx.entry(hash).or_insert(cctx.child(rpc.0));
                        }
                        outcome
                    }
                    None => MissOutcome::Wait,
                };
                let resp = match outcome {
                    MissOutcome::Wait => {
                        // "Retry after the time when the target expects it
                        // will have the value" (§3): with PriorityPulls
                        // that is one PP round trip; without them the
                        // record only arrives with the bulk pulls, so the
                        // hint is correspondingly longer.
                        let cause = if self.cfg.migration.priority_pulls {
                            RetryCause::MissPriorityPull
                        } else {
                            RetryCause::MissBulkOnly
                        };
                        if covering.is_some() && self.cfg.migration.priority_pulls {
                            let n = self.stats.priority_pull_deferrals.inc();
                            if self.trace.is_on() {
                                self.trace.counter(
                                    "pp-deferrals",
                                    ctx.self_id() as u64,
                                    ctx.now(),
                                    n,
                                );
                            }
                        }
                        self.retry_hint(ctx, cause)
                    }
                    MissOutcome::NotFound => Response::Err(Status::NotFound),
                };
                self.defer_send(worker, src, rpc, resp);
                self.poll_and_run_migrations(ctx);
                service
            }
            OpError::UnknownTablet => {
                self.defer_send(worker, src, rpc, Response::Err(Status::UnknownTablet));
                service
            }
            OpError::Recovering => {
                let resp = self.retry_hint(ctx, RetryCause::Recovering);
                self.defer_send(worker, src, rpc, resp);
                service
            }
            _ => {
                self.defer_send(worker, src, rpc, Response::Err(Status::NotFound));
                service
            }
        }
    }

    fn finish_sync_priority_pull(
        &mut self,
        ctx: &mut Ctx<'_, Envelope>,
        wait: SyncWait,
        records: Vec<Record>,
    ) {
        let m = self.cfg.cost.clone();
        let mut work = Work::default();
        let mut service = 0;
        for rec in &records {
            service += m.replay_record_ns(rec.wire_size());
        }
        let replayed = self
            .master
            .replay_batch(&records, ReplayDest::MainLog, &mut work);
        self.stats.records_replayed.add(replayed as u64);
        if self.audit.is_on() {
            self.audit.emit(
                ctx.now(),
                AuditKind::VersionFloor {
                    server: self.cfg.id,
                    floor: self.master.version_ceiling(),
                },
            );
        }
        // The worker was blocked the whole round trip; charge the replay
        // on top.
        self.stats.worker_busy_ns.add(service);
        let resp = match self
            .master
            .read(wait.table, wait.hash, Some(&wait.key), &mut work)
        {
            Ok((value, version)) => Response::ReadOk { value, version },
            Err(_) => Response::Err(Status::NotFound),
        };
        self.respond_ctx(ctx, wait.client, wait.client_rpc, resp, wait.cctx);
        self.release_worker(ctx, wait.worker);
    }

    // --------------------------------------------------------- migration --

    /// Polls every in-flight migration run (admission order), executing
    /// each run's actions before polling the next so the idle-worker
    /// count each manager sees stays exact. Returns whether any run
    /// produced actions.
    fn poll_and_run_migrations(&mut self, ctx: &mut Ctx<'_, Envelope>) -> bool {
        if self.migrations.is_empty() {
            return false;
        }
        let ids: Vec<MigrationId> = self.migrations.iter().map(|r| r.id).collect();
        let mut any = false;
        for id in ids {
            // Each manager runs as a dispatch continuation (§3.1.2).
            self.dispatch_charge += self.cfg.cost.migration_mgr_check_ns;
            self.dispatch_charge_mgr += self.cfg.cost.migration_mgr_check_ns;
            let idle = self.idle_workers();
            let Some(run) = self.run_mut(id) else {
                continue;
            };
            let actions = run.mgr.poll(idle);
            if !actions.is_empty() {
                any = true;
                self.run_migration_actions(ctx, id, actions);
            }
        }
        any
    }

    fn run_migration_actions(
        &mut self,
        ctx: &mut Ctx<'_, Envelope>,
        id: MigrationId,
        actions: Vec<Action>,
    ) {
        for action in actions {
            // Re-find each iteration: an action (Finished, or an abandon
            // triggered downstream) may remove the run mid-loop.
            let Some(idx) = self.migrations.iter().position(|r| r.id == id) else {
                return;
            };
            match action {
                Action::SendPrepare => {
                    let (table, range, dst) = {
                        let run = &self.migrations[idx];
                        (run.mgr.table, run.mgr.range, run.source_actor)
                    };
                    let req = Request::PrepareMigration {
                        table,
                        range,
                        target: self.cfg.id,
                    };
                    let rpc = self.alloc_rpc_to(dst, Pending::Prepare { mig: id });
                    self.send(ctx, dst, Envelope::req(rpc, req));
                }
                Action::NotifyStart {
                    lineage_from_segment,
                } => {
                    let (table, range, source) = {
                        let run = &self.migrations[idx];
                        (run.mgr.table, run.mgr.range, run.mgr.source)
                    };
                    let req = Request::MigrationStarting {
                        id,
                        table,
                        range,
                        source,
                        target: self.cfg.id,
                        lineage_from_segment,
                    };
                    let dst = self.dir.coordinator;
                    let rpc = self.alloc_rpc_to(dst, Pending::MigStartAck { mig: id });
                    self.send(ctx, dst, Envelope::req(rpc, req));
                }
                Action::SendPull { partition, cursor } => {
                    let (table, range, budget_bytes, dst) = {
                        let run = &self.migrations[idx];
                        (
                            run.mgr.table,
                            run.mgr.range.split(run.mgr.config.partitions)[partition],
                            run.mgr.config.pull_budget_bytes,
                            run.source_actor,
                        )
                    };
                    let req = Request::Pull {
                        table,
                        range,
                        cursor,
                        budget_bytes,
                    };
                    let rpc = self.alloc_rpc_to(dst, Pending::Pull { mig: id, partition });
                    if self.trace.is_on() {
                        self.migrations[idx]
                            .pull_span_start
                            .insert(rpc.0, (ctx.now(), partition));
                    }
                    self.send(ctx, dst, Envelope::req(rpc, req));
                }
                Action::SendPriorityPull { hashes } => {
                    let (table, dst) = {
                        let run = &self.migrations[idx];
                        (run.mgr.table, run.source_actor)
                    };
                    // The batch is issued on behalf of the reads waiting
                    // on its hashes; the first hash (batch order) with a
                    // recorded context represents the batch so the
                    // source-side span joins that read's journey.
                    let mut pp_ctx = CausalCtx::NONE;
                    {
                        let run = &mut self.migrations[idx];
                        for h in &hashes {
                            if let Some(c) = run.pp_ctx.remove(h) {
                                if !pp_ctx.trace_id.is_some() {
                                    pp_ctx = c;
                                }
                            }
                        }
                    }
                    let req = Request::PriorityPull {
                        table,
                        hashes: hashes.clone(),
                    };
                    let batch = hashes.len() as u64;
                    let rpc = self.alloc_rpc_to(dst, Pending::PriorityPull { mig: id, hashes });
                    if self.trace.is_on() {
                        self.migrations[idx]
                            .pp_span_start
                            .insert(rpc.0, (ctx.now(), batch));
                        if pp_ctx.trace_id.is_some() {
                            self.trace.flow(
                                "rpc-flow",
                                "flow",
                                ctx.self_id() as u64,
                                lanes::PRIORITY_PULL,
                                ctx.now(),
                                true,
                                pp_ctx.trace_id.0 ^ rpc.0,
                                vec![("trace", pp_ctx.trace_id.0)],
                            );
                        }
                    }
                    self.send(ctx, dst, Envelope::req(rpc, req).with_ctx(pp_ctx));
                }
                Action::Replay(batch) => {
                    if self.cfg.migration.test_defer_replay {
                        // Fault injection: accept the batch but never
                        // replay it. The manager already pipelined the
                        // partition's next Pull, so gather keeps running
                        // while the replay counters stay flat — the
                        // backlog the flight recorder must catch.
                        self.deferred_replay_faults.push(batch);
                        continue;
                    }
                    let Some(worker) = self.idle_worker_any() else {
                        debug_assert!(false, "manager scheduled replay with no idle worker");
                        continue;
                    };
                    self.workers[worker].busy = true;
                    let service = self.exec_replay(ctx.now(), worker, idx, batch);
                    if self.profiler.is_on() {
                        self.workers[worker].ledger_op = Some((Activity::Replay, ctx.now()));
                    }
                    if self.trace.is_on() {
                        self.workers[worker].trace_op = Some(("mig:replay", ctx.now()));
                    }
                    self.stats.worker_busy_ns.add(service);
                    ctx.timer(service, token(KIND_WORKER_DONE, worker as u64));
                }
                Action::Finished => {
                    self.finish_migration(ctx, id);
                }
            }
        }
    }

    fn exec_replay(&mut self, now: Nanos, worker: usize, idx: usize, batch: ReplayBatch) -> Nanos {
        let m = self.cfg.cost.clone();
        // Each worker replays into its own per-run side log: zero
        // contention (§3.1.3), and overlapping runs never mix side
        // segments.
        if self.migrations[idx].sidelogs[worker].is_none() {
            self.migrations[idx].sidelogs[worker] =
                Some(SideLog::new(std::sync::Arc::clone(&self.master.log)));
        }
        let mut service = 0;
        let mut work = Work::default();
        for rec in &batch.records {
            service += m.replay_record_ns(rec.wire_size());
        }
        // One replay_batch call = one side-log lock acquisition for the
        // whole Pull response (tentpole 3).
        let run_id = self.migrations[idx].id;
        let side = self.migrations[idx].sidelogs[worker]
            .as_ref()
            .expect("created above");
        let replayed = self
            .master
            .replay_batch(&batch.records, ReplayDest::Side(side), &mut work);
        self.stats.records_replayed.add(replayed as u64);
        self.stats
            .migration_replayed(run_id, batch.records.len() as u64, replayed as u64);
        if self.audit.is_on() {
            self.audit.emit(
                now,
                AuditKind::Replayed {
                    id: run_id,
                    received: batch.records.len() as u64,
                    applied: replayed as u64,
                },
            );
            // replay_batch raised the floor above every version it saw.
            self.audit.emit(
                now,
                AuditKind::VersionFloor {
                    server: self.cfg.id,
                    floor: self.master.version_ceiling(),
                },
            );
        }
        self.workers[worker].replay_partition = Some(batch.partition);
        self.workers[worker]
            .deferred
            .push(Deferred::ReplayDone(run_id, batch.partition));
        service.max(1)
    }

    /// Emits the span for the migration phase that just ended on run
    /// `id` and re-anchors the next one. No-op unless tracing was armed
    /// when the migration began.
    fn mig_phase_span(
        &mut self,
        now: Nanos,
        self_id: ActorId,
        id: MigrationId,
        label: &'static str,
    ) {
        let Some(run) = self.migrations.iter_mut().find(|r| r.id == id) else {
            return;
        };
        if let Some(mt) = &mut run.mig_trace {
            self.trace.span(
                label,
                "migration",
                self_id as u64,
                lanes::MIGRATION,
                mt.phase_start,
                now - mt.phase_start,
                vec![],
            );
            mt.phase_start = now;
        }
    }

    /// Drops in-flight migration run `id`: the source died, the
    /// coordinator rejected the start, or a recovery plan superseded it
    /// (§3.4). The abandonment is stamped (per run), counted, traced,
    /// and the run's own side logs are committed (their records were
    /// already replayed into the hash table, and another run's finish
    /// must not sweep up this run's stale segments). Other in-flight
    /// runs are untouched.
    fn abandon_migration(
        &mut self,
        ctx: &mut Ctx<'_, Envelope>,
        id: MigrationId,
        reason: &'static str,
    ) {
        let Some(idx) = self.migrations.iter().position(|r| r.id == id) else {
            return;
        };
        let mut run = self.migrations.remove(idx);
        for slot in &mut run.sidelogs {
            if let Some(side) = slot.take() {
                side.commit().expect("side log commit");
            }
        }
        // A rejected run never registered ownership anywhere but locally
        // (the coordinator said no before the flip): drop the provisional
        // tablet so this master stops claiming hashes it will never
        // receive. Other abandon reasons keep the tablet — a recovery
        // plan (`Recovering` role) or crash handling owns its fate.
        if reason == "mig:abandoned-rejected" {
            self.master.drop_tablet(run.mgr.table, run.mgr.range);
            if self.audit.is_on() {
                self.audit.emit(
                    ctx.now(),
                    AuditKind::NodeRelease {
                        server: self.cfg.id,
                        table: run.mgr.table,
                        range: run.mgr.range,
                        via: ReleaseVia::Abandon,
                    },
                );
            }
        }
        if self.audit.is_on() {
            self.audit.emit(
                ctx.now(),
                AuditKind::MigrationAbandoned {
                    id,
                    target: self.cfg.id,
                },
            );
        }
        // If the migration never registered, its requester is still
        // waiting on MigrateTablet — tell it to try again later.
        if let Some((client, client_rpc)) = run.client.take() {
            let resp = self.retry_hint(ctx, RetryCause::SourceFailover);
            self.respond(ctx, client, client_rpc, resp);
        }
        let now = ctx.now();
        self.stats.abandon_migration_run(id, now);
        let abandoned = self.stats.migrations_abandoned.inc();
        if self.trace.is_on() {
            let pid = ctx.self_id() as u64;
            self.trace
                .instant(reason, "migration", pid, lanes::MIGRATION, now, vec![]);
            if let Some(mt) = run.mig_trace.take() {
                self.trace.span(
                    "migration",
                    "migration",
                    pid,
                    lanes::MIGRATION,
                    mt.started,
                    now - mt.started,
                    vec![("abandoned", 1)],
                );
            }
            self.trace
                .counter("migrations-abandoned", pid, now, abandoned);
        }
    }

    fn finish_migration(&mut self, ctx: &mut Ctx<'_, Envelope>, id: MigrationId) {
        let Some(idx) = self.migrations.iter().position(|r| r.id == id) else {
            return;
        };
        let label = self.migrations[idx].mgr.phase().name();
        self.mig_phase_span(ctx.now(), ctx.self_id(), id, label);
        let mut run = self.migrations.remove(idx);
        // Commit every worker's side log for THIS run into the main log
        // (§3.1.3); concurrent runs' side logs stay open.
        let mut committed_sidelogs = 0u64;
        for slot in &mut run.sidelogs {
            if let Some(side) = slot.take() {
                side.commit().expect("side log commit");
                committed_sidelogs += 1;
            }
        }
        // Lazy re-replication (§3.4): the committed side segments are now
        // ordinary unreplicated log bytes; ship them in the background,
        // yielding to foreground write replication.
        self.ship_log(ctx, None, None, true);
        // Become a plain owner.
        self.master
            .set_tablet_role(run.mgr.table, run.mgr.range, TabletRole::Owner);
        // Drop the lineage dependency.
        let req = Request::MigrationComplete {
            id,
            table: run.mgr.table,
            range: run.mgr.range,
            source: run.mgr.source,
            target: self.cfg.id,
        };
        let dst = self.dir.coordinator;
        let rpc = self.alloc_rpc_to(dst, Pending::MigCompleteAck);
        self.send(ctx, dst, Envelope::req(rpc, req));
        self.stats.finish_migration_run(id, ctx.now());
        if self.audit.is_on() {
            self.audit.emit(
                ctx.now(),
                AuditKind::MigrationFinished {
                    id,
                    target: self.cfg.id,
                    pull_records: run.mgr.stats.pull_records,
                    priority_records: run.mgr.stats.priority_records,
                },
            );
        }
        if let Some(mt) = run.mig_trace.take() {
            let now = ctx.now();
            let pid = ctx.self_id() as u64;
            let stats = &run.mgr.stats;
            self.trace.span(
                "mig:commit",
                "migration",
                pid,
                lanes::MIGRATION,
                now,
                0,
                vec![("sidelogs", committed_sidelogs)],
            );
            self.trace.span(
                "migration",
                "migration",
                pid,
                lanes::MIGRATION,
                mt.started,
                now - mt.started,
                vec![
                    ("pulls_sent", stats.pulls_sent),
                    ("pull_records", stats.pull_records),
                    ("priority_pulls_sent", stats.priority_pulls_sent),
                    ("priority_records", stats.priority_records),
                ],
            );
        }
    }

    // ---------------------------------------------------------- baseline --

    fn exec_baseline_step(&mut self, ctx: &mut Ctx<'_, Envelope>, worker: usize) -> Nanos {
        let m = self.cfg.cost.clone();
        let Some(run) = &mut self.baseline else {
            return m.op_fixed_ns;
        };
        let (action, work) = run.mig.step(&mut self.master);
        let service = work.service_ns(&m).max(1);
        match action {
            BaselineAction::SendBatch {
                records,
                await_ack,
                scanned_bytes,
            } => {
                self.stats.bytes_migrated_out.add(scanned_bytes);
                if await_ack && !records.is_empty() {
                    let req = Request::PushRecords {
                        table: run.mig.table,
                        records,
                        replay: !run.opts.skip_replay,
                        rereplicate: !run.opts.skip_replay && !run.opts.skip_rereplication,
                    };
                    let dst = run.target_actor;
                    let rpc = self.alloc_rpc_to(dst, Pending::PushRecords);
                    self.workers[worker]
                        .deferred
                        .push(Deferred::Send(dst, Envelope::req(rpc, req)));
                } else {
                    // Lever variants (skip_copy/skip_tx) keep scanning
                    // without waiting on the network.
                    self.workers[worker]
                        .deferred
                        .push(Deferred::BaselineContinue);
                }
            }
            BaselineAction::TransferOwnership => {
                let req = Request::BaselineOwnershipTransfer {
                    table: run.mig.table,
                    range: run.mig.range,
                    source: self.cfg.id,
                    target: self
                        .dir
                        .servers
                        .iter()
                        .find(|(_, a)| **a == run.target_actor)
                        .map(|(s, _)| *s)
                        .expect("target in directory"),
                };
                let dst = self.dir.coordinator;
                let rpc = self.alloc_rpc_to(dst, Pending::BaselineTransferAck);
                self.workers[worker]
                    .deferred
                    .push(Deferred::Send(dst, Envelope::req(rpc, req)));
            }
            BaselineAction::Done => {
                if run.mig.is_done() {
                    self.baseline = None;
                }
            }
        }
        let _ = ctx;
        service
    }

    // ---------------------------------------------------------- recovery --

    fn exec_recovery_replay(&mut self, now: Nanos, worker: usize, recovery: u64) -> Nanos {
        let m = self.cfg.cost.clone();
        let Some(rec) = self.recoveries.remove(&recovery) else {
            return m.op_fixed_ns;
        };
        let mut service = m.op_fixed_ns;
        let mut work = Work::default();
        let mut replayed = 0u64;
        let mut ids: Vec<u64> = rec.images.keys().copied().collect();
        ids.sort_unstable();
        let mut batch = Vec::new();
        for id in ids {
            let data = &rec.images[&id];
            let mut offset = 0usize;
            while offset < data.len() {
                let Ok((view, len)) = rocksteady_logstore::entry::parse(&data[offset..]) else {
                    break;
                };
                work.scanned_entries += 1;
                if view.table_id == rec.table.0
                    && rec.range.contains(view.key_hash)
                    && view.kind != rocksteady_logstore::EntryKind::SideLogCommit
                {
                    // Key/value as refcounted slices of the fetched image —
                    // no per-record copy. The CRC verification above
                    // (`parse`, foreign bytes) is what recovery pays for.
                    let hdr = offset + rocksteady_logstore::entry::ENTRY_HEADER_BYTES;
                    let record = Record {
                        table: rec.table,
                        key_hash: view.key_hash,
                        version: view.version,
                        key: data.slice(hdr..hdr + view.key.len()),
                        value: data.slice(hdr + view.key.len()..offset + len),
                        tombstone: view.kind == rocksteady_logstore::EntryKind::Tombstone,
                    };
                    service += m.replay_record_ns(record.wire_size());
                    batch.push(record);
                }
                offset += len;
            }
        }
        replayed += self
            .master
            .replay_batch(&batch, ReplayDest::MainLog, &mut work) as u64;
        service += work.scanned_entries * m.log_scan_per_entry_ns;
        self.stats.recovery_replayed.add(replayed);
        // The replay raised the version floor above everything the dead
        // participant acknowledged; clients may come back now.
        self.master
            .set_tablet_role(rec.table, rec.range, TabletRole::Owner);
        if self.audit.is_on() {
            self.audit.emit(
                now,
                AuditKind::NodeClaim {
                    server: self.cfg.id,
                    table: rec.table,
                    range: rec.range,
                    via: rocksteady_audit::ClaimVia::Recovery,
                },
            );
            self.audit.emit(
                now,
                AuditKind::VersionFloor {
                    server: self.cfg.id,
                    floor: self.master.version_ceiling(),
                },
            );
        }
        let (dst, rpc) = rec.coordinator_rpc;
        self.workers[worker].deferred.push(Deferred::Send(
            dst,
            Envelope::resp(rpc, Response::RecoverTabletOk { replayed }),
        ));
        // Recovered data must become durable.
        self.workers[worker]
            .deferred
            .push(Deferred::ShipLog { wait: None });
        service
    }

    fn exec_cleaner_pass(&mut self) -> Nanos {
        let m = self.cfg.cost.clone();
        let cleaner = rocksteady_logstore::Cleaner::default();
        match self.master.clean_once(&cleaner) {
            Some(stats) => {
                self.stats
                    .segments_cleaned
                    .add(stats.segments_cleaned as u64);
                // Relocation copies + checksums live bytes and walks the
                // victim segment's entries.
                m.copy_ns(stats.bytes_relocated)
                    + m.checksum_ns(stats.bytes_relocated)
                    + (stats.entries_relocated + stats.entries_dropped) * m.log_scan_per_entry_ns
                    + m.op_fixed_ns
            }
            None => m.op_fixed_ns,
        }
    }

    /// Membership update: `server` is dead. Drop it from the backup set
    /// and fail over everything outstanding to it — replication waits
    /// are credited (RAMCloud re-replicates elsewhere; we degrade to
    /// R-1 replicas and document it), blocked sync PriorityPulls turn
    /// into client retries, and migrations involving the dead peer are
    /// abandoned (the coordinator's recovery plan supersedes them,
    /// §3.4).
    fn on_server_down(&mut self, ctx: &mut Ctx<'_, Envelope>, server: rocksteady_common::ServerId) {
        let Some(&dead) = self.dir.servers.get(&server) else {
            return;
        };
        self.cfg.backup_actors.retain(|a| *a != dead);
        let doomed: Vec<RpcId> = self
            .rpc_dst
            .iter()
            .filter(|(_, d)| **d == dead)
            .map(|(r, _)| *r)
            .collect();
        for rpc in doomed {
            self.rpc_dst.remove(&rpc);
            let Some(pending) = self.outstanding.remove(&rpc) else {
                continue;
            };
            match pending {
                Pending::ReplAck { group: Some(g) } => self.credit_ack_group(ctx, g),
                Pending::ReplAck { group: None } => {}
                Pending::SyncPriorityPull(wait) => {
                    let resp = self.retry_hint(ctx, RetryCause::SourceFailover);
                    self.respond(ctx, wait.client, wait.client_rpc, resp);
                    self.release_worker(ctx, wait.worker);
                }
                Pending::Pull { .. }
                | Pending::PriorityPull { .. }
                | Pending::Prepare { .. }
                | Pending::MigStartAck { .. } => {
                    // Handled by the sweep below: every run whose source
                    // died is abandoned, RPC in flight or not.
                }
                Pending::PushRecords | Pending::BaselineTransferAck => {
                    if let Some(run) = &self.baseline {
                        if run.target_actor == dead {
                            self.baseline = None;
                        }
                    }
                }
                Pending::FetchSegments { recovery } => {
                    self.on_fetch_failed(ctx, recovery, server);
                }
                Pending::MigCompleteAck => {}
            }
        }
        // A migration whose source died is dead even if no RPC to it was
        // in flight at this instant (e.g. every pull was mid-replay).
        // Runs pulling from other, still-alive sources are unharmed.
        let doomed_runs: Vec<MigrationId> = self
            .migrations
            .iter()
            .filter(|run| run.source_actor == dead)
            .map(|run| run.id)
            .collect();
        for id in doomed_runs {
            self.abandon_migration(ctx, id, "mig:abandoned-source-died");
        }
    }

    /// A backup died while we were fetching the crashed master's
    /// segments from it. Previously this was silently treated as an
    /// empty fetch, losing whatever only that fetch would have returned
    /// without a trace; now we re-issue the fetch against a surviving
    /// backup, and only when none remain do we record an irrecoverable
    /// gap.
    fn on_fetch_failed(&mut self, ctx: &mut Ctx<'_, Envelope>, recovery: u64, dead: ServerId) {
        let next = {
            let Some(rec) = self.recoveries.get_mut(&recovery) else {
                return;
            };
            if !rec.failed_backups.contains(&dead) {
                rec.failed_backups.push(dead);
            }
            rec.backups
                .iter()
                .copied()
                .find(|b| !rec.failed_backups.contains(b))
                .map(|b| (b, rec.crashed, rec.from_segment))
        };
        match next {
            Some((backup, crashed, from_segment)) => {
                let n = self.stats.recovery_fetch_failovers.inc();
                if self.trace.is_on() {
                    self.trace.instant(
                        "recovery:fetch-failover",
                        "recovery",
                        ctx.self_id() as u64,
                        lanes::RPC,
                        ctx.now(),
                        vec![("backup", backup.0 as u64), ("failovers", n)],
                    );
                }
                let dst = self.dir.actor_of(backup);
                let id = self.alloc_rpc_to(dst, Pending::FetchSegments { recovery });
                self.send(
                    ctx,
                    dst,
                    Envelope::req(
                        id,
                        Request::FetchSegments {
                            owner: crashed,
                            min_segment: from_segment,
                        },
                    ),
                );
            }
            None => {
                let n = self.stats.recovery_fetch_gaps.inc();
                if self.trace.is_on() {
                    self.trace.instant(
                        "recovery:gap",
                        "recovery",
                        ctx.self_id() as u64,
                        lanes::RPC,
                        ctx.now(),
                        vec![("gaps", n)],
                    );
                }
                let Some(rec) = self.recoveries.get_mut(&recovery) else {
                    return;
                };
                rec.pending_fetches = rec.pending_fetches.saturating_sub(1);
                if rec.pending_fetches == 0 {
                    self.queues[Priority::Replay as usize]
                        .push_back(Task::RecoveryReplay { recovery });
                    self.try_assign(ctx);
                }
            }
        }
    }

    fn defer_send(&mut self, worker: usize, dst: ActorId, rpc: RpcId, resp: Response) {
        let cctx = self.workers[worker].cur_ctx;
        self.workers[worker].deferred.push(Deferred::Send(
            dst,
            Envelope::resp(rpc, resp).with_ctx(cctx),
        ));
    }
}

impl Actor<Envelope> for ServerNode {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, Envelope>) {
        if let Some(every) = self.cfg.cleaner_interval {
            ctx.timer(every, KIND_CLEANER);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Envelope>, event: Event<Envelope>) {
        match event {
            Event::Message { src, payload } => {
                self.rx_queue.push_back((src, ctx.now(), payload));
                self.ensure_dispatch(ctx);
            }
            Event::Timer { token: tok } => {
                match tok & 0xff {
                    KIND_DISPATCH => self.on_dispatch_timer(ctx),
                    KIND_WORKER_DONE => self.on_worker_done(ctx, (tok >> 8) as usize),
                    KIND_DEFERRED_SEND => {
                        if let Some((dst, env)) = self.deferred_sends.remove(&(tok >> 8)) {
                            self.send(ctx, dst, env);
                        }
                    }
                    KIND_CLEANER => {
                        self.queues[Priority::Background as usize].push_back(Task::CleanerPass);
                        self.try_assign(ctx);
                        if let Some(every) = self.cfg.cleaner_interval {
                            ctx.timer(every, KIND_CLEANER);
                        }
                    }
                    _ => {}
                }
                if (tok & 0xff) != KIND_DISPATCH {
                    self.flush_offdispatch_charges(ctx.now());
                }
            }
        }
    }
}
