//! Per-server instruments the experiment harness samples.
//!
//! Figures 3, 11, 12 and 14 plot dispatch/worker *utilization*; the node
//! bumps monotonic busy-nanosecond counters and the harness scraper
//! differences them per sampling interval. Migration progress counters
//! feed the rate-over-time plots (Figures 5 and 9).
//!
//! Every field is a `rocksteady-metrics` instrument registered under the
//! `node_*` families with a `server` label, so one registry snapshot
//! exposes the whole fleet. [`NodeStats`] itself is just the typed
//! bundle of handles a server holds; [`NodeStats::view`] is the
//! plain-integer compatibility view tests and examples read.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rocksteady_common::{MigrationId, Nanos, ServerId};
use rocksteady_metrics::{Counter, Registry, Stamp};

/// Family name of the dispatch-overcommit counter (shared with the
/// cluster sampler, which increments it when a sampling window's
/// dispatch busy time exceeds the window itself).
pub const DISPATCH_OVERCOMMIT_FAMILY: &str = "node_dispatch_overcommit_total";
/// Help text for [`DISPATCH_OVERCOMMIT_FAMILY`] (must match at every
/// registration site — the registry deduplicates on name + labels).
pub const DISPATCH_OVERCOMMIT_HELP: &str =
    "sampling windows whose dispatch busy time exceeded the interval (double-charged dispatch)";

/// Instrument bundle for one server. Cheap to record into (each handle
/// is one shared cell); shared with the harness through `Rc`.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Nanoseconds the dispatch core has been busy (poll/classify/tx +
    /// migration-manager continuations). Family `node_dispatch_busy_ns`.
    pub dispatch_busy_ns: Counter,
    /// Nanoseconds all worker cores combined have been busy.
    pub worker_busy_ns: Counter,
    /// Client operations served (each object of a multi-op counts once).
    pub ops_served: Counter,
    /// Bulk Pull RPCs served (source side).
    pub pulls_served: Counter,
    /// PriorityPull RPCs served (source side).
    pub priority_pulls_served: Counter,
    /// Records replayed into this master (migration target side).
    pub records_replayed: Counter,
    /// Record wire bytes received by migration into this master.
    pub bytes_migrated_in: Counter,
    /// Record wire bytes sent out by migration from this master (pull
    /// responses + baseline pushes).
    pub bytes_migrated_out: Counter,
    /// Virtual time the current/last migration started on this node, if
    /// any. Reset semantics: [`NodeStats::begin_migration`] clears the
    /// finish/abandon stamps so a second run cannot inherit stale marks.
    pub migration_started_at: Stamp,
    /// Virtual time that migration finished, if it has.
    pub migration_finished_at: Stamp,
    /// Virtual time the current/last migration was abandoned (source
    /// died or a recovery plan superseded the run), if it was.
    pub migration_abandoned_at: Stamp,
    /// Migration runs abandoned on this node (§3.4 crash paths).
    pub migrations_abandoned: Counter,
    /// `Retry { after }` hints sent to clients (read misses, recovering
    /// ranges, failovers).
    pub retry_hints_sent: Counter,
    /// Client reads deferred behind a PriorityPull during migration.
    pub priority_pull_deferrals: Counter,
    /// Recovery segment fetches re-sent to a surviving backup after the
    /// first backup died.
    pub recovery_fetch_failovers: Counter,
    /// Recovery segment fetches with no surviving backup left — data
    /// that could not be recovered from any replica.
    pub recovery_fetch_gaps: Counter,
    /// Entries replayed by crash recovery.
    pub recovery_replayed: Counter,
    /// Segments reclaimed by the log cleaner.
    pub segments_cleaned: Counter,
    /// Sampling windows in which this server's dispatch busy-time delta
    /// exceeded the window length — the model double-books the dispatch
    /// core (worker-completion sends accrue on top of scheduled
    /// dispatch events). The sampler clamps utilization to 1.0 but
    /// counts each clamped window here instead of hiding it. Family
    /// [`DISPATCH_OVERCOMMIT_FAMILY`].
    pub dispatch_overcommit: Counter,
    /// Per-run migration stamps, keyed by migration id. The single-slot
    /// `migration_*_at` stamps above record only the *last* run (kept for
    /// the exported gauge families); with several migrations overlapping
    /// on one node the harness must consult this map to learn a
    /// *specific* run's fate. Shared through the outer [`StatsHandle`]
    /// `Rc`, not through the registry.
    pub migration_runs: Rc<RefCell<BTreeMap<u64, MigrationRunStamps>>>,
}

/// Start/finish/abandon stamps plus gather/replay progress counters for
/// one migration run on one node. The progress counters are what the
/// flight recorder's stall and backlog detectors watch: a run that is
/// in flight while none of them advance is wedged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRunStamps {
    /// Virtual time the run started on this node.
    pub started_at: Nanos,
    /// Virtual time the run finished, if it has.
    pub finished_at: Option<Nanos>,
    /// Virtual time the run was abandoned, if it was.
    pub abandoned_at: Option<Nanos>,
    /// Records gathered over the wire (bulk + priority pulls).
    pub gathered: u64,
    /// Records handed to replay batches.
    pub replay_received: u64,
    /// Records actually applied by replay (version-max survivors).
    pub replay_applied: u64,
}

impl MigrationRunStamps {
    /// Whether the run is still in flight on this node.
    pub fn in_flight(&self) -> bool {
        self.finished_at.is_none() && self.abandoned_at.is_none()
    }
}

impl NodeStats {
    /// Registers the full `node_*` instrument set for `server` in `reg`
    /// (label `server="<id>"`). Registering the same server twice
    /// returns handles to the same cells.
    pub fn register(reg: &Registry, server: ServerId) -> NodeStats {
        let l = [("server", server.0.to_string())];
        NodeStats {
            dispatch_busy_ns: reg.counter(
                "node_dispatch_busy_ns",
                "nanoseconds the dispatch core was busy",
                &l,
            ),
            worker_busy_ns: reg.counter(
                "node_worker_busy_ns",
                "nanoseconds all worker cores combined were busy",
                &l,
            ),
            ops_served: reg.counter("node_ops_served", "client operations served", &l),
            pulls_served: reg.counter("node_pulls_served", "bulk Pull RPCs served", &l),
            priority_pulls_served: reg.counter(
                "node_priority_pulls_served",
                "PriorityPull RPCs served",
                &l,
            ),
            records_replayed: reg.counter(
                "node_records_replayed",
                "records replayed into this master by migration",
                &l,
            ),
            bytes_migrated_in: reg.counter(
                "node_bytes_migrated_in",
                "record wire bytes received by migration",
                &l,
            ),
            bytes_migrated_out: reg.counter(
                "node_bytes_migrated_out",
                "record wire bytes sent out by migration",
                &l,
            ),
            migration_started_at: reg.stamp(
                "node_migration_started_at_ns",
                "virtual time the current/last migration started (-1 if never)",
                &l,
            ),
            migration_finished_at: reg.stamp(
                "node_migration_finished_at_ns",
                "virtual time the current/last migration finished (-1 if not)",
                &l,
            ),
            migration_abandoned_at: reg.stamp(
                "node_migration_abandoned_at_ns",
                "virtual time the current/last migration was abandoned (-1 if not)",
                &l,
            ),
            migrations_abandoned: reg.counter(
                "node_migrations_abandoned",
                "migration runs abandoned on this node",
                &l,
            ),
            retry_hints_sent: reg.counter(
                "node_retry_hints_sent",
                "Retry{after} hints sent to clients",
                &l,
            ),
            priority_pull_deferrals: reg.counter(
                "node_priority_pull_deferrals",
                "client reads deferred behind a PriorityPull",
                &l,
            ),
            recovery_fetch_failovers: reg.counter(
                "node_recovery_fetch_failovers",
                "recovery fetches re-sent to a surviving backup",
                &l,
            ),
            recovery_fetch_gaps: reg.counter(
                "node_recovery_fetch_gaps",
                "recovery fetches with no surviving backup",
                &l,
            ),
            recovery_replayed: reg.counter(
                "node_recovery_replayed",
                "entries replayed by crash recovery",
                &l,
            ),
            segments_cleaned: reg.counter(
                "node_segments_cleaned",
                "segments reclaimed by the log cleaner",
                &l,
            ),
            dispatch_overcommit: reg.counter(
                DISPATCH_OVERCOMMIT_FAMILY,
                DISPATCH_OVERCOMMIT_HELP,
                &l,
            ),
            migration_runs: Rc::default(),
        }
    }

    /// A bundle of detached instruments (recorded but never exported) —
    /// for unit tests and registry-less construction.
    pub fn detached() -> NodeStats {
        NodeStats::default()
    }

    /// Starts a migration run's accounting: stamps the start and clears
    /// the finish/abandon stamps. Both the Rocksteady and the baseline
    /// paths must call this — a second migration on the same node must
    /// not inherit its predecessor's `finished_at`/`abandoned_at` (the
    /// harness polls those to decide the *current* run's fate).
    pub fn begin_migration(&self, now: Nanos) {
        self.migration_started_at.set(now);
        self.migration_finished_at.clear();
        self.migration_abandoned_at.clear();
    }

    // -------------------------------------------------- per-run stamps --
    //
    // The legacy single-slot stamps above are kept for exported gauges
    // and last-run compatibility; these id-keyed variants are the
    // authoritative record once migrations overlap on a node.

    /// Starts per-run accounting for migration `id` (and updates the
    /// legacy last-run stamps).
    pub fn begin_migration_run(&self, id: MigrationId, now: Nanos) {
        self.begin_migration(now);
        self.migration_runs.borrow_mut().insert(
            id.0,
            MigrationRunStamps {
                started_at: now,
                finished_at: None,
                abandoned_at: None,
                gathered: 0,
                replay_received: 0,
                replay_applied: 0,
            },
        );
    }

    /// Credits `records` gathered over the wire to migration `id`.
    pub fn migration_gathered(&self, id: MigrationId, records: u64) {
        if let Some(r) = self.migration_runs.borrow_mut().get_mut(&id.0) {
            r.gathered += records;
        }
    }

    /// Credits a replay batch (`received` records in, `applied`
    /// surviving version-max) to migration `id`.
    pub fn migration_replayed(&self, id: MigrationId, received: u64, applied: u64) {
        if let Some(r) = self.migration_runs.borrow_mut().get_mut(&id.0) {
            r.replay_received += received;
            r.replay_applied += applied;
        }
    }

    /// Stamps migration `id` finished on this node.
    pub fn finish_migration_run(&self, id: MigrationId, now: Nanos) {
        self.migration_finished_at.set(now);
        if let Some(r) = self.migration_runs.borrow_mut().get_mut(&id.0) {
            r.finished_at = Some(now);
        }
    }

    /// Stamps migration `id` abandoned on this node.
    pub fn abandon_migration_run(&self, id: MigrationId, now: Nanos) {
        self.migration_abandoned_at.set(now);
        if let Some(r) = self.migration_runs.borrow_mut().get_mut(&id.0) {
            r.abandoned_at = Some(now);
        }
    }

    /// Per-run stamps for migration `id`, if this node ever began it.
    pub fn migration_run(&self, id: MigrationId) -> Option<MigrationRunStamps> {
        self.migration_runs.borrow().get(&id.0).copied()
    }

    /// All per-run stamps recorded on this node, in migration-id order.
    pub fn migration_runs_snapshot(&self) -> Vec<(MigrationId, MigrationRunStamps)> {
        self.migration_runs
            .borrow()
            .iter()
            .map(|(id, r)| (MigrationId(*id), *r))
            .collect()
    }

    /// Plain-integer view of every instrument, for assertions and
    /// reports.
    pub fn view(&self) -> NodeStatsView {
        NodeStatsView {
            dispatch_busy_ns: self.dispatch_busy_ns.get(),
            worker_busy_ns: self.worker_busy_ns.get(),
            ops_served: self.ops_served.get(),
            pulls_served: self.pulls_served.get(),
            priority_pulls_served: self.priority_pulls_served.get(),
            records_replayed: self.records_replayed.get(),
            bytes_migrated_in: self.bytes_migrated_in.get(),
            bytes_migrated_out: self.bytes_migrated_out.get(),
            migration_started_at: self.migration_started_at.get(),
            migration_finished_at: self.migration_finished_at.get(),
            migration_abandoned_at: self.migration_abandoned_at.get(),
            migrations_abandoned: self.migrations_abandoned.get(),
            retry_hints_sent: self.retry_hints_sent.get(),
            priority_pull_deferrals: self.priority_pull_deferrals.get(),
            recovery_fetch_failovers: self.recovery_fetch_failovers.get(),
            recovery_fetch_gaps: self.recovery_fetch_gaps.get(),
            recovery_replayed: self.recovery_replayed.get(),
            segments_cleaned: self.segments_cleaned.get(),
            dispatch_overcommit: self.dispatch_overcommit.get(),
        }
    }
}

/// Point-in-time integer copy of [`NodeStats`] — the compatibility view
/// the pre-registry `NodeStats` struct used to be.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented on `NodeStats`
pub struct NodeStatsView {
    pub dispatch_busy_ns: u64,
    pub worker_busy_ns: u64,
    pub ops_served: u64,
    pub pulls_served: u64,
    pub priority_pulls_served: u64,
    pub records_replayed: u64,
    pub bytes_migrated_in: u64,
    pub bytes_migrated_out: u64,
    pub migration_started_at: Option<Nanos>,
    pub migration_finished_at: Option<Nanos>,
    pub migration_abandoned_at: Option<Nanos>,
    pub migrations_abandoned: u64,
    pub retry_hints_sent: u64,
    pub priority_pull_deferrals: u64,
    pub recovery_fetch_failovers: u64,
    pub recovery_fetch_gaps: u64,
    pub recovery_replayed: u64,
    pub segments_cleaned: u64,
    pub dispatch_overcommit: u64,
}

/// Shared handle to a server's stats. Instruments are interiorly
/// mutable, so no `RefCell` wrapper is needed.
pub type StatsHandle = Rc<NodeStats>;

/// Creates a fresh detached stats handle (not exported anywhere).
pub fn stats_handle() -> StatsHandle {
    Rc::new(NodeStats::detached())
}

/// Creates a stats handle registered in `reg` under `server`'s label.
pub fn registered_stats(reg: &Registry, server: ServerId) -> StatsHandle {
    Rc::new(NodeStats::register(reg, server))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_is_shared() {
        let h = stats_handle();
        let h2 = Rc::clone(&h);
        h.ops_served.add(3);
        assert_eq!(h2.ops_served.get(), 3);
    }

    #[test]
    fn registered_twice_shares_cells() {
        let reg = Registry::new();
        let a = NodeStats::register(&reg, ServerId(2));
        let b = NodeStats::register(&reg, ServerId(2));
        a.pulls_served.inc();
        assert_eq!(b.pulls_served.get(), 1);
        assert_eq!(reg.validate().unwrap().instruments, 19);
    }

    #[test]
    fn begin_migration_clears_stale_stamps() {
        let s = NodeStats::detached();
        s.begin_migration(10);
        s.migration_finished_at.set(50);
        // Second run: stale finish/abandon marks must not survive.
        s.begin_migration(100);
        let v = s.view();
        assert_eq!(v.migration_started_at, Some(100));
        assert_eq!(v.migration_finished_at, None);
        assert_eq!(v.migration_abandoned_at, None);
    }

    #[test]
    fn per_run_stamps_survive_overlapping_runs() {
        let s = NodeStats::detached();
        let (m1, m2) = (MigrationId(1), MigrationId(2));
        s.begin_migration_run(m1, 10);
        s.begin_migration_run(m2, 20);
        s.finish_migration_run(m1, 30);
        // The second run beginning (and the first finishing) must not
        // clobber either run's record — the single-slot bug this map
        // replaces.
        let r1 = s.migration_run(m1).unwrap();
        assert_eq!(r1.started_at, 10);
        assert_eq!(r1.finished_at, Some(30));
        assert_eq!(r1.abandoned_at, None);
        let r2 = s.migration_run(m2).unwrap();
        assert_eq!(r2.started_at, 20);
        assert_eq!(r2.finished_at, None);
        s.abandon_migration_run(m2, 40);
        assert_eq!(s.migration_run(m2).unwrap().abandoned_at, Some(40));
        assert_eq!(s.migration_runs_snapshot().len(), 2);
        // Handles share the map.
        let h = Rc::new(s);
        let h2 = Rc::clone(&h);
        h.finish_migration_run(m2, 50);
        assert_eq!(h2.migration_run(m2).unwrap().finished_at, Some(50));
    }

    #[test]
    fn progress_counters_accumulate_per_run() {
        let s = NodeStats::detached();
        let (m1, m2) = (MigrationId(1), MigrationId(2));
        s.begin_migration_run(m1, 10);
        s.begin_migration_run(m2, 20);
        s.migration_gathered(m1, 100);
        s.migration_gathered(m1, 50);
        s.migration_replayed(m1, 120, 115);
        s.migration_gathered(m2, 7);
        let r1 = s.migration_run(m1).unwrap();
        assert_eq!(r1.gathered, 150);
        assert_eq!(r1.replay_received, 120);
        assert_eq!(r1.replay_applied, 115);
        assert!(r1.in_flight());
        assert_eq!(s.migration_run(m2).unwrap().gathered, 7);
        // Progress for an unknown run is ignored, not invented.
        s.migration_gathered(MigrationId(99), 1);
        assert!(s.migration_run(MigrationId(99)).is_none());
        s.finish_migration_run(m1, 30);
        assert!(!s.migration_run(m1).unwrap().in_flight());
    }
}
