//! Per-server counters the experiment harness samples.
//!
//! Figures 3, 11, 12 and 14 plot dispatch/worker *utilization*; the node
//! accumulates monotonic busy-nanosecond counters and the harness
//! differences them per sampling interval. Migration progress counters
//! feed the rate-over-time plots (Figures 5 and 9).

use std::cell::RefCell;
use std::rc::Rc;

use rocksteady_common::Nanos;

/// Monotonic counters for one server. Shared with the harness through
/// `Rc<RefCell<_>>` so sampling never has to reach into the actor.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Nanoseconds the dispatch core has been busy (poll/classify/tx +
    /// migration-manager continuations).
    pub dispatch_busy_ns: u64,
    /// Nanoseconds all worker cores combined have been busy.
    pub worker_busy_ns: u64,
    /// Client operations served (each object of a multi-op counts once).
    pub ops_served: u64,
    /// Bulk Pull RPCs served (source side).
    pub pulls_served: u64,
    /// PriorityPull RPCs served (source side).
    pub priority_pulls_served: u64,
    /// Records replayed into this master (migration target side).
    pub records_replayed: u64,
    /// Record wire bytes received by migration into this master.
    pub bytes_migrated_in: u64,
    /// Record wire bytes sent out by migration from this master (pull
    /// responses + baseline pushes).
    pub bytes_migrated_out: u64,
    /// Virtual time the current/last migration started on this node
    /// (target side), if any.
    pub migration_started_at: Option<Nanos>,
    /// Virtual time that migration finished, if it has.
    pub migration_finished_at: Option<Nanos>,
    /// Virtual time the current/last migration was abandoned (source
    /// died or a recovery plan superseded the run), if it was. Reset
    /// when a new migration starts.
    pub migration_abandoned_at: Option<Nanos>,
    /// Migration runs abandoned on this node (§3.4 crash paths).
    pub migrations_abandoned: u64,
    /// `Retry { after }` hints sent to clients (read misses, recovering
    /// ranges, failovers).
    pub retry_hints_sent: u64,
    /// Client reads deferred behind a PriorityPull during migration.
    pub priority_pull_deferrals: u64,
    /// Recovery segment fetches re-sent to a surviving backup after the
    /// first backup died.
    pub recovery_fetch_failovers: u64,
    /// Recovery segment fetches with no surviving backup left — data
    /// that could not be recovered from any replica.
    pub recovery_fetch_gaps: u64,
    /// Entries replayed by crash recovery.
    pub recovery_replayed: u64,
    /// Segments reclaimed by the log cleaner.
    pub segments_cleaned: u64,
}

/// Shared handle to a server's stats.
pub type StatsHandle = Rc<RefCell<NodeStats>>;

/// Creates a fresh shared stats handle.
pub fn stats_handle() -> StatsHandle {
    Rc::new(RefCell::new(NodeStats::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_is_shared() {
        let h = stats_handle();
        let h2 = Rc::clone(&h);
        h.borrow_mut().ops_served += 3;
        assert_eq!(h2.borrow().ops_served, 3);
    }
}
