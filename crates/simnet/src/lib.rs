//! Deterministic discrete-event simulation kernel with a NIC/link model.
//!
//! This is the substitution for the paper's 24-node CloudLab cluster (see
//! DESIGN.md §1): servers, backups, the coordinator, and clients are
//! [`Actor`]s exchanging messages under a virtual nanosecond clock. The
//! kernel provides exactly two event kinds — message delivery and timer
//! expiry — plus a transmit-side NIC model:
//!
//! - every actor has a NIC with a line rate; a message of `n` bytes
//!   occupies the sender's NIC for `n / line_rate` (transmit
//!   serialization), so bulk migration traffic and foreground responses
//!   queue behind each other exactly as they would on a real 40 Gbps
//!   port (§2.2, §3.2);
//! - delivery adds a fixed one-way latency (propagation + switch);
//! - messages to dead actors are dropped (crash testing, §3.4).
//!
//! Execution is single-threaded and fully deterministic: events are
//! ordered by `(time, sequence number)`, so the same setup and seed
//! replays the same trace (the `determinism` integration test depends on
//! this).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rocksteady_common::rng::Prng;
use rocksteady_common::Nanos;

pub use rocksteady_common::wire::{SimMessage, WireSized};

/// Identifies an actor within one simulation.
pub type ActorId = usize;

/// Who lives where in the simulation: maps logical server ids to actor
/// ids plus the coordinator. Shared by servers and clients for routing.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    /// The coordinator's actor id.
    pub coordinator: ActorId,
    /// Actor id of each server.
    pub servers: std::collections::HashMap<rocksteady_common::ServerId, ActorId>,
}

impl Directory {
    /// Actor id for a server.
    ///
    /// # Panics
    ///
    /// Panics if the server is unknown (a wiring bug, not a runtime
    /// condition).
    pub fn actor_of(&self, id: rocksteady_common::ServerId) -> ActorId {
        *self
            .servers
            .get(&id)
            .unwrap_or_else(|| panic!("unknown server {id}"))
    }
}

/// An event delivered to an actor.
#[derive(Debug)]
pub enum Event<M> {
    /// A message arrived from `src`.
    Message {
        /// Sending actor.
        src: ActorId,
        /// The payload.
        payload: M,
    },
    /// A timer armed with [`Ctx::timer`] fired.
    Timer {
        /// The token passed when arming.
        token: u64,
    },
}

/// Simulation participants implement this.
pub trait Actor<M> {
    /// Called once when the simulation starts; arm initial timers here.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Called for every delivered event.
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, event: Event<M>);

    /// Downcasting hook so the harness can reach concrete actor state
    /// between steps (preloading tables, inspecting masters). Implement
    /// as `self`.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Network parameters shared by all links (single-switch fabric,
/// Table 1).
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Line rate in bytes per nanosecond (5.0 ≈ 40 Gbps).
    pub bytes_per_ns: f64,
    /// One-way latency between any two actors, in nanoseconds.
    pub one_way_latency_ns: Nanos,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            bytes_per_ns: 5.0,
            one_way_latency_ns: 1_800,
        }
    }
}

/// The per-event interface an actor uses to act on the world.
pub struct Ctx<'a, M> {
    now: Nanos,
    self_id: ActorId,
    /// Deterministic per-simulation RNG (actors should derive their own
    /// streams at setup; this one is for ad-hoc jitter).
    pub rng: &'a mut Prng,
    actions: &'a mut Vec<Action<M>>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The id of the actor handling this event.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Sends `payload` to `dst` through the NIC model. Delivery time is
    /// `max(now, sender nic free) + wire + one_way_latency`.
    pub fn send(&mut self, dst: ActorId, payload: M) {
        self.actions.push(Action::Send { dst, payload });
    }

    /// Arms a timer that fires back on this actor after `delay`.
    pub fn timer(&mut self, delay: Nanos, token: u64) {
        self.actions.push(Action::Timer { delay, token });
    }

    /// Marks another actor dead as of now (crash injection: the control
    /// actor kills a server mid-run, §3.4). All of its queued and future
    /// traffic is dropped.
    pub fn kill(&mut self, actor: ActorId) {
        self.actions.push(Action::Kill { actor });
    }
}

enum Action<M> {
    Send { dst: ActorId, payload: M },
    Timer { delay: Nanos, token: u64 },
    Kill { actor: ActorId },
}

struct Queued<M> {
    at: Nanos,
    seq: u64,
    dst: ActorId,
    event: Event<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Slot<M> {
    actor: Box<dyn Actor<M>>,
    alive: bool,
    /// Earliest time this actor's NIC can begin the next transmission.
    nic_free: Nanos,
}

/// The simulation: actors, the event heap, and the clock.
pub struct Simulation<M: SimMessage> {
    now: Nanos,
    seq: u64,
    heap: BinaryHeap<Reverse<Queued<M>>>,
    slots: Vec<Slot<M>>,
    nic: NicConfig,
    rng: Prng,
    started: bool,
    events_processed: u64,
    actions: Vec<Action<M>>,
}

impl<M: SimMessage> Simulation<M> {
    /// Creates an empty simulation.
    pub fn new(nic: NicConfig, seed: u64) -> Self {
        Simulation {
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            nic,
            rng: Prng::new(seed),
            started: false,
            events_processed: 0,
            actions: Vec::new(),
        }
    }

    /// Adds an actor; returns its id. All actors must be added before the
    /// first [`Simulation::step`].
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        assert!(!self.started, "actors must be added before the run starts");
        self.slots.push(Slot {
            actor,
            alive: true,
            nic_free: 0,
        });
        self.slots.len() - 1
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Total events processed so far (a cheap trace digest for
    /// determinism checks).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Marks an actor dead: it receives no further events and all traffic
    /// to it is silently dropped (a crashed server, §3.4).
    pub fn kill(&mut self, id: ActorId) {
        self.slots[id].alive = false;
    }

    /// Whether the actor is alive.
    pub fn is_alive(&self, id: ActorId) -> bool {
        self.slots[id].alive
    }

    /// Mutable access to an actor, for harness setup/inspection between
    /// steps (e.g. preloading a table or sampling statistics).
    pub fn actor_mut(&mut self, id: ActorId) -> &mut dyn Actor<M> {
        &mut *self.slots[id].actor
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.slots.len() {
            let mut actions = std::mem::take(&mut self.actions);
            {
                let mut ctx = Ctx {
                    now: self.now,
                    self_id: id,
                    rng: &mut self.rng,
                    actions: &mut actions,
                };
                self.slots[id].actor.on_start(&mut ctx);
            }
            self.actions = actions;
            self.flush_actions(id);
        }
    }

    fn flush_actions(&mut self, src: ActorId) {
        let actions = std::mem::take(&mut self.actions);
        for action in actions {
            match action {
                Action::Send { dst, mut payload } => {
                    // Stamp the virtual send time before the NIC charges
                    // serialization: receivers use it to split network
                    // time out of end-to-end latency (trace layer).
                    payload.stamp_sent(self.now);
                    let bytes = payload.wire_size();
                    let wire = (bytes as f64 / self.nic.bytes_per_ns).round() as Nanos;
                    let depart = self.now.max(self.slots[src].nic_free) + wire;
                    self.slots[src].nic_free = depart;
                    // Departure stamp: serialization + NIC queueing are
                    // `depart - sent`, which the profiler splits out of
                    // round-trip time.
                    payload.stamp_departed(depart);
                    let at = depart + self.nic.one_way_latency_ns;
                    self.push(Queued {
                        at,
                        seq: 0,
                        dst,
                        event: Event::Message { src, payload },
                    });
                }
                Action::Timer { delay, token } => {
                    self.push(Queued {
                        at: self.now + delay,
                        seq: 0,
                        dst: src,
                        event: Event::Timer { token },
                    });
                }
                Action::Kill { actor } => {
                    self.slots[actor].alive = false;
                }
            }
        }
    }

    /// Typed access to an actor's concrete state, for harness
    /// setup/inspection between steps.
    ///
    /// # Panics
    ///
    /// Panics if the actor is not a `T` (a harness wiring bug).
    pub fn actor_as<T: 'static>(&mut self, id: ActorId) -> &mut T {
        self.slots[id]
            .actor
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("actor type mismatch")
    }

    fn push(&mut self, mut q: Queued<M>) {
        q.seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(q));
    }

    /// Processes one event. Returns false when the heap is empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some(Reverse(q)) = self.heap.pop() else {
            return false;
        };
        debug_assert!(q.at >= self.now, "time went backwards");
        self.now = q.at;
        if !self.slots[q.dst].alive {
            return true;
        }
        self.events_processed += 1;
        let mut actions = std::mem::take(&mut self.actions);
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: q.dst,
                rng: &mut self.rng,
                actions: &mut actions,
            };
            self.slots[q.dst].actor.on_event(&mut ctx, q.event);
        }
        self.actions = actions;
        self.flush_actions(q.dst);
        true
    }

    /// Runs until the clock reaches `deadline` (events at exactly
    /// `deadline` still run) or the heap empties.
    pub fn run_until(&mut self, deadline: Nanos) {
        self.start_if_needed();
        loop {
            match self.heap.peek() {
                Some(Reverse(q)) if q.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        self.now = self.now.max(deadline);
    }

    /// Runs until no events remain.
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug)]
    struct Ping {
        bytes: u64,
    }

    impl WireSized for Ping {
        fn wire_size(&self) -> u64 {
            self.bytes
        }
    }

    impl SimMessage for Ping {}

    /// Replies to every message; logs delivery times.
    struct Echo {
        log: Rc<RefCell<Vec<(Nanos, ActorId)>>>,
        reply: bool,
    }

    impl Actor<Ping> for Echo {
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }

        fn on_event(&mut self, ctx: &mut Ctx<'_, Ping>, event: Event<Ping>) {
            if let Event::Message { src, payload } = event {
                self.log.borrow_mut().push((ctx.now(), src));
                if self.reply {
                    ctx.send(
                        src,
                        Ping {
                            bytes: payload.bytes,
                        },
                    );
                }
            }
        }
    }

    /// Sends `n` messages of `bytes` each to `dst` at start.
    struct Blaster {
        dst: ActorId,
        n: usize,
        bytes: u64,
        responses: Rc<RefCell<Vec<Nanos>>>,
    }

    impl Actor<Ping> for Blaster {
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }

        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
            for _ in 0..self.n {
                ctx.send(self.dst, Ping { bytes: self.bytes });
            }
        }

        fn on_event(&mut self, ctx: &mut Ctx<'_, Ping>, event: Event<Ping>) {
            if let Event::Message { .. } = event {
                self.responses.borrow_mut().push(ctx.now());
            }
        }
    }

    fn nic() -> NicConfig {
        NicConfig {
            bytes_per_ns: 5.0,
            one_way_latency_ns: 1_000,
        }
    }

    #[test]
    fn message_delivery_time_includes_wire_and_latency() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(nic(), 1);
        let echo = sim.add_actor(Box::new(Echo {
            log: Rc::clone(&log),
            reply: false,
        }));
        let responses = Rc::new(RefCell::new(Vec::new()));
        sim.add_actor(Box::new(Blaster {
            dst: echo,
            n: 1,
            bytes: 5_000, // 1 us of wire time at 5 B/ns
            responses,
        }));
        sim.run_to_idle();
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        // wire (1000 ns) + latency (1000 ns).
        assert_eq!(log[0].0, 2_000);
    }

    #[test]
    fn nic_serializes_back_to_back_sends() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(nic(), 1);
        let echo = sim.add_actor(Box::new(Echo {
            log: Rc::clone(&log),
            reply: false,
        }));
        let responses = Rc::new(RefCell::new(Vec::new()));
        sim.add_actor(Box::new(Blaster {
            dst: echo,
            n: 3,
            bytes: 5_000,
            responses,
        }));
        sim.run_to_idle();
        let times: Vec<Nanos> = log.borrow().iter().map(|&(t, _)| t).collect();
        // Transmissions queue on the sender NIC: 1us apart.
        assert_eq!(times, vec![2_000, 3_000, 4_000]);
    }

    #[test]
    fn round_trip() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let responses = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(nic(), 1);
        let echo = sim.add_actor(Box::new(Echo { log, reply: true }));
        sim.add_actor(Box::new(Blaster {
            dst: echo,
            n: 1,
            bytes: 100,
            responses: Rc::clone(&responses),
        }));
        sim.run_to_idle();
        let responses = responses.borrow();
        assert_eq!(responses.len(), 1);
        // 2 * (20ns wire + 1000ns latency).
        assert_eq!(responses[0], 2_040);
    }

    #[test]
    fn dead_actors_drop_traffic() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let responses = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(nic(), 1);
        let echo = sim.add_actor(Box::new(Echo {
            log: Rc::clone(&log),
            reply: true,
        }));
        sim.add_actor(Box::new(Blaster {
            dst: echo,
            n: 5,
            bytes: 100,
            responses: Rc::clone(&responses),
        }));
        sim.kill(echo);
        sim.run_to_idle();
        assert!(log.borrow().is_empty());
        assert!(responses.borrow().is_empty());
        assert!(!sim.is_alive(echo));
    }

    /// Timer-based ticker counting fires.
    struct Ticker {
        period: Nanos,
        fires: Rc<RefCell<Vec<Nanos>>>,
        remaining: u32,
    }

    impl Actor<Ping> for Ticker {
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }

        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
            ctx.timer(self.period, 7);
        }

        fn on_event(&mut self, ctx: &mut Ctx<'_, Ping>, event: Event<Ping>) {
            if let Event::Timer { token } = event {
                assert_eq!(token, 7);
                self.fires.borrow_mut().push(ctx.now());
                self.remaining -= 1;
                if self.remaining > 0 {
                    ctx.timer(self.period, 7);
                }
            }
        }
    }

    #[test]
    fn timers_fire_periodically() {
        let fires = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(nic(), 1);
        sim.add_actor(Box::new(Ticker {
            period: 500,
            fires: Rc::clone(&fires),
            remaining: 4,
        }));
        sim.run_to_idle();
        assert_eq!(*fires.borrow(), vec![500, 1_000, 1_500, 2_000]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let fires = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(nic(), 1);
        sim.add_actor(Box::new(Ticker {
            period: 100,
            fires: Rc::clone(&fires),
            remaining: 1_000,
        }));
        sim.run_until(350);
        assert_eq!(fires.borrow().len(), 3);
        assert_eq!(sim.now(), 350);
        sim.run_until(400);
        assert_eq!(fires.borrow().len(), 4);
    }

    #[test]
    fn deterministic_event_counts() {
        let count = |seed| {
            let fires = Rc::new(RefCell::new(Vec::new()));
            let responses = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Simulation::new(nic(), seed);
            let echo = sim.add_actor(Box::new(Echo {
                log: fires,
                reply: true,
            }));
            sim.add_actor(Box::new(Blaster {
                dst: echo,
                n: 50,
                bytes: 777,
                responses,
            }));
            sim.run_to_idle();
            sim.events_processed()
        };
        assert_eq!(count(1), count(1));
        assert_eq!(count(1), count(2), "seed must not change this workload");
    }
}
