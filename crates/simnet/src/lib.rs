//! Deterministic discrete-event simulation kernel with a NIC/link model.
//!
//! This is the substitution for the paper's 24-node CloudLab cluster (see
//! DESIGN.md §1): servers, backups, the coordinator, and clients are
//! [`Actor`]s exchanging messages under a virtual nanosecond clock. The
//! kernel provides exactly two event kinds — message delivery and timer
//! expiry — plus a transmit-side NIC model:
//!
//! - every actor has a NIC with a line rate; a message of `n` bytes
//!   occupies the sender's NIC for `n / line_rate` (transmit
//!   serialization), so bulk migration traffic and foreground responses
//!   queue behind each other exactly as they would on a real 40 Gbps
//!   port (§2.2, §3.2);
//! - delivery adds a fixed one-way latency (propagation + switch);
//! - messages to dead actors are dropped (crash testing, §3.4).
//!
//! Execution is single-threaded and fully deterministic: events are
//! ordered by `(time, sequence number)`, so the same setup and seed
//! replays the same trace (the `determinism` integration test depends on
//! this).
//!
//! # Scheduler
//!
//! Two event-queue implementations exist behind [`SchedulerKind`]: the
//! original global binary heap and a hierarchical calendar queue
//! (timing wheel + sorted near bucket + far heap) that makes insert and
//! pop O(1) amortized at paper-scale event populations. Both pop events
//! in exactly `(time, sequence)` order, so traces are byte-identical
//! across the swap (the determinism suite asserts this); the calendar
//! queue is the default. See DESIGN.md §3.11.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rocksteady_common::rng::Prng;
use rocksteady_common::Nanos;

pub use rocksteady_common::wire::{SimMessage, WireSized};

/// Identifies an actor within one simulation.
pub type ActorId = usize;

/// Who lives where in the simulation: maps logical server ids to actor
/// ids plus the coordinator. Shared by servers and clients for routing.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    /// The coordinator's actor id.
    pub coordinator: ActorId,
    /// Actor id of each server.
    pub servers: std::collections::HashMap<rocksteady_common::ServerId, ActorId>,
}

impl Directory {
    /// Actor id for a server.
    ///
    /// # Panics
    ///
    /// Panics if the server is unknown (a wiring bug, not a runtime
    /// condition).
    pub fn actor_of(&self, id: rocksteady_common::ServerId) -> ActorId {
        *self
            .servers
            .get(&id)
            .unwrap_or_else(|| panic!("unknown server {id}"))
    }
}

/// An event delivered to an actor.
#[derive(Debug)]
pub enum Event<M> {
    /// A message arrived from `src`.
    Message {
        /// Sending actor.
        src: ActorId,
        /// The payload.
        payload: M,
    },
    /// A timer armed with [`Ctx::timer`] fired.
    Timer {
        /// The token passed when arming.
        token: u64,
    },
}

/// Simulation participants implement this.
pub trait Actor<M> {
    /// Called once when the simulation starts; arm initial timers here.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Called for every delivered event.
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, event: Event<M>);

    /// Downcasting hook so the harness can reach concrete actor state
    /// between steps (preloading tables, inspecting masters). Implement
    /// as `self`.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Network parameters shared by all links (single-switch fabric,
/// Table 1).
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Line rate in bytes per nanosecond (5.0 ≈ 40 Gbps).
    pub bytes_per_ns: f64,
    /// One-way latency between any two actors, in nanoseconds.
    pub one_way_latency_ns: Nanos,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            bytes_per_ns: 5.0,
            one_way_latency_ns: 1_800,
        }
    }
}

/// The per-event interface an actor uses to act on the world.
pub struct Ctx<'a, M> {
    now: Nanos,
    self_id: ActorId,
    /// Deterministic per-simulation RNG (actors should derive their own
    /// streams at setup; this one is for ad-hoc jitter).
    pub rng: &'a mut Prng,
    actions: &'a mut Vec<Action<M>>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The id of the actor handling this event.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Sends `payload` to `dst` through the NIC model. Delivery time is
    /// `max(now, sender nic free) + wire + one_way_latency`.
    pub fn send(&mut self, dst: ActorId, payload: M) {
        self.actions.push(Action::Send { dst, payload });
    }

    /// Arms a timer that fires back on this actor after `delay`.
    pub fn timer(&mut self, delay: Nanos, token: u64) {
        self.actions.push(Action::Timer { delay, token });
    }

    /// Marks another actor dead as of now (crash injection: the control
    /// actor kills a server mid-run, §3.4). All of its queued and future
    /// traffic is dropped.
    pub fn kill(&mut self, actor: ActorId) {
        self.actions.push(Action::Kill { actor });
    }
}

enum Action<M> {
    Send { dst: ActorId, payload: M },
    Timer { delay: Nanos, token: u64 },
    Kill { actor: ActorId },
}

/// A queued event's scheduling ticket: deadline, global sequence
/// number (total order tie-break), destination lane, and the payload's
/// slab index. 24 bytes, `Copy` — the only thing the queue tiers move
/// around; the payload itself is written into the [`EventSlab`] once
/// at push and read out once at pop.
#[derive(Clone, Copy)]
struct QRef {
    at: Nanos,
    seq: u64,
    dst: u32,
    idx: u32,
}

impl PartialEq for QRef {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QRef {}
impl PartialOrd for QRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QRef {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Slab interning pending event payloads: a payload is moved in once
/// when queued and out once when delivered, no matter how many times
/// the scheduler reshuffles its [`QRef`] (heap sifts, wheel-to-near
/// migration, bucket sorts). Freed slots recycle LIFO, so the hot
/// working set stays small and cache-resident.
struct EventSlab<M> {
    slots: Vec<Option<Event<M>>>,
    free: Vec<u32>,
}

impl<M> EventSlab<M> {
    fn new() -> Self {
        EventSlab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn alloc(&mut self, event: Event<M>) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx as usize].is_none());
                self.slots[idx as usize] = Some(event);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("event slab overflow");
                self.slots.push(Some(event));
                idx
            }
        }
    }

    fn take(&mut self, idx: u32) -> Event<M> {
        let event = self.slots[idx as usize].take().expect("empty slab slot");
        self.free.push(idx);
        event
    }
}

struct Slot<M> {
    actor: Box<dyn Actor<M>>,
    alive: bool,
    /// Earliest time this actor's NIC can begin the next transmission.
    nic_free: Nanos,
}

/// Which event-queue implementation a [`Simulation`] runs on. Both pop
/// events in exactly `(time, sequence)` order; the calendar queue is
/// O(1) amortized and the default, the binary heap is kept so the
/// determinism suite can assert byte-identical traces across the swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Hierarchical calendar queue (timing wheel + sorted near bucket).
    #[default]
    Calendar,
    /// The original single global `BinaryHeap`.
    BinaryHeap,
}

/// Calendar-queue bucket width: `1 << BUCKET_SHIFT` nanoseconds. One
/// microsecond sits well under the NIC one-way latency (1.8 µs), so a
/// delivered message's follow-up sends land in *future* buckets
/// (unsorted O(1) pushes); only sub-µs timer re-arms hit the sorted
/// near bucket.
const BUCKET_SHIFT: u32 = 10;
/// Inner-wheel span in buckets (must be a power of two): ~1 ms of
/// horizon, covering exactly one *epoch* (`cur >> WHEEL_SHIFT`).
const WHEEL_SLOTS: usize = 1024;
const WHEEL_SHIFT: u32 = WHEEL_SLOTS.trailing_zeros();
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;
/// Outer-wheel span in epochs: each outer slot is one ~1 ms epoch, so
/// the outer wheel covers ~1.07 s — RPC timeouts, sampler ticks, and
/// series timers all land here in O(1) instead of the far heap.
const OUTER_SLOTS: usize = 1024;
const OUTER_WORDS: usize = OUTER_SLOTS / 64;

/// Hierarchical calendar queue over `(at, seq)`-ordered events.
///
/// Four tiers by distance from the cursor:
/// - `near`: the bucket the cursor is in, sorted ascending; pops come
///   off the front ("near-bucket sorting" — a bucket is sorted once,
///   when the cursor enters it).
/// - `wheel`: unsorted per-bucket event lists for the *current epoch*
///   (the `WHEEL_SLOTS`-bucket window aligned at `cur >> WHEEL_SHIFT`);
///   O(1) push.
/// - `outer`: unsorted per-epoch event lists for the next
///   `OUTER_SLOTS - 1` epochs (~1 s); a whole epoch scatters into the
///   inner wheel when the cursor enters it.
/// - `far`: a binary heap for everything past the outer horizon
///   (timers many seconds out); each event migrates inward at most
///   once per tier.
struct CalendarQueue {
    /// Absolute bucket index (`at >> BUCKET_SHIFT`) of `near`.
    cur: u64,
    /// The current bucket, sorted *descending* by `(at, seq)` so pops
    /// come off the tail in O(1). A plain Vec (not a deque) so refill
    /// can swap buffers with a wheel slot and recycle capacity instead
    /// of allocating per bucket.
    near: Vec<QRef>,
    wheel: Vec<Vec<QRef>>,
    /// One bit per wheel slot with events queued, for O(words) scans.
    occupied: [u64; WHEEL_WORDS],
    /// Per-epoch lists for epochs after the current one.
    outer: Vec<Vec<QRef>>,
    outer_occupied: [u64; OUTER_WORDS],
    far: BinaryHeap<Reverse<QRef>>,
    len: usize,
}

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue {
            cur: 0,
            near: Vec::new(),
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WHEEL_WORDS],
            outer: (0..OUTER_SLOTS).map(|_| Vec::new()).collect(),
            outer_occupied: [0; OUTER_WORDS],
            far: BinaryHeap::new(),
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn push(&mut self, q: QRef) {
        self.len += 1;
        let b = q.at >> BUCKET_SHIFT;
        debug_assert!(b >= self.cur, "push into the past");
        if b <= self.cur {
            // Lands in the bucket being drained: keep `near` sorted
            // (descending; pops come off the tail). `at >= now` means
            // the event sorts at or after everything already popped,
            // so ordering stays exact.
            let idx = self.near.partition_point(|e| (e.at, e.seq) > (q.at, q.seq));
            self.near.insert(idx, q);
            return;
        }
        let epoch = b >> WHEEL_SHIFT;
        let cur_epoch = self.cur >> WHEEL_SHIFT;
        if epoch == cur_epoch {
            let slot = (b as usize) & (WHEEL_SLOTS - 1);
            self.wheel[slot].push(q);
            self.occupied[slot / 64] |= 1 << (slot % 64);
        } else if epoch - cur_epoch < OUTER_SLOTS as u64 {
            // Slots can't alias two epochs: live outer entries all lie
            // within `(cur_epoch, cur_epoch + OUTER_SLOTS)`.
            let slot = (epoch as usize) & (OUTER_SLOTS - 1);
            self.outer[slot].push(q);
            self.outer_occupied[slot / 64] |= 1 << (slot % 64);
        } else {
            self.far.push(Reverse(q));
        }
    }

    /// Moves the cursor to the next non-empty bucket and sorts it into
    /// `near`. Caller guarantees `near` is empty and `len > 0`.
    fn refill(&mut self) {
        debug_assert!(self.near.is_empty() && self.len > 0);
        let epoch_base = self.cur & !(WHEEL_SLOTS as u64 - 1);
        self.cur = match self.next_inner_from((self.cur as usize & (WHEEL_SLOTS - 1)) + 1) {
            Some(slot) => epoch_base + slot as u64,
            None => self.advance_epoch(),
        };
        let slot = (self.cur as usize) & (WHEEL_SLOTS - 1);
        self.occupied[slot / 64] &= !(1 << (slot % 64));
        // Swap buffers with the slot: the drained (empty) `near` Vec
        // becomes the slot's list, keeping its capacity for the next
        // events hashed there — zero allocation in steady state.
        std::mem::swap(&mut self.near, &mut self.wheel[slot]);
        // Descending, so pops come off the tail.
        self.near
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
    }

    /// First occupied inner-wheel slot at index `start` or later within
    /// the current epoch (no wraparound — the wheel is epoch-aligned).
    fn next_inner_from(&self, start: usize) -> Option<usize> {
        if start >= WHEEL_SLOTS {
            return None;
        }
        let mut word_idx = start / 64;
        let mut word = self.occupied[word_idx] & (!0u64 << (start % 64));
        loop {
            if word != 0 {
                return Some(word_idx * 64 + word.trailing_zeros() as usize);
            }
            word_idx += 1;
            if word_idx == WHEEL_WORDS {
                return None;
            }
            word = self.occupied[word_idx];
        }
    }

    /// The current epoch's wheel is drained: advance to the next epoch
    /// holding events (nearest occupied outer slot vs. the far head),
    /// scatter that epoch into the inner wheel, migrate far events now
    /// within the outer horizon, and return the first occupied bucket.
    /// Each event crosses each tier boundary at most once, so the whole
    /// hierarchy stays amortized O(1) per event.
    fn advance_epoch(&mut self) -> u64 {
        let cur_epoch = self.cur >> WHEEL_SHIFT;
        let outer_next = self.next_outer_delta().map(|d| cur_epoch + d);
        let far_next = self
            .far
            .peek()
            .map(|Reverse(q)| q.at >> (BUCKET_SHIFT + WHEEL_SHIFT));
        let epoch = match (outer_next, far_next) {
            (Some(o), Some(f)) => o.min(f),
            (Some(o), None) => o,
            (None, Some(f)) => f,
            (None, None) => unreachable!("len > 0 with empty near, wheel, outer, and far"),
        };
        // Scatter the entered epoch's events into the inner wheel.
        let outer_slot = (epoch as usize) & (OUTER_SLOTS - 1);
        self.outer_occupied[outer_slot / 64] &= !(1 << (outer_slot % 64));
        let mut entering = std::mem::take(&mut self.outer[outer_slot]);
        for q in entering.drain(..) {
            let slot = ((q.at >> BUCKET_SHIFT) as usize) & (WHEEL_SLOTS - 1);
            self.wheel[slot].push(q);
            self.occupied[slot / 64] |= 1 << (slot % 64);
        }
        // Hand the (empty) buffer back so its capacity is recycled.
        self.outer[outer_slot] = entering;
        // Migrate far events inside the new outer horizon: the entered
        // epoch's go straight to the inner wheel, later ones to outer.
        let horizon = epoch + OUTER_SLOTS as u64;
        while let Some(Reverse(q)) = self.far.peek() {
            let e = q.at >> (BUCKET_SHIFT + WHEEL_SHIFT);
            if e >= horizon {
                break;
            }
            let Some(Reverse(q)) = self.far.pop() else {
                unreachable!()
            };
            if e == epoch {
                let slot = ((q.at >> BUCKET_SHIFT) as usize) & (WHEEL_SLOTS - 1);
                self.wheel[slot].push(q);
                self.occupied[slot / 64] |= 1 << (slot % 64);
            } else {
                let slot = (e as usize) & (OUTER_SLOTS - 1);
                self.outer[slot].push(q);
                self.outer_occupied[slot / 64] |= 1 << (slot % 64);
            }
        }
        let slot = self
            .next_inner_from(0)
            .expect("entered epoch must hold at least one event");
        (epoch << WHEEL_SHIFT) + slot as u64
    }

    /// Distance (in epochs) from the current epoch to the nearest
    /// occupied outer slot, scanning the occupancy bitmap word-by-word
    /// with wraparound (outer slots are modulo-indexed).
    fn next_outer_delta(&self) -> Option<u64> {
        let start = (((self.cur >> WHEEL_SHIFT) as usize) & (OUTER_SLOTS - 1)) + 1;
        for i in 0..=OUTER_WORDS {
            // Word index, walking wrapped slots [start, start + OUTER_SLOTS).
            let word_idx = ((start / 64) + i) % OUTER_WORDS;
            let mut word = self.outer_occupied[word_idx];
            if i == 0 {
                word &= !0u64 << (start % 64);
            }
            if i == OUTER_WORDS {
                // Wrapped fully around: only slots before `start` remain.
                word &= !(!0u64 << (start % 64));
            }
            if word != 0 {
                let slot = word_idx * 64 + word.trailing_zeros() as usize;
                let cur_slot = ((self.cur >> WHEEL_SHIFT) as usize) & (OUTER_SLOTS - 1);
                let delta = (slot + OUTER_SLOTS - cur_slot) % OUTER_SLOTS;
                debug_assert!(delta > 0);
                return Some(delta as u64);
            }
        }
        None
    }

    fn next_at(&mut self) -> Option<Nanos> {
        if self.near.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.refill();
        }
        self.near.last().map(|q| q.at)
    }

    fn pop(&mut self) -> Option<QRef> {
        if self.near.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.refill();
        }
        let q = self.near.pop();
        debug_assert!(q.is_some());
        self.len -= 1;
        q
    }
}

/// The event queue behind a simulation: one of the two scheduler
/// implementations ([`SchedulerKind`]).
enum EventQueue {
    Heap(BinaryHeap<Reverse<QRef>>),
    // Boxed: the wheel + outer ring headers make the calendar ~370 B,
    // and there is exactly one EventQueue per Simulation anyway.
    Calendar(Box<CalendarQueue>),
}

impl EventQueue {
    fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::BinaryHeap => EventQueue::Heap(BinaryHeap::new()),
            SchedulerKind::Calendar => EventQueue::Calendar(Box::new(CalendarQueue::new())),
        }
    }

    fn push(&mut self, q: QRef) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse(q)),
            EventQueue::Calendar(c) => c.push(q),
        }
    }

    fn pop(&mut self) -> Option<QRef> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(q)| q),
            EventQueue::Calendar(c) => c.pop(),
        }
    }

    /// Deadline of the next event. `&mut` because the calendar queue
    /// may advance its cursor to answer.
    fn next_at(&mut self) -> Option<Nanos> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|Reverse(q)| q.at),
            EventQueue::Calendar(c) => c.next_at(),
        }
    }

    fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Calendar(c) => c.len(),
        }
    }
}

/// The simulation: actors, the event queue, and the clock.
pub struct Simulation<M: SimMessage> {
    now: Nanos,
    seq: u64,
    queue: EventQueue,
    slab: EventSlab<M>,
    slots: Vec<Slot<M>>,
    /// Pending-event depth per destination actor ("event lane"): the
    /// bookkeeping a conservative-lookahead parallel executor needs to
    /// tell which actors have independent work queued.
    lane_depth: Vec<u32>,
    nic: NicConfig,
    rng: Prng,
    started: bool,
    events_processed: u64,
    actions: Vec<Action<M>>,
}

impl<M: SimMessage> Simulation<M> {
    /// Creates an empty simulation on the default scheduler.
    pub fn new(nic: NicConfig, seed: u64) -> Self {
        Simulation::with_scheduler(nic, seed, SchedulerKind::default())
    }

    /// Creates an empty simulation on an explicit scheduler (the
    /// determinism suite runs both and compares traces).
    pub fn with_scheduler(nic: NicConfig, seed: u64, scheduler: SchedulerKind) -> Self {
        Simulation {
            now: 0,
            seq: 0,
            queue: EventQueue::new(scheduler),
            slab: EventSlab::new(),
            slots: Vec::new(),
            lane_depth: Vec::new(),
            nic,
            rng: Prng::new(seed),
            started: false,
            events_processed: 0,
            actions: Vec::new(),
        }
    }

    /// Adds an actor; returns its id. All actors must be added before the
    /// first [`Simulation::step`].
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        assert!(!self.started, "actors must be added before the run starts");
        self.slots.push(Slot {
            actor,
            alive: true,
            nic_free: 0,
        });
        self.slots.len() - 1
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Total events processed so far (a cheap trace digest for
    /// determinism checks).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Marks an actor dead: it receives no further events and all traffic
    /// to it is silently dropped (a crashed server, §3.4).
    pub fn kill(&mut self, id: ActorId) {
        self.slots[id].alive = false;
    }

    /// Whether the actor is alive.
    pub fn is_alive(&self, id: ActorId) -> bool {
        self.slots[id].alive
    }

    /// Mutable access to an actor, for harness setup/inspection between
    /// steps (e.g. preloading a table or sampling statistics).
    pub fn actor_mut(&mut self, id: ActorId) -> &mut dyn Actor<M> {
        &mut *self.slots[id].actor
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.slots.len() {
            let mut actions = std::mem::take(&mut self.actions);
            {
                let mut ctx = Ctx {
                    now: self.now,
                    self_id: id,
                    rng: &mut self.rng,
                    actions: &mut actions,
                };
                self.slots[id].actor.on_start(&mut ctx);
            }
            self.actions = actions;
            self.flush_actions(id);
        }
    }

    fn flush_actions(&mut self, src: ActorId) {
        let actions = std::mem::take(&mut self.actions);
        for action in actions {
            match action {
                Action::Send { dst, mut payload } => {
                    // Stamp the virtual send time before the NIC charges
                    // serialization: receivers use it to split network
                    // time out of end-to-end latency (trace layer).
                    payload.stamp_sent(self.now);
                    let bytes = payload.wire_size();
                    let wire = (bytes as f64 / self.nic.bytes_per_ns).round() as Nanos;
                    let depart = self.now.max(self.slots[src].nic_free) + wire;
                    self.slots[src].nic_free = depart;
                    // Departure stamp: serialization + NIC queueing are
                    // `depart - sent`, which the profiler splits out of
                    // round-trip time.
                    payload.stamp_departed(depart);
                    let at = depart + self.nic.one_way_latency_ns;
                    self.push(at, dst, Event::Message { src, payload });
                }
                Action::Timer { delay, token } => {
                    self.push(self.now + delay, src, Event::Timer { token });
                }
                Action::Kill { actor } => {
                    self.slots[actor].alive = false;
                }
            }
        }
    }

    /// Typed access to an actor's concrete state, for harness
    /// setup/inspection between steps.
    ///
    /// # Panics
    ///
    /// Panics if the actor is not a `T` (a harness wiring bug).
    pub fn actor_as<T: 'static>(&mut self, id: ActorId) -> &mut T {
        self.slots[id]
            .actor
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("actor type mismatch")
    }

    fn push(&mut self, at: Nanos, dst: ActorId, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        if self.lane_depth.len() <= dst {
            self.lane_depth.resize(dst + 1, 0);
        }
        self.lane_depth[dst] += 1;
        let idx = self.slab.alloc(event);
        self.queue.push(QRef {
            at,
            seq,
            dst: dst as u32,
            idx,
        });
    }

    /// Number of events currently queued for `id` (its "lane depth").
    /// A conservative-lookahead executor uses this to find actors with
    /// independent pending work; it is also a cheap backlog probe for
    /// tests and tooling.
    pub fn lane_depth(&self, id: ActorId) -> u32 {
        self.lane_depth.get(id).copied().unwrap_or(0)
    }

    /// Total events currently queued.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Processes one event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some(q) = self.queue.pop() else {
            return false;
        };
        let dst = q.dst as ActorId;
        self.lane_depth[dst] -= 1;
        debug_assert!(q.at >= self.now, "time went backwards");
        self.now = q.at;
        let event = self.slab.take(q.idx);
        if !self.slots[dst].alive {
            return true;
        }
        self.events_processed += 1;
        let mut actions = std::mem::take(&mut self.actions);
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: dst,
                rng: &mut self.rng,
                actions: &mut actions,
            };
            self.slots[dst].actor.on_event(&mut ctx, event);
        }
        self.actions = actions;
        self.flush_actions(dst);
        true
    }

    /// Runs until the clock reaches `deadline` (events at exactly
    /// `deadline` still run) or the queue empties.
    pub fn run_until(&mut self, deadline: Nanos) {
        self.start_if_needed();
        loop {
            match self.queue.next_at() {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        self.now = self.now.max(deadline);
    }

    /// Runs until no events remain.
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug)]
    struct Ping {
        bytes: u64,
    }

    impl WireSized for Ping {
        fn wire_size(&self) -> u64 {
            self.bytes
        }
    }

    impl SimMessage for Ping {}

    /// Replies to every message; logs delivery times.
    struct Echo {
        log: Rc<RefCell<Vec<(Nanos, ActorId)>>>,
        reply: bool,
    }

    impl Actor<Ping> for Echo {
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }

        fn on_event(&mut self, ctx: &mut Ctx<'_, Ping>, event: Event<Ping>) {
            if let Event::Message { src, payload } = event {
                self.log.borrow_mut().push((ctx.now(), src));
                if self.reply {
                    ctx.send(
                        src,
                        Ping {
                            bytes: payload.bytes,
                        },
                    );
                }
            }
        }
    }

    /// Sends `n` messages of `bytes` each to `dst` at start.
    struct Blaster {
        dst: ActorId,
        n: usize,
        bytes: u64,
        responses: Rc<RefCell<Vec<Nanos>>>,
    }

    impl Actor<Ping> for Blaster {
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }

        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
            for _ in 0..self.n {
                ctx.send(self.dst, Ping { bytes: self.bytes });
            }
        }

        fn on_event(&mut self, ctx: &mut Ctx<'_, Ping>, event: Event<Ping>) {
            if let Event::Message { .. } = event {
                self.responses.borrow_mut().push(ctx.now());
            }
        }
    }

    fn nic() -> NicConfig {
        NicConfig {
            bytes_per_ns: 5.0,
            one_way_latency_ns: 1_000,
        }
    }

    #[test]
    fn message_delivery_time_includes_wire_and_latency() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(nic(), 1);
        let echo = sim.add_actor(Box::new(Echo {
            log: Rc::clone(&log),
            reply: false,
        }));
        let responses = Rc::new(RefCell::new(Vec::new()));
        sim.add_actor(Box::new(Blaster {
            dst: echo,
            n: 1,
            bytes: 5_000, // 1 us of wire time at 5 B/ns
            responses,
        }));
        sim.run_to_idle();
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        // wire (1000 ns) + latency (1000 ns).
        assert_eq!(log[0].0, 2_000);
    }

    #[test]
    fn nic_serializes_back_to_back_sends() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(nic(), 1);
        let echo = sim.add_actor(Box::new(Echo {
            log: Rc::clone(&log),
            reply: false,
        }));
        let responses = Rc::new(RefCell::new(Vec::new()));
        sim.add_actor(Box::new(Blaster {
            dst: echo,
            n: 3,
            bytes: 5_000,
            responses,
        }));
        sim.run_to_idle();
        let times: Vec<Nanos> = log.borrow().iter().map(|&(t, _)| t).collect();
        // Transmissions queue on the sender NIC: 1us apart.
        assert_eq!(times, vec![2_000, 3_000, 4_000]);
    }

    #[test]
    fn round_trip() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let responses = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(nic(), 1);
        let echo = sim.add_actor(Box::new(Echo { log, reply: true }));
        sim.add_actor(Box::new(Blaster {
            dst: echo,
            n: 1,
            bytes: 100,
            responses: Rc::clone(&responses),
        }));
        sim.run_to_idle();
        let responses = responses.borrow();
        assert_eq!(responses.len(), 1);
        // 2 * (20ns wire + 1000ns latency).
        assert_eq!(responses[0], 2_040);
    }

    #[test]
    fn dead_actors_drop_traffic() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let responses = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(nic(), 1);
        let echo = sim.add_actor(Box::new(Echo {
            log: Rc::clone(&log),
            reply: true,
        }));
        sim.add_actor(Box::new(Blaster {
            dst: echo,
            n: 5,
            bytes: 100,
            responses: Rc::clone(&responses),
        }));
        sim.kill(echo);
        sim.run_to_idle();
        assert!(log.borrow().is_empty());
        assert!(responses.borrow().is_empty());
        assert!(!sim.is_alive(echo));
    }

    /// Timer-based ticker counting fires.
    struct Ticker {
        period: Nanos,
        fires: Rc<RefCell<Vec<Nanos>>>,
        remaining: u32,
    }

    impl Actor<Ping> for Ticker {
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }

        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
            ctx.timer(self.period, 7);
        }

        fn on_event(&mut self, ctx: &mut Ctx<'_, Ping>, event: Event<Ping>) {
            if let Event::Timer { token } = event {
                assert_eq!(token, 7);
                self.fires.borrow_mut().push(ctx.now());
                self.remaining -= 1;
                if self.remaining > 0 {
                    ctx.timer(self.period, 7);
                }
            }
        }
    }

    #[test]
    fn timers_fire_periodically() {
        let fires = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(nic(), 1);
        sim.add_actor(Box::new(Ticker {
            period: 500,
            fires: Rc::clone(&fires),
            remaining: 4,
        }));
        sim.run_to_idle();
        assert_eq!(*fires.borrow(), vec![500, 1_000, 1_500, 2_000]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let fires = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(nic(), 1);
        sim.add_actor(Box::new(Ticker {
            period: 100,
            fires: Rc::clone(&fires),
            remaining: 1_000,
        }));
        sim.run_until(350);
        assert_eq!(fires.borrow().len(), 3);
        assert_eq!(sim.now(), 350);
        sim.run_until(400);
        assert_eq!(fires.borrow().len(), 4);
    }

    /// Drives one identical workload on both schedulers and compares
    /// delivery logs, or returns a single scheduler's log.
    fn delivery_log(kind: SchedulerKind) -> Vec<(Nanos, ActorId)> {
        let log = Rc::new(RefCell::new(Vec::new()));
        let responses = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::with_scheduler(nic(), 99, kind);
        let echo = sim.add_actor(Box::new(Echo {
            log: Rc::clone(&log),
            reply: true,
        }));
        sim.add_actor(Box::new(Blaster {
            dst: echo,
            n: 40,
            bytes: 333,
            responses,
        }));
        sim.add_actor(Box::new(Ticker {
            period: 700,
            fires: Rc::new(RefCell::new(Vec::new())),
            remaining: 200,
        }));
        sim.run_to_idle();
        let out = log.borrow().clone();
        out
    }

    #[test]
    fn schedulers_deliver_identical_orders() {
        assert_eq!(
            delivery_log(SchedulerKind::Calendar),
            delivery_log(SchedulerKind::BinaryHeap)
        );
    }

    /// Many timers armed for the *same* deadline must fire in arming
    /// (sequence) order on both schedulers.
    struct SameTickArmer {
        fired: Rc<RefCell<Vec<u64>>>,
    }

    impl Actor<Ping> for SameTickArmer {
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }

        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
            for token in 0..64 {
                ctx.timer(1_000, token);
            }
        }

        fn on_event(&mut self, _ctx: &mut Ctx<'_, Ping>, event: Event<Ping>) {
            if let Event::Timer { token } = event {
                self.fired.borrow_mut().push(token);
            }
        }
    }

    #[test]
    fn equal_deadline_events_pop_fifo_on_both_schedulers() {
        for kind in [SchedulerKind::Calendar, SchedulerKind::BinaryHeap] {
            let fired = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Simulation::with_scheduler(nic(), 1, kind);
            sim.add_actor(Box::new(SameTickArmer {
                fired: Rc::clone(&fired),
            }));
            sim.run_to_idle();
            assert_eq!(
                *fired.borrow(),
                (0..64).collect::<Vec<u64>>(),
                "{kind:?}: equal-deadline events must pop in arming order"
            );
        }
    }

    /// Timers far past the wheel horizon (and re-arming across it) must
    /// migrate inward in order.
    #[test]
    fn far_horizon_timers_fire_in_order() {
        for kind in [SchedulerKind::Calendar, SchedulerKind::BinaryHeap] {
            let fires = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Simulation::with_scheduler(nic(), 1, kind);
            // 3 ms period: three wheel horizons out.
            sim.add_actor(Box::new(Ticker {
                period: 3_000_000,
                fires: Rc::clone(&fires),
                remaining: 5,
            }));
            // A fast ticker interleaved within the horizon.
            let fast = Rc::new(RefCell::new(Vec::new()));
            sim.add_actor(Box::new(Ticker {
                period: 250_000,
                fires: Rc::clone(&fast),
                remaining: 60,
            }));
            sim.run_to_idle();
            assert_eq!(
                *fires.borrow(),
                vec![3_000_000, 6_000_000, 9_000_000, 12_000_000, 15_000_000]
            );
            assert_eq!(fast.borrow().len(), 60);
            assert!(fast.borrow().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn lane_depth_tracks_pending_events() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let responses = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(nic(), 1);
        let echo = sim.add_actor(Box::new(Echo { log, reply: false }));
        sim.add_actor(Box::new(Blaster {
            dst: echo,
            n: 7,
            bytes: 100,
            responses,
        }));
        assert_eq!(sim.lane_depth(echo), 0);
        sim.step(); // start hooks flush: 7 sends queued for echo
        assert_eq!(sim.lane_depth(echo), 6, "one delivered by the first step");
        assert_eq!(sim.events_pending(), 6);
        sim.run_to_idle();
        assert_eq!(sim.lane_depth(echo), 0);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn deterministic_event_counts() {
        let count = |seed| {
            let fires = Rc::new(RefCell::new(Vec::new()));
            let responses = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Simulation::new(nic(), seed);
            let echo = sim.add_actor(Box::new(Echo {
                log: fires,
                reply: true,
            }));
            sim.add_actor(Box::new(Blaster {
                dst: echo,
                n: 50,
                bytes: 777,
                responses,
            }));
            sim.run_to_idle();
            sim.events_processed()
        };
        assert_eq!(count(1), count(1));
        assert_eq!(count(1), count(2), "seed must not change this workload");
    }
}
