//! Autonomous tablet placement: policies and admission control.
//!
//! Rocksteady makes migration cheap enough to use *reactively* — the
//! paper's motivating scenarios (§1, §2.1) are load imbalance from
//! skew shift, growth, and node additions, all of which want a
//! coordinator-side loop that notices imbalance and starts migrations
//! on its own. This crate is the pure decision-making half of that
//! loop: given a [`ClusterView`] (per-server load, tablet ownership,
//! SLO headroom, in-flight migrations), a [`PlacementPolicy`] proposes
//! tablet moves and [`AdmissionCaps`] bounds how many may run at once.
//!
//! Everything here is deterministic and side-effect free — the driving
//! actor (in `rocksteady-cluster`) owns the clock, the RPCs, and the
//! migration ids. Policies are pluggable behind a boxed trait so
//! experiments can swap strategies without touching the actor.

use rocksteady_common::{HashRange, Nanos, ServerId, TableId};

/// One tablet as the placement loop sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TabletInfo {
    /// Owning table.
    pub table: TableId,
    /// Key-hash range.
    pub range: HashRange,
}

/// One server's load sample over the last rebalancing interval.
#[derive(Debug, Clone)]
pub struct ServerLoad {
    /// The server.
    pub server: ServerId,
    /// Dispatch-core utilization over the window, 0.0..=1.0. The
    /// dispatch core is the resource that saturates first (§2.1), so
    /// placement balances it rather than worker time or byte counts.
    pub dispatch_util: f64,
    /// Client operations served over the window, per second.
    pub ops_per_sec: f64,
    /// Tablets this server currently owns, in `(table, range.start)`
    /// order.
    pub tablets: Vec<TabletInfo>,
}

/// A migration currently in flight (issued but not yet finished or
/// abandoned), as the admission controller must account for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveInFlight {
    /// Pull source.
    pub source: ServerId,
    /// Replay target.
    pub target: ServerId,
}

/// What a policy sees when asked for proposals.
#[derive(Debug, Clone)]
pub struct ClusterView {
    /// Virtual time of the sample.
    pub at: Nanos,
    /// Per-server loads, sorted by [`ServerId`] (determinism: policies
    /// iterate in this order and break ties by it).
    pub servers: Vec<ServerLoad>,
    /// `sla - windowed p99.9` from the live SLO monitor; `None` when no
    /// SLA is configured or no window has completed yet.
    pub slo_headroom: Option<i64>,
    /// Migrations already running.
    pub in_flight: Vec<MoveInFlight>,
}

/// One proposed tablet move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveProposal {
    /// Tablet to move.
    pub table: TableId,
    /// Its range (must already be a tablet boundary).
    pub range: HashRange,
    /// Current owner.
    pub source: ServerId,
    /// Proposed new owner.
    pub target: ServerId,
}

/// A placement strategy. Implementations must be deterministic: the
/// same sequence of views must always produce the same proposals, in
/// the same order (policies may keep history — e.g. move cooldowns —
/// but never non-deterministic state).
pub trait PlacementPolicy {
    /// Short stable name (lands in reports and CSV headers).
    fn name(&self) -> &'static str;

    /// Proposes tablet moves for this view, most urgent first. The
    /// caller applies admission control; policies should not try to
    /// bound concurrency themselves beyond not proposing nonsense.
    fn propose(&mut self, view: &ClusterView) -> Vec<MoveProposal>;

    /// Clones the policy behind the trait object (configs holding a
    /// boxed policy stay `Clone`).
    fn clone_box(&self) -> Box<dyn PlacementPolicy>;
}

impl Clone for Box<dyn PlacementPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl std::fmt::Debug for Box<dyn PlacementPolicy> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PlacementPolicy({})", self.name())
    }
}

/// Greedy dispatch-load leveling.
///
/// Repeatedly pairs the hottest server with the coldest and proposes
/// moving one of the hot server's tablets across, while the utilization
/// gap exceeds `min_delta`. Per-tablet load is attributed uniformly
/// (`util / tablets`): the simulator keeps per-server, not per-tablet,
/// counters, and tablet-granularity moves converge under uniform
/// attribution as long as hot regions span whole tablets.
#[derive(Debug, Clone)]
pub struct GreedyLoadDelta {
    /// Minimum hottest-minus-coldest dispatch-utilization gap before any
    /// move is proposed (hysteresis: rebalancing churn is not free).
    pub min_delta: f64,
    /// Most proposals per round.
    pub max_moves: usize,
    /// Once proposed, a tablet is not proposed again within this window
    /// (0 disables). Uniform attribution cannot tell which tablet
    /// carries a hotspot, so without a cooldown a single scorching
    /// tablet ping-pongs between servers every round — each bounce a
    /// full migration plus a client-retry storm.
    pub cooldown: Nanos,
    /// Recently proposed tablets: `(table, range.start, proposed_at)`.
    recent: Vec<(TableId, u64, Nanos)>,
}

impl Default for GreedyLoadDelta {
    fn default() -> Self {
        GreedyLoadDelta::new(0.15, 4)
    }
}

impl GreedyLoadDelta {
    /// A leveling policy acting above utilization gap `min_delta`, at
    /// most `max_moves` proposals per round, with no move cooldown.
    pub fn new(min_delta: f64, max_moves: usize) -> Self {
        GreedyLoadDelta {
            min_delta,
            max_moves,
            cooldown: 0,
            recent: Vec::new(),
        }
    }

    /// Sets the per-tablet move cooldown.
    pub fn with_cooldown(mut self, cooldown: Nanos) -> Self {
        self.cooldown = cooldown;
        self
    }

    fn propose_inner(&mut self, view: &ClusterView) -> Vec<MoveProposal> {
        let now = view.at;
        self.recent
            .retain(|&(_, _, at)| now.saturating_sub(at) < self.cooldown);
        // Work on a mutable copy of (util, remaining tablets) so each
        // proposal's estimated effect feeds the next pairing decision.
        let mut servers: Vec<(ServerId, f64, Vec<TabletInfo>)> = view
            .servers
            .iter()
            .map(|s| (s.server, s.dispatch_util, s.tablets.clone()))
            .collect();
        let mut out = Vec::new();
        for _ in 0..self.max_moves {
            if servers.len() < 2 {
                break;
            }
            // Hottest / coldest, ties broken by ServerId (the vec is
            // ServerId-sorted and the comparisons are strict).
            let (mut hot, mut cold) = (0, 0);
            for (i, s) in servers.iter().enumerate() {
                if s.1 > servers[hot].1 {
                    hot = i;
                }
                if s.1 < servers[cold].1 {
                    cold = i;
                }
            }
            let gap = servers[hot].1 - servers[cold].1;
            if hot == cold || gap < self.min_delta || servers[hot].2.is_empty() {
                break;
            }
            // Uniform attribution: moving one of n tablets sheds util/n.
            let share = servers[hot].1 / servers[hot].2.len() as f64;
            // Only move if it actually narrows the gap (a huge share
            // would just swap who is hot).
            if share >= gap {
                break;
            }
            // First tablet of the hot server still outside its cooldown.
            let Some(idx) = servers[hot].2.iter().position(|t| {
                !self
                    .recent
                    .iter()
                    .any(|&(tb, start, _)| tb == t.table && start == t.range.start)
            }) else {
                break;
            };
            let tablet = servers[hot].2.remove(idx);
            servers[hot].1 -= share;
            servers[cold].1 += share;
            self.recent.push((tablet.table, tablet.range.start, now));
            out.push(MoveProposal {
                table: tablet.table,
                range: tablet.range,
                source: servers[hot].0,
                target: servers[cold].0,
            });
        }
        out
    }
}

impl PlacementPolicy for GreedyLoadDelta {
    fn name(&self) -> &'static str {
        "greedy-load-delta"
    }

    fn propose(&mut self, view: &ClusterView) -> Vec<MoveProposal> {
        self.propose_inner(view)
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

/// Greedy leveling gated on SLO headroom.
///
/// Migration costs dispatch time on both participants; starting one
/// while client tails are already brushing the SLA converts imbalance
/// into breaches. This policy proposes the same moves as
/// [`GreedyLoadDelta`] but only when the live p99.9 headroom is above
/// `min_headroom_ns` (and always when no SLA is configured — nothing to
/// protect).
#[derive(Debug, Clone, Default)]
pub struct HeadroomAware {
    /// The underlying leveling policy.
    pub greedy: GreedyLoadDelta,
    /// Required `sla - p99.9` slack before proposing any move.
    pub min_headroom_ns: i64,
}

impl PlacementPolicy for HeadroomAware {
    fn name(&self) -> &'static str {
        "headroom-aware"
    }

    fn propose(&mut self, view: &ClusterView) -> Vec<MoveProposal> {
        match view.slo_headroom {
            Some(h) if h < self.min_headroom_ns => Vec::new(),
            _ => self.greedy.propose_inner(view),
        }
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

/// Concurrency ceilings for admitted migrations.
///
/// Each migration consumes pull bandwidth and dispatch time at its
/// source, replay workers and replication bandwidth at its target, and
/// NIC capacity everywhere; the caps model those shared ceilings. A
/// proposal is admitted only if, counting both in-flight migrations and
/// earlier admissions this round, its source, its target, and the
/// cluster all stay at or under their caps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionCaps {
    /// Max concurrent migrations pulling from one server.
    pub per_source: usize,
    /// Max concurrent migrations replaying into one server.
    pub per_target: usize,
    /// Max concurrent migrations cluster-wide.
    pub cluster: usize,
}

impl Default for AdmissionCaps {
    fn default() -> Self {
        AdmissionCaps {
            per_source: 1,
            per_target: 1,
            cluster: 4,
        }
    }
}

impl AdmissionCaps {
    /// Filters `proposals` (in order) against the caps, counting
    /// `in_flight` migrations as already admitted.
    pub fn admit(
        &self,
        in_flight: &[MoveInFlight],
        proposals: Vec<MoveProposal>,
    ) -> Vec<MoveProposal> {
        let mut active: Vec<MoveInFlight> = in_flight.to_vec();
        let mut admitted = Vec::new();
        for p in proposals {
            if active.len() >= self.cluster {
                break;
            }
            let src_load = active.iter().filter(|m| m.source == p.source).count();
            let tgt_load = active.iter().filter(|m| m.target == p.target).count();
            if src_load >= self.per_source || tgt_load >= self.per_target {
                continue;
            }
            active.push(MoveInFlight {
                source: p.source,
                target: p.target,
            });
            admitted.push(p);
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tablet(table: u64, start: u64, end: u64) -> TabletInfo {
        TabletInfo {
            table: TableId(table),
            range: HashRange { start, end },
        }
    }

    fn view(loads: &[(u32, f64, usize)]) -> ClusterView {
        let servers = loads
            .iter()
            .map(|&(id, util, tablets)| ServerLoad {
                server: ServerId(id),
                dispatch_util: util,
                ops_per_sec: util * 1e6,
                tablets: (0..tablets as u64)
                    .map(|i| tablet(1, i << 32, ((i + 1) << 32) - 1))
                    .collect(),
            })
            .collect();
        ClusterView {
            at: 0,
            servers,
            slo_headroom: None,
            in_flight: Vec::new(),
        }
    }

    #[test]
    fn greedy_moves_from_hottest_to_coldest() {
        let mut p = GreedyLoadDelta::new(0.1, 1);
        let v = view(&[(0, 0.9, 4), (1, 0.2, 4), (2, 0.5, 4)]);
        let moves = p.propose(&v);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].source, ServerId(0));
        assert_eq!(moves[0].target, ServerId(1));
    }

    #[test]
    fn greedy_respects_hysteresis_threshold() {
        let mut p = GreedyLoadDelta::new(0.3, 4);
        // Gap of 0.2 is real but below the threshold: no churn.
        let v = view(&[(0, 0.6, 4), (1, 0.4, 4)]);
        assert!(p.propose(&v).is_empty());
    }

    #[test]
    fn greedy_never_swaps_hot_and_cold() {
        // One tablet holding all the load: moving it would just make
        // the target the new hottest server.
        let mut p = GreedyLoadDelta::new(0.1, 4);
        let v = view(&[(0, 0.9, 1), (1, 0.1, 1)]);
        assert!(p.propose(&v).is_empty());
    }

    #[test]
    fn greedy_is_deterministic_and_multi_move() {
        let mut p = GreedyLoadDelta::new(0.05, 8);
        let v = view(&[(0, 0.9, 8), (1, 0.1, 2), (2, 0.15, 2)]);
        let a = p.propose(&v);
        let b = p.propose(&v);
        assert_eq!(a, b, "same view must give the same proposals");
        assert!(a.len() > 1, "imbalance this wide needs several moves");
        // All moves shed load from the one hot server.
        assert!(a.iter().all(|m| m.source == ServerId(0)));
    }

    #[test]
    fn cooldown_stops_tablet_ping_pong() {
        let mut p = GreedyLoadDelta::new(0.1, 1).with_cooldown(1_000);
        let v0 = view(&[(0, 0.9, 4), (1, 0.2, 4)]);
        let first = p.propose(&v0);
        assert_eq!(first.len(), 1);
        // Same imbalance 100ns later: the just-moved tablet is cooling
        // down, so the policy reaches for the hot server's next tablet
        // instead of bouncing the same one back and forth.
        let mut v1 = v0.clone();
        v1.at = 100;
        let second = p.propose(&v1);
        assert_eq!(second.len(), 1);
        assert_ne!(second[0].range, first[0].range, "no ping-pong");
        // Past the cooldown the original tablet is fair game again.
        let mut v2 = v0.clone();
        v2.at = 2_000;
        assert_eq!(p.propose(&v2), first);
    }

    #[test]
    fn headroom_gate_blocks_when_tails_are_tight() {
        let mut p = HeadroomAware {
            greedy: GreedyLoadDelta::new(0.1, 4),
            min_headroom_ns: 10_000,
        };
        let mut v = view(&[(0, 0.9, 4), (1, 0.2, 4)]);
        v.slo_headroom = Some(5_000); // below the floor: defer
        assert!(p.propose(&v).is_empty());
        v.slo_headroom = Some(50_000);
        assert!(!p.propose(&v).is_empty());
        v.slo_headroom = None; // no SLA configured: nothing to protect
        assert!(!p.propose(&v).is_empty());
    }

    #[test]
    fn admission_caps_bound_source_target_and_cluster() {
        let caps = AdmissionCaps {
            per_source: 1,
            per_target: 2,
            cluster: 3,
        };
        let mk = |src: u32, tgt: u32| MoveProposal {
            table: TableId(1),
            range: HashRange { start: 0, end: 1 },
            source: ServerId(src),
            target: ServerId(tgt),
        };
        // Source 0 already pulling one migration.
        let in_flight = [MoveInFlight {
            source: ServerId(0),
            target: ServerId(9),
        }];
        let admitted = caps.admit(
            &in_flight,
            vec![mk(0, 1), mk(2, 1), mk(3, 1), mk(4, 5), mk(6, 7)],
        );
        // mk(0,1) rejected (per-source), mk(2,1)+mk(3,1) fill target 1's
        // cap of 2... but the cluster cap of 3 (1 in flight + 2 admitted)
        // stops everything after.
        assert_eq!(
            admitted,
            vec![mk(2, 1), mk(3, 1)],
            "per-source, per-target, and cluster caps all bind"
        );
    }

    #[test]
    fn boxed_policies_clone_and_describe_themselves() {
        let b: Box<dyn PlacementPolicy> = Box::new(GreedyLoadDelta::default());
        let c = b.clone();
        assert_eq!(c.name(), "greedy-load-delta");
        assert_eq!(format!("{b:?}"), "PlacementPolicy(greedy-load-delta)");
    }
}
