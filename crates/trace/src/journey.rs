//! Per-trace-id journey reconstruction: the sixth observability layer.
//!
//! Every client operation mints a `CausalCtx` whose trace id rides each
//! RPC issued on the operation's behalf — retries keep it, and the
//! PriorityPull a migration target fires for a waiting read inherits
//! it. Trace-armed runs record that id on the client's `rpc-client`
//! attempt instants and on every server-side per-RPC decomposition
//! instant, which lets this module stitch the node-local events back
//! into one ordered, cross-node *journey*:
//!
//! ```text
//! read@source:stale-map -> read@target:retry -> priority-pull@source -> read@target:ok
//! ```
//!
//! The reconstruction extends the PR 2 telescoping proof across nodes:
//! for a complete journey, the per-hop `net_in + queue + service +
//! hold + net_out` segments plus the client-side gaps between attempts
//! sum *exactly* (integer nanoseconds) to the client-measured
//! first-issue → final-response latency. Under ring-mode tracing the
//! oldest events are evicted first; a journey whose early hops are gone
//! is reported with `truncated: true` and its surviving hops intact —
//! never a panic, never a silently wrong sum (`telescoped` is only set
//! on structurally complete journeys).
//!
//! Everything here is integer-valued and sorted deterministically, so
//! [`export_json`] is byte-identical for the same seed and across the
//! scheduler swap.

use rocksteady_common::Nanos;

use crate::{Phase, TraceEvent};

/// Schema tag stamped into [`export_json`] output.
pub const JOURNEYS_SCHEMA: &str = "rocksteady-journeys-v1";

/// Client-observed outcome codes recorded on `rpc-client` attempt
/// instants (the `status` arg) and echoed per hop.
pub mod status {
    /// The attempt succeeded (final hop of a journey).
    pub const OK: u64 = 0;
    /// The server asked the client to retry after a back-off (a read
    /// miss during migration, or a recovering tablet).
    pub const RETRY: u64 = 1;
    /// The server no longer owns the tablet; the client refreshes its
    /// map (the source half of an ownership flip).
    pub const STALE_MAP: u64 = 2;
    /// No such key.
    pub const NOT_FOUND: u64 = 3;
    /// Any other error outcome.
    pub const OTHER: u64 = 4;

    /// Short human label for a status code (used in chain strings).
    pub fn label(code: u64) -> &'static str {
        match code {
            OK => "ok",
            RETRY => "retry",
            STALE_MAP => "stale-map",
            NOT_FOUND => "not-found",
            _ => "err",
        }
    }
}

/// One server-side hop of a journey.
#[derive(Debug, Clone)]
pub struct Hop {
    /// 1-based client attempt this hop answered; 0 for an off-path hop
    /// done *on behalf of* the operation (e.g. the PriorityPull the
    /// target issued for a waiting read).
    pub attempt: u64,
    /// Actor id (trace `pid`) of the server that executed the hop.
    pub server: u64,
    /// Request name (`read`, `write`, `priority-pull`, ...).
    pub name: &'static str,
    /// The rpc id correlating request and response.
    pub rpc: u64,
    /// Causal depth carried by the RPC's `CausalCtx`.
    pub depth: u64,
    /// Virtual time the request left its sender's NIC.
    pub sent_at: Nanos,
    /// Virtual time the response left the server.
    pub resp_sent: Nanos,
    /// Inbound network segment (arrival − sent).
    pub net_in: Nanos,
    /// Dispatch-queue wait before a worker picked the request up.
    pub queue: Nanos,
    /// Worker service time.
    pub service: Nanos,
    /// Post-service hold (e.g. waiting on replication acks).
    pub hold: Nanos,
    /// Outbound network segment (client completion − `resp_sent`);
    /// only meaningful for on-path hops.
    pub net_out: Nanos,
    /// Client-side wait (back-off, map refresh) between the previous
    /// attempt's completion and this attempt's issue; 0 for the first
    /// attempt and for off-path hops.
    pub gap_before: Nanos,
    /// Client-observed [`status`] code of the attempt (on-path hops).
    pub status: u64,
    /// Whether the hop sits on the client's request/response path (and
    /// therefore participates in the telescoping sum).
    pub on_path: bool,
}

impl Hop {
    /// The four server-side segments of this hop.
    pub fn segments(&self) -> Nanos {
        self.net_in + self.queue + self.service + self.hold
    }
}

/// One reconstructed journey: everything that happened, on every node,
/// for a single client operation.
#[derive(Debug, Clone)]
pub struct Journey {
    /// The operation's trace id.
    pub trace: u64,
    /// Actor id of the client that minted the context.
    pub client: u64,
    /// Issue time of the first surviving attempt (for a complete
    /// journey: the operation's first issue).
    pub issued: Nanos,
    /// Completion time of the last surviving attempt.
    pub completed: Nanos,
    /// `completed - issued`: the client-measured latency over the
    /// surviving window.
    pub e2e: Nanos,
    /// Surviving client attempts.
    pub attempts: u64,
    /// [`status`] code of the last surviving attempt.
    pub final_status: u64,
    /// True when early hops are missing (ring eviction or a response
    /// still in flight at buffer capture); surviving hops are intact
    /// but no end-to-end telescoping claim is made.
    pub truncated: bool,
    /// True when the journey is structurally complete and its on-path
    /// hop segments + gaps sum exactly to `e2e`.
    pub telescoped: bool,
    /// All hops, ordered by response time.
    pub hops: Vec<Hop>,
}

impl Journey {
    /// Whether this journey crossed a live migration: it needed more
    /// than one attempt, or work was done on its behalf off the direct
    /// request path (a PriorityPull).
    pub fn crossed_migration(&self) -> bool {
        self.attempts > 1 || self.hops.iter().any(|h| !h.on_path)
    }

    /// Renders the causal chain as a human-readable arrow string, e.g.
    /// `read@1:retry -> priority-pull@1 -> read@2:ok`.
    pub fn chain(&self) -> String {
        let mut out = String::new();
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                out.push_str(" -> ");
            }
            out.push_str(hop.name);
            out.push('@');
            out.push_str(&hop.server.to_string());
            if hop.on_path {
                out.push(':');
                out.push_str(status::label(hop.status));
            }
        }
        out
    }

    fn push_json(&self, out: &mut String) {
        out.push_str("{\"trace\":");
        out.push_str(&self.trace.to_string());
        out.push_str(",\"client\":");
        out.push_str(&self.client.to_string());
        out.push_str(",\"issued\":");
        out.push_str(&self.issued.to_string());
        out.push_str(",\"completed\":");
        out.push_str(&self.completed.to_string());
        out.push_str(",\"e2e\":");
        out.push_str(&self.e2e.to_string());
        out.push_str(",\"attempts\":");
        out.push_str(&self.attempts.to_string());
        out.push_str(",\"final_status\":");
        out.push_str(&self.final_status.to_string());
        out.push_str(",\"truncated\":");
        out.push_str(if self.truncated { "1" } else { "0" });
        out.push_str(",\"telescoped\":");
        out.push_str(if self.telescoped { "1" } else { "0" });
        out.push_str(",\"crossed\":");
        out.push_str(if self.crossed_migration() { "1" } else { "0" });
        out.push_str(",\"hops_n\":");
        out.push_str(&self.hops.len().to_string());
        out.push_str(",\"chain\":\"");
        out.push_str(&self.chain());
        out.push_str("\",\"hops\":[");
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"attempt\":");
            out.push_str(&hop.attempt.to_string());
            out.push_str(",\"server\":");
            out.push_str(&hop.server.to_string());
            out.push_str(",\"name\":\"");
            out.push_str(hop.name);
            out.push_str("\",\"rpc\":");
            out.push_str(&hop.rpc.to_string());
            out.push_str(",\"depth\":");
            out.push_str(&hop.depth.to_string());
            out.push_str(",\"sent_at\":");
            out.push_str(&hop.sent_at.to_string());
            out.push_str(",\"resp_sent\":");
            out.push_str(&hop.resp_sent.to_string());
            out.push_str(",\"net_in\":");
            out.push_str(&hop.net_in.to_string());
            out.push_str(",\"queue\":");
            out.push_str(&hop.queue.to_string());
            out.push_str(",\"service\":");
            out.push_str(&hop.service.to_string());
            out.push_str(",\"hold\":");
            out.push_str(&hop.hold.to_string());
            out.push_str(",\"net_out\":");
            out.push_str(&hop.net_out.to_string());
            out.push_str(",\"gap_before\":");
            out.push_str(&hop.gap_before.to_string());
            out.push_str(",\"status\":");
            out.push_str(&hop.status.to_string());
            out.push_str(",\"on_path\":");
            out.push_str(if hop.on_path { "1" } else { "0" });
            out.push('}');
        }
        out.push_str("]}");
    }
}

/// One client attempt pulled from an `rpc-client` instant.
struct Attempt {
    attempt: u64,
    rpc: u64,
    issued: Nanos,
    completed: Nanos,
    status: u64,
}

/// One server decomposition instant, pre-parsed.
struct ServerInstant {
    server: u64,
    name: &'static str,
    rpc: u64,
    depth: u64,
    sent_at: Nanos,
    resp_sent: Nanos,
    net_in: Nanos,
    queue: Nanos,
    service: Nanos,
    hold: Nanos,
}

/// Reconstructs every journey present in `events`. `dropped` is the
/// tracer's ring-eviction count (0 for an unbounded buffer) and only
/// influences diagnostics — truncation is detected structurally.
/// Journeys are returned sorted by trace id; hops by response time.
pub fn reconstruct(events: &[TraceEvent], dropped: u64) -> Vec<Journey> {
    let _ = dropped;
    // Pass 1: bucket client attempts and server instants by trace id.
    let mut attempts: std::collections::HashMap<u64, (u64, Vec<Attempt>)> =
        std::collections::HashMap::new();
    let mut servers: std::collections::HashMap<u64, Vec<ServerInstant>> =
        std::collections::HashMap::new();
    for ev in events {
        if ev.ph != Phase::Instant {
            continue;
        }
        let Some(trace) = ev.arg("trace") else {
            continue;
        };
        if trace == 0 {
            continue;
        }
        if ev.name == "rpc-client" {
            let (Some(attempt), Some(rpc), Some(issued), Some(completed), Some(st)) = (
                ev.arg("attempt"),
                ev.arg("rpc"),
                ev.arg("issued"),
                ev.arg("completed"),
                ev.arg("status"),
            ) else {
                continue;
            };
            attempts
                .entry(trace)
                .or_insert((ev.pid, Vec::new()))
                .1
                .push(Attempt {
                    attempt,
                    rpc,
                    issued,
                    completed,
                    status: st,
                });
        } else if ev.cat == "rpc" {
            let (
                Some(rpc),
                Some(sent_at),
                Some(resp_sent),
                Some(net_in),
                Some(queue),
                Some(service),
                Some(hold),
            ) = (
                ev.arg("rpc"),
                ev.arg("sent_at"),
                ev.arg("resp_sent"),
                ev.arg("net_in"),
                ev.arg("queue"),
                ev.arg("service"),
                ev.arg("hold"),
            )
            else {
                continue;
            };
            servers.entry(trace).or_default().push(ServerInstant {
                server: ev.pid,
                name: ev.name,
                rpc,
                depth: ev.arg("hop").unwrap_or(0),
                sent_at,
                resp_sent,
                net_in,
                queue,
                service,
                hold,
            });
        }
    }

    // Pass 2: stitch each trace's attempts and hops together.
    let mut journeys = Vec::with_capacity(attempts.len());
    for (trace, (client, mut atts)) in attempts {
        atts.sort_by_key(|a| (a.attempt, a.issued));
        let hops_in = servers.remove(&trace).unwrap_or_default();
        let mut hops: Vec<Hop> = Vec::with_capacity(hops_in.len());
        let mut matched = vec![false; hops_in.len()];
        let mut truncated = atts.first().map(|a| a.attempt != 1).unwrap_or(true);
        let mut per_attempt_ok = true;
        let mut prev_completed: Option<Nanos> = None;
        for att in &atts {
            let gap_before = prev_completed.map_or(0, |p| att.issued.saturating_sub(p));
            prev_completed = Some(att.completed);
            let Some(i) = hops_in
                .iter()
                .enumerate()
                .find(|(i, s)| !matched[*i] && s.rpc == att.rpc)
                .map(|(i, _)| i)
            else {
                // Evicted server instant (ring mode drops oldest first).
                truncated = true;
                continue;
            };
            matched[i] = true;
            let s = &hops_in[i];
            let net_out = att.completed.saturating_sub(s.resp_sent);
            // Per-hop identities that must hold for any surviving hop:
            // the kernel stamps sent_at at issue, and the four segments
            // tile [sent_at, resp_sent] exactly.
            if s.sent_at != att.issued
                || s.net_in + s.queue + s.service + s.hold != s.resp_sent - s.sent_at
            {
                per_attempt_ok = false;
            }
            hops.push(Hop {
                attempt: att.attempt,
                server: s.server,
                name: s.name,
                rpc: s.rpc,
                depth: s.depth,
                sent_at: s.sent_at,
                resp_sent: s.resp_sent,
                net_in: s.net_in,
                queue: s.queue,
                service: s.service,
                hold: s.hold,
                net_out,
                gap_before,
                status: att.status,
                on_path: true,
            });
        }
        // Off-path hops: server work attributed to this trace that no
        // client attempt names — the PriorityPull the target issued on
        // the operation's behalf. (A non-PP orphan is a response still
        // in flight at capture time; skip it rather than guess.)
        for (i, s) in hops_in.iter().enumerate() {
            if !matched[i] && s.name == "priority-pull" {
                hops.push(Hop {
                    attempt: 0,
                    server: s.server,
                    name: s.name,
                    rpc: s.rpc,
                    depth: s.depth,
                    sent_at: s.sent_at,
                    resp_sent: s.resp_sent,
                    net_in: s.net_in,
                    queue: s.queue,
                    service: s.service,
                    hold: s.hold,
                    net_out: 0,
                    gap_before: 0,
                    status: status::OK,
                    on_path: false,
                });
            }
        }
        hops.sort_by_key(|h| (h.resp_sent, h.rpc));
        let (issued, completed) = match (atts.first(), atts.last()) {
            (Some(f), Some(l)) => (f.issued, l.completed),
            _ => continue,
        };
        let e2e = completed - issued;
        // Telescoping: on-path segments + response network + client-side
        // gaps must tile [issued, completed] with nothing left over.
        let on_path_sum: Nanos = hops
            .iter()
            .filter(|h| h.on_path)
            .map(|h| h.segments() + h.net_out + h.gap_before)
            .sum();
        let complete = !truncated && hops.iter().filter(|h| h.on_path).count() == atts.len();
        let telescoped = complete && per_attempt_ok && on_path_sum == e2e;
        journeys.push(Journey {
            trace,
            client,
            issued,
            completed,
            e2e,
            attempts: atts.len() as u64,
            final_status: atts.last().map_or(status::OTHER, |a| a.status),
            truncated: !complete,
            telescoped,
            hops,
        });
    }
    journeys.sort_by_key(|j| j.trace);
    journeys
}

/// Reconstructs the single journey with trace id `trace`, if present.
pub fn find(events: &[TraceEvent], dropped: u64, trace: u64) -> Option<Journey> {
    reconstruct(events, dropped)
        .into_iter()
        .find(|j| j.trace == trace)
}

/// The `k` slowest journeys by `e2e`, slowest first, ties broken by
/// trace id ascending — a deterministic reservoir with no RNG.
pub fn slowest(journeys: &[Journey], k: usize) -> Vec<Journey> {
    let mut sorted: Vec<&Journey> = journeys.iter().collect();
    sorted.sort_by(|a, b| b.e2e.cmp(&a.e2e).then(a.trace.cmp(&b.trace)));
    sorted.into_iter().take(k).cloned().collect()
}

/// Renders journeys as the deterministic `rocksteady-journeys-v1` JSON
/// document (fixed key order, integers and static strings only).
pub fn export_json(journeys: &[Journey], dropped: u64) -> String {
    let mut out = String::with_capacity(64 + journeys.len() * 256);
    out.push_str("{\"schema\":\"");
    out.push_str(JOURNEYS_SCHEMA);
    out.push_str("\",\"dropped\":");
    out.push_str(&dropped.to_string());
    out.push_str(",\"journeys\":[");
    for (i, j) in journeys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        j.push_json(&mut out);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_instant(
        pid: u64,
        trace: u64,
        attempt: u64,
        rpc: u64,
        issued: Nanos,
        completed: Nanos,
        st: u64,
    ) -> TraceEvent {
        TraceEvent {
            name: "rpc-client",
            cat: "rpc",
            ph: Phase::Instant,
            ts: completed,
            dur: 0,
            pid,
            tid: 0,
            args: vec![
                ("rpc", rpc),
                ("issued", issued),
                ("completed", completed),
                ("e2e", completed - issued),
                ("trace", trace),
                ("attempt", attempt),
                ("status", st),
            ],
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn server_instant(
        pid: u64,
        name: &'static str,
        trace: u64,
        rpc: u64,
        sent_at: Nanos,
        segments: [Nanos; 4],
    ) -> TraceEvent {
        let resp = sent_at + segments.iter().sum::<Nanos>();
        TraceEvent {
            name,
            cat: "rpc",
            ph: Phase::Instant,
            ts: resp,
            dur: 0,
            pid,
            tid: 0,
            args: vec![
                ("rpc", rpc),
                ("sent_at", sent_at),
                ("resp_sent", resp),
                ("net_in", segments[0]),
                ("queue", segments[1]),
                ("service", segments[2]),
                ("hold", segments[3]),
                ("trace", trace),
                ("hop", 1),
            ],
        }
    }

    /// A three-attempt read crossing an ownership flip, with an
    /// off-path PriorityPull: the canonical migration-crossing journey.
    fn crossing_events() -> Vec<TraceEvent> {
        let t = 42;
        vec![
            // attempt 1 at the source: stale map.
            server_instant(1, "read", t, 100, 1_000, [10, 5, 20, 0]),
            client_instant(9, t, 1, 100, 1_000, 1_045, status::STALE_MAP),
            // attempt 2 at the target: miss -> retry hint.
            server_instant(2, "read", t, 101, 1_100, [10, 8, 25, 0]),
            client_instant(9, t, 2, 101, 1_100, 1_153, status::RETRY),
            // the PriorityPull the target issued on our behalf.
            server_instant(1, "priority-pull", t, 300, 1_150, [10, 2, 30, 0]),
            // attempt 3 at the target: served.
            server_instant(2, "read", t, 102, 1_400, [10, 4, 22, 0]),
            client_instant(9, t, 3, 102, 1_400, 1_446, status::OK),
        ]
    }

    #[test]
    fn crossing_journey_reconstructs_and_telescopes() {
        let journeys = reconstruct(&crossing_events(), 0);
        assert_eq!(journeys.len(), 1);
        let j = &journeys[0];
        assert_eq!(j.trace, 42);
        assert_eq!(j.client, 9);
        assert_eq!(j.attempts, 3);
        assert_eq!(j.hops.len(), 4);
        assert!(j.crossed_migration());
        assert!(!j.truncated);
        assert_eq!(j.e2e, 446);
        assert!(j.telescoped, "chain: {}", j.chain());
        // Both the source-miss hop and the PriorityPull hop carry the
        // one trace id.
        assert!(j.hops.iter().any(|h| h.name == "read" && h.server == 1));
        assert!(j
            .hops
            .iter()
            .any(|h| h.name == "priority-pull" && !h.on_path && h.server == 1));
        assert_eq!(
            j.chain(),
            "read@1:stale-map -> read@2:retry -> priority-pull@1 -> read@2:ok"
        );
        assert_eq!(j.final_status, status::OK);
    }

    #[test]
    fn evicted_early_hops_mean_truncated_not_wrong() {
        // Drop the first three events (ring eviction takes the oldest):
        // attempt 1 entirely gone, attempt 2's server instant gone.
        let events: Vec<TraceEvent> = crossing_events().into_iter().skip(3).collect();
        let journeys = reconstruct(&events, 3);
        assert_eq!(journeys.len(), 1);
        let j = &journeys[0];
        assert!(j.truncated, "missing early hops must flag truncation");
        assert!(!j.telescoped, "a truncated journey must not claim the sum");
        // Surviving hops are intact.
        assert!(j.hops.iter().any(|h| h.name == "priority-pull"));
        assert!(j
            .hops
            .iter()
            .any(|h| h.on_path && h.status == status::OK && h.rpc == 102));
        let json = export_json(&journeys, 3);
        assert!(json.contains("\"truncated\":1"), "{json}");
        assert!(json.contains("\"dropped\":3"), "{json}");
    }

    #[test]
    fn single_attempt_clean_journey() {
        let events = vec![
            server_instant(1, "read", 7, 50, 500, [10, 0, 20, 0]),
            client_instant(9, 7, 1, 50, 500, 540, status::OK),
        ];
        let journeys = reconstruct(&events, 0);
        assert_eq!(journeys.len(), 1);
        let j = &journeys[0];
        assert!(!j.crossed_migration());
        assert!(j.telescoped);
        assert_eq!(j.hops[0].net_out, 10);
        assert_eq!(j.chain(), "read@1:ok");
        assert!(find(&events, 0, 7).is_some());
        assert!(find(&events, 0, 8).is_none());
    }

    #[test]
    fn slowest_reservoir_is_deterministic() {
        let mut events = Vec::new();
        for (i, e2e) in [(1u64, 100u64), (2, 300), (3, 300), (4, 50)] {
            events.push(server_instant(
                1,
                "read",
                i,
                i * 10,
                1_000,
                [e2e - 10, 0, 10, 0],
            ));
            events.push(client_instant(
                9,
                i,
                1,
                i * 10,
                1_000,
                1_000 + e2e,
                status::OK,
            ));
        }
        let journeys = reconstruct(&events, 0);
        let top = slowest(&journeys, 2);
        assert_eq!(top.len(), 2);
        // Ties broken by trace id ascending.
        assert_eq!(top[0].trace, 2);
        assert_eq!(top[1].trace, 3);
    }

    #[test]
    fn export_is_deterministic() {
        let a = export_json(&reconstruct(&crossing_events(), 0), 0);
        let b = export_json(&reconstruct(&crossing_events(), 0), 0);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"rocksteady-journeys-v1\""));
        assert!(a.contains("\"hops_n\":4"), "{a}");
        assert!(a.contains("\"telescoped\":1"), "{a}");
    }
}
