//! Deterministic tracing and metrics under the virtual clock.
//!
//! The paper argues entirely through timelines and latency
//! decompositions (Figs 9–14); this crate is the observability layer
//! those figures need. Actors record three event kinds into one shared
//! buffer:
//!
//! - **spans** (`ph: "X"`): an interval `[ts, ts+dur]` on a `(pid,
//!   tid)` lane — an RPC's worker-service time, one migration phase,
//!   one Pull round trip;
//! - **instants** (`ph: "i"`): a point event carrying structured args —
//!   e.g. the per-RPC latency decomposition stamped when the response
//!   leaves the server;
//! - **counters** (`ph: "C"`): a monotonic value sampled whenever it
//!   changes — retry hints sent, priority-pull deferrals, abandoned
//!   migrations.
//!
//! Determinism rules (see DESIGN.md):
//!
//! 1. every timestamp is virtual time — two runs with the same seed
//!    produce *byte-identical* exports;
//! 2. events are appended at their **completion** time, so buffer order
//!    is completion order and `ts + dur` is non-decreasing;
//! 3. spans sharing a `(pid, tid)` lane must nest properly (lanes are
//!    chosen so this holds by construction: one lane per worker core,
//!    per pull partition, per migration);
//! 4. arg values are integers only — no floats, no formatting
//!    ambiguity.
//!
//! Zero-cost-off guarantee: [`Tracer`] is an `Option` around the shared
//! buffer. A disabled tracer is `None`; every record call is a branch
//! on that discriminant and nothing else — no allocation, no clock
//! reads, no arg construction (callers must guard arg-building with
//! [`Tracer::is_on`]).

use std::cell::RefCell;
use std::rc::Rc;

use rocksteady_common::{Histogram, Nanos};

pub mod journey;

/// The lane-ID (`tid`) convention shared by every producer and consumer
/// of the trace buffer.
///
/// Spans sharing a `(pid, tid)` lane must nest properly (invariant 3 in
/// the crate docs), so each logically-concurrent strand of work gets
/// its own lane. Server actors lay their lanes out as follows; the
/// critical-path walker in `rocksteady-profiler` reverses the mapping
/// with [`worker_index`] / [`pull_partition`].
pub mod lanes {
    /// Dispatch-core lane: per-RPC decomposition instants.
    pub const RPC: u64 = 0;
    /// First worker lane; worker `w` records on `WORKER_BASE + w`.
    pub const WORKER_BASE: u64 = 1;
    /// Migration-phase spans (prepare, ownership-flip, run, commit).
    pub const MIGRATION: u64 = 100;
    /// Priority-pull round trips (at most one outstanding at a time).
    pub const PRIORITY_PULL: u64 = 101;
    /// First pull lane; partition `p`'s pulls record on `PULL_BASE + p`.
    pub const PULL_BASE: u64 = 110;

    /// Lane for worker core `w`.
    pub fn worker(w: usize) -> u64 {
        WORKER_BASE + w as u64
    }

    /// Lane for pull partition `p`.
    pub fn pull(p: usize) -> u64 {
        PULL_BASE + p as u64
    }

    /// Inverse of [`worker`]: the worker index recording on `tid`, if
    /// `tid` is a worker lane.
    pub fn worker_index(tid: u64) -> Option<usize> {
        (WORKER_BASE..MIGRATION)
            .contains(&tid)
            .then(|| (tid - WORKER_BASE) as usize)
    }

    /// Inverse of [`pull`]: the partition recording on `tid`, if `tid`
    /// is a pull lane.
    pub fn pull_partition(tid: u64) -> Option<usize> {
        (tid >= PULL_BASE).then(|| (tid - PULL_BASE) as usize)
    }
}

/// Chrome trace-event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Complete event (`"X"`): an interval with a duration.
    Span,
    /// Instant event (`"i"`): a point in time with args.
    Instant,
    /// Counter sample (`"C"`): a monotonic value.
    Counter,
    /// Flow start (`"s"`): the producing end of a causal link. Carries
    /// the journey's trace id in the `flow` arg (exported as the chrome
    /// flow `id`), so per-RPC instants on different nodes chain into one
    /// cross-node causal graph.
    FlowStart,
    /// Flow end (`"f"`): the consuming end of a causal link (same `flow`
    /// arg convention as [`Phase::FlowStart`]).
    FlowEnd,
}

/// One recorded event. All names are `&'static str` so recording never
/// allocates for labels and exports are trivially deterministic.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (chrome `name`).
    pub name: &'static str,
    /// Category (chrome `cat`), used for filtering.
    pub cat: &'static str,
    /// Event kind.
    pub ph: Phase,
    /// Start time (virtual nanoseconds).
    pub ts: Nanos,
    /// Duration (0 for instants and counters).
    pub dur: Nanos,
    /// Process lane: the actor id.
    pub pid: u64,
    /// Thread lane within the actor (worker core, partition, ...).
    pub tid: u64,
    /// Structured integer arguments, in recording order.
    pub args: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// Looks up an argument by name.
    pub fn arg(&self, name: &str) -> Option<u64> {
        self.args.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }
}

/// The shared event buffer behind an enabled [`Tracer`].
#[derive(Debug, Default)]
pub struct TraceBuf {
    events: Vec<TraceEvent>,
    /// Recording gate: an armed tracer can be muted for warm-up windows
    /// without giving up the buffer (benches trace only the migration
    /// window this way).
    recording: bool,
    /// Ring mode: when `Some(n)`, the buffer holds at most `n` events
    /// and the oldest half is discarded in one memmove when it fills —
    /// amortized O(1) per push with a contiguous event slice.
    capacity: Option<usize>,
    /// Events discarded by ring compaction since arming.
    dropped: u64,
}

/// Validation result: what a well-formed trace contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events.
    pub events: usize,
    /// Span events among them.
    pub spans: usize,
}

/// Shared, clonable handle to the trace buffer. `Tracer::off()` is the
/// zero-cost disabled state; cloning an armed tracer shares the buffer.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Rc<RefCell<TraceBuf>>>);

impl Tracer {
    /// A permanently disabled tracer: every call is a no-op branch.
    pub fn off() -> Self {
        Tracer(None)
    }

    /// An armed tracer with a fresh buffer, recording immediately.
    pub fn armed() -> Self {
        Tracer(Some(Rc::new(RefCell::new(TraceBuf {
            events: Vec::new(),
            recording: true,
            capacity: None,
            dropped: 0,
        }))))
    }

    /// An armed tracer in **ring mode**: the buffer holds at most
    /// `capacity` events. When it fills, the oldest `capacity/2` events
    /// are discarded in one memmove and counted in [`Tracer::dropped`].
    /// Because the buffer is completion-ordered, dropping a prefix
    /// cannot break nesting or ordering, so [`Tracer::validate`] still
    /// passes on a wrapped buffer.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer(Some(Rc::new(RefCell::new(TraceBuf {
            events: Vec::new(),
            recording: true,
            capacity: Some(capacity.max(2)),
            dropped: 0,
        }))))
    }

    /// Events discarded by ring compaction (0 when unbounded or off).
    pub fn dropped(&self) -> u64 {
        match &self.0 {
            Some(buf) => buf.borrow().dropped,
            None => 0,
        }
    }

    /// The ring capacity, if this tracer is in ring mode.
    pub fn capacity(&self) -> Option<usize> {
        self.0.as_ref().and_then(|buf| buf.borrow().capacity)
    }

    /// Whether events would currently be recorded. Callers building
    /// args should guard on this so a muted/disabled tracer costs one
    /// branch.
    #[inline]
    pub fn is_on(&self) -> bool {
        match &self.0 {
            Some(buf) => buf.borrow().recording,
            None => false,
        }
    }

    /// Mutes or resumes recording on an armed tracer (no-op when off).
    pub fn set_recording(&self, on: bool) {
        if let Some(buf) = &self.0 {
            buf.borrow_mut().recording = on;
        }
    }

    #[inline]
    fn push(&self, ev: TraceEvent) {
        if let Some(buf) = &self.0 {
            let mut buf = buf.borrow_mut();
            if buf.recording {
                if let Some(cap) = buf.capacity {
                    if buf.events.len() >= cap {
                        let evict = (cap / 2).max(1);
                        buf.events.drain(..evict);
                        buf.dropped += evict as u64;
                    }
                }
                buf.events.push(ev);
            }
        }
    }

    /// Records a completed span `[ts, ts+dur]`. Call at completion time
    /// (`now == ts + dur`) so the buffer stays completion-ordered.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        name: &'static str,
        cat: &'static str,
        pid: u64,
        tid: u64,
        ts: Nanos,
        dur: Nanos,
        args: Vec<(&'static str, u64)>,
    ) {
        self.push(TraceEvent {
            name,
            cat,
            ph: Phase::Span,
            ts,
            dur,
            pid,
            tid,
            args,
        });
    }

    /// Records an instant event at `ts` (the current virtual time).
    pub fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        pid: u64,
        tid: u64,
        ts: Nanos,
        args: Vec<(&'static str, u64)>,
    ) {
        self.push(TraceEvent {
            name,
            cat,
            ph: Phase::Instant,
            ts,
            dur: 0,
            pid,
            tid,
            args,
        });
    }

    /// Records one end of a causal flow link at `ts` (the current
    /// virtual time, keeping the buffer completion-ordered). `start`
    /// selects [`Phase::FlowStart`] (the cause: a request leaving its
    /// sender) vs [`Phase::FlowEnd`] (the effect: the answering node
    /// finishing it); `flow_id` is the journey's trace id and binds the
    /// two ends together in chrome://tracing.
    #[allow(clippy::too_many_arguments)]
    pub fn flow(
        &self,
        name: &'static str,
        cat: &'static str,
        pid: u64,
        tid: u64,
        ts: Nanos,
        start: bool,
        flow_id: u64,
        mut args: Vec<(&'static str, u64)>,
    ) {
        args.insert(0, ("flow", flow_id));
        self.push(TraceEvent {
            name,
            cat,
            ph: if start {
                Phase::FlowStart
            } else {
                Phase::FlowEnd
            },
            ts,
            dur: 0,
            pid,
            tid,
            args,
        });
    }

    /// Records a counter sample: `name` has `value` as of `ts`.
    pub fn counter(&self, name: &'static str, pid: u64, ts: Nanos, value: u64) {
        self.push(TraceEvent {
            name,
            cat: "counter",
            ph: Phase::Counter,
            ts,
            dur: 0,
            pid,
            tid: 0,
            args: vec![("value", value)],
        });
    }

    /// Read access to the recorded events (an empty slice when the
    /// tracer is disabled).
    pub fn with_events<R>(&self, f: impl FnOnce(&[TraceEvent]) -> R) -> R {
        match &self.0 {
            Some(buf) => f(&buf.borrow().events),
            None => f(&[]),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.with_events(<[TraceEvent]>::len)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Histogram of the durations of all spans named `name`.
    pub fn span_histogram(&self, name: &str) -> Histogram {
        self.with_events(|events| {
            let mut h = Histogram::new();
            for ev in events {
                if ev.ph == Phase::Span && ev.name == name {
                    h.record(ev.dur);
                }
            }
            h
        })
    }

    /// Histogram of argument `arg` across all instants named `name`.
    pub fn instant_arg_histogram(&self, name: &str, arg: &str) -> Histogram {
        self.with_events(|events| {
            let mut h = Histogram::new();
            for ev in events {
                if ev.ph == Phase::Instant && ev.name == name {
                    if let Some(v) = ev.arg(arg) {
                        h.record(v);
                    }
                }
            }
            h
        })
    }

    /// Exports the buffer as chrome://tracing JSON. Timestamps are
    /// microseconds with exactly three decimal digits (integer math on
    /// the nanosecond clock), so same-seed runs export byte-identical
    /// strings.
    pub fn export_chrome_json(&self) -> String {
        self.with_events(Self::format_chrome_json)
    }

    /// Exports only the events completing at or after `since` — the
    /// incident bundle's "last N ms" trace slice. Same format as
    /// [`Tracer::export_chrome_json`].
    pub fn export_chrome_json_since(&self, since: Nanos) -> String {
        self.with_events(|events| {
            // Completion order means the suffix starting at the first
            // event with `ts + dur >= since` is exactly the window.
            let start = events.partition_point(|ev| ev.ts + ev.dur < since);
            Self::format_chrome_json(&events[start..])
        })
    }

    fn format_chrome_json(events: &[TraceEvent]) -> String {
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(ev.name);
            out.push_str("\",\"cat\":\"");
            out.push_str(ev.cat);
            out.push_str("\",\"ph\":\"");
            out.push_str(match ev.ph {
                Phase::Span => "X",
                Phase::Instant => "i",
                Phase::Counter => "C",
                Phase::FlowStart => "s",
                Phase::FlowEnd => "f",
            });
            out.push_str("\",\"ts\":");
            push_us(&mut out, ev.ts);
            if ev.ph == Phase::Span {
                out.push_str(",\"dur\":");
                push_us(&mut out, ev.dur);
            }
            if ev.ph == Phase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            if matches!(ev.ph, Phase::FlowStart | Phase::FlowEnd) {
                // Chrome flow events bind by top-level id; the journey's
                // trace id is recorded as the leading `flow` arg.
                out.push_str(",\"id\":");
                out.push_str(&ev.arg("flow").unwrap_or(0).to_string());
                if ev.ph == Phase::FlowEnd {
                    out.push_str(",\"bp\":\"e\"");
                }
            }
            out.push_str(",\"pid\":");
            out.push_str(&ev.pid.to_string());
            out.push_str(",\"tid\":");
            out.push_str(&ev.tid.to_string());
            if !ev.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in ev.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(k);
                    out.push_str("\":");
                    out.push_str(&v.to_string());
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Validates the trace: non-empty, completion-ordered (monotone
    /// `ts + dur` in buffer order), and spans properly nested within
    /// each `(pid, tid)` lane.
    pub fn validate(&self) -> Result<TraceSummary, String> {
        self.with_events(Self::check_events)
    }

    fn check_events(events: &[TraceEvent]) -> Result<TraceSummary, String> {
        if events.is_empty() {
            return Err("trace is empty".into());
        }
        let mut last_end = 0u64;
        for (i, ev) in events.iter().enumerate() {
            let end = ev.ts + ev.dur;
            if end < last_end {
                return Err(format!(
                    "event {i} ({}) completes at {end} before predecessor at {last_end}",
                    ev.name
                ));
            }
            last_end = end;
        }
        // Per-lane nesting: sort spans by (start, -end) and sweep with
        // an enclosure stack; partial overlap is the only failure.
        type Lane = Vec<(Nanos, Nanos, &'static str)>;
        let mut lanes: std::collections::HashMap<(u64, u64), Lane> =
            std::collections::HashMap::new();
        let mut spans = 0usize;
        for ev in events.iter() {
            if ev.ph == Phase::Span {
                spans += 1;
                lanes
                    .entry((ev.pid, ev.tid))
                    .or_default()
                    .push((ev.ts, ev.ts + ev.dur, ev.name));
            }
        }
        for ((pid, tid), mut lane) in lanes {
            lane.sort_by_key(|a| (a.0, std::cmp::Reverse(a.1)));
            let mut stack: Vec<(Nanos, Nanos)> = Vec::new();
            for (start, end, name) in lane {
                while let Some(&(_, top_end)) = stack.last() {
                    if top_end <= start {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                if let Some(&(top_start, top_end)) = stack.last() {
                    if end > top_end {
                        return Err(format!(
                            "span {name} [{start},{end}] on lane ({pid},{tid}) partially \
                             overlaps [{top_start},{top_end}]"
                        ));
                    }
                }
                stack.push((start, end));
            }
        }
        Ok(TraceSummary {
            events: events.len(),
            spans,
        })
    }
}

/// Appends `ns` as microseconds with three fixed decimals ("12.345").
fn push_us(out: &mut String, ns: Nanos) {
    out.push_str(&(ns / 1000).to_string());
    out.push('.');
    let frac = ns % 1000;
    out.push_str(&format!("{frac:03}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_records_nothing() {
        let t = Tracer::off();
        assert!(!t.is_on());
        t.span("a", "c", 1, 1, 0, 10, vec![]);
        t.instant("b", "c", 1, 0, 5, vec![("x", 1)]);
        t.counter("n", 1, 5, 3);
        assert!(t.is_empty());
        assert!(t.validate().is_err());
        assert_eq!(
            t.export_chrome_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }

    #[test]
    fn armed_tracer_shares_buffer_across_clones() {
        let t = Tracer::armed();
        let t2 = t.clone();
        t.span("a", "c", 1, 1, 0, 10, vec![]);
        t2.span("b", "c", 2, 1, 10, 5, vec![]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn mute_window_gates_recording() {
        let t = Tracer::armed();
        t.set_recording(false);
        assert!(!t.is_on());
        t.span("a", "c", 1, 1, 0, 10, vec![]);
        t.set_recording(true);
        t.span("b", "c", 1, 1, 10, 10, vec![]);
        assert_eq!(t.len(), 1);
        t.with_events(|e| assert_eq!(e[0].name, "b"));
    }

    #[test]
    fn export_is_deterministic_and_integer_formatted() {
        let build = || {
            let t = Tracer::armed();
            t.span("rpc", "rpc", 3, 1, 1_234, 5_678, vec![("bytes", 100)]);
            t.instant("done", "rpc", 3, 0, 6_912, vec![]);
            t.counter("retries", 3, 6_912, 1);
            t.export_chrome_json()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"ts\":1.234"), "{a}");
        assert!(a.contains("\"dur\":5.678"), "{a}");
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"ph\":\"C\""));
        assert!(a.contains("\"args\":{\"bytes\":100}"));
    }

    #[test]
    fn validate_accepts_nested_and_tiled_spans() {
        let t = Tracer::armed();
        // child [0,4], child [4,10], parent [0,10] pushed at completion.
        t.span("c1", "m", 1, 9, 0, 4, vec![]);
        t.span("c2", "m", 1, 9, 4, 6, vec![]);
        t.span("parent", "m", 1, 9, 0, 10, vec![]);
        let s = t.validate().expect("valid");
        assert_eq!(s.spans, 3);
    }

    #[test]
    fn validate_rejects_partial_overlap() {
        let t = Tracer::armed();
        t.span("a", "m", 1, 1, 0, 6, vec![]);
        t.span("b", "m", 1, 1, 3, 7, vec![]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_completion_disorder() {
        let t = Tracer::armed();
        t.instant("late", "m", 1, 0, 100, vec![]);
        t.instant("early", "m", 1, 0, 50, vec![]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn ring_mode_bounds_memory_and_counts_drops() {
        let t = Tracer::with_capacity(8);
        assert_eq!(t.capacity(), Some(8));
        for i in 0..100u64 {
            t.instant("tick", "m", 1, 0, i * 10, vec![("i", i)]);
        }
        assert!(t.len() <= 8, "len {} exceeds capacity", t.len());
        assert_eq!(t.dropped() + t.len() as u64, 100);
        // The survivors are the most recent suffix.
        t.with_events(|e| {
            assert_eq!(e.last().unwrap().arg("i"), Some(99));
            let first = e.first().unwrap().arg("i").unwrap();
            assert_eq!(first, t.dropped());
        });
    }

    #[test]
    fn wrapped_ring_still_validates_and_exports_chrome_json() {
        let t = Tracer::with_capacity(16);
        // Nested span pairs: child then parent, pushed at completion,
        // enough of them that the ring wraps several times.
        for i in 0..50u64 {
            let base = i * 100;
            t.span("child", "m", 1, 9, base, 40, vec![]);
            t.span("parent", "m", 1, 9, base, 90, vec![]);
        }
        assert!(t.dropped() > 0, "ring never wrapped");
        let s = t.validate().expect("wrapped ring must stay valid");
        assert!(s.events <= 16);
        let json = t.export_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"name\":\"parent\""));
    }

    #[test]
    fn since_export_takes_the_completion_suffix() {
        let t = Tracer::armed();
        t.span("old", "m", 1, 1, 0, 10, vec![]);
        t.span("new", "m", 1, 1, 100, 10, vec![]);
        let json = t.export_chrome_json_since(50);
        assert!(!json.contains("\"name\":\"old\""), "{json}");
        assert!(json.contains("\"name\":\"new\""), "{json}");
    }

    #[test]
    fn unbounded_tracer_reports_no_capacity() {
        let t = Tracer::armed();
        assert_eq!(t.capacity(), None);
        assert_eq!(t.dropped(), 0);
        assert_eq!(Tracer::off().capacity(), None);
    }

    #[test]
    fn flow_events_export_chrome_phases_and_ids() {
        let t = Tracer::armed();
        t.flow("journey", "flow", 7, 0, 100, true, 0xbeef, vec![("hop", 1)]);
        t.flow("journey", "flow", 3, 0, 250, false, 0xbeef, vec![]);
        let json = t.export_chrome_json();
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\""), "{json}");
        assert!(json.contains("\"id\":48879"), "{json}");
        assert!(json.contains("\"bp\":\"e\""), "{json}");
        // Zero-duration flow events keep the buffer valid and are not
        // subject to span nesting.
        t.span("svc", "worker", 7, 1, 0, 300, vec![]);
        t.validate().expect("flow events must not break validation");
    }

    #[test]
    fn histograms_derive_from_events() {
        let t = Tracer::armed();
        t.span("pull", "mig", 1, 64, 0, 100, vec![]);
        t.span("pull", "mig", 1, 64, 100, 300, vec![]);
        t.instant("rpc", "rpc", 1, 0, 500, vec![("queue", 40)]);
        let h = t.span_histogram("pull");
        assert_eq!(h.count(), 2);
        assert!(h.max() >= 300);
        let q = t.instant_arg_histogram("rpc", "queue");
        assert_eq!(q.count(), 1);
    }
}
